"""Rendering synthesized wrappers back into guarded-command programs.

A synthesized wrapper is a bare transition relation; to be *used* —
inspected, reviewed, merged into a code base — it wants the same
notation as every other system in the paper.  :func:`system_to_program`
turns any finite system over a program's variables into an equivalent
guarded-command program: one action per source state, guarded by the
full state equality, assigning the changed variables.

The rendering is exact (the produced program compiles back to the same
automaton — enforced by the tests) though deliberately naive: it makes
no attempt to merge guards into symbolic predicates.  Repair wrappers
are small (the synthesizer targets only stuck states), so the naive
form stays readable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.errors import VerificationError
from ..core.system import System
from ..gcl.action import GuardedAction
from ..gcl.expr import BigAnd, Const, Eq, Expr, Var
from ..gcl.program import Program
from ..gcl.variable import Variable

__all__ = ["system_to_program"]


def _literal(value: object) -> Expr:
    return Const(value)


def system_to_program(
    system: System,
    variables: Sequence[Variable],
    name: Optional[str] = None,
    action_prefix: str = "repair",
) -> Program:
    """Express ``system`` as an equivalent guarded-command program.

    Args:
        system: the automaton to render; its schema must match the
            given variable declarations (names, order, domains).
        variables: the variable declarations of the target program.
        name: program name (defaults to the system's).
        action_prefix: prefix for the generated action names.

    Returns:
        A program whose compilation equals ``system`` (same transition
        relation; the system's initial states are carried over as an
        explicit initial list).

    Raises:
        VerificationError: if the declarations do not match the
            system's schema, or the system is nondeterministic per
            source state in a way one action per (source, target)
            cannot express (never the case — one action is emitted per
            transition).
    """
    schema = system.schema
    declared = {variable.name: variable for variable in variables}
    if tuple(declared) != schema.names:
        raise VerificationError(
            "variable declarations do not match the system's schema: "
            f"{tuple(declared)} vs {schema.names}"
        )
    for variable in variables:
        if tuple(variable.domain.values) != schema.domain_of(variable.name):
            raise VerificationError(
                f"domain mismatch on {variable.name!r}"
            )

    actions: List[GuardedAction] = []
    for index, (source, target) in enumerate(sorted(system.transitions(), key=repr)):
        guard = BigAnd(
            *(
                Eq(Var(name), _literal(schema.value(source, name)))
                for name in schema.names
            )
        )
        assignments: Dict[str, Expr] = {
            name: _literal(schema.value(target, name))
            for name in schema.names
            if schema.value(source, name) != schema.value(target, name)
        }
        if not assignments:
            # A self-loop: express it as a (stuttering) rewrite of the
            # first variable to its own value.
            first = schema.names[0]
            assignments[first] = _literal(schema.value(source, first))
        actions.append(GuardedAction(f"{action_prefix}.{index}", guard, assignments))

    initial = [schema.unpack(state) for state in system.initial]
    return Program(
        name or system.name,
        list(variables),
        actions,
        init=initial or None,
    )
