"""Automatic wrapper synthesis.

The paper closes with: *"In future work, we will focus on devising
refinement tools and methodologies..."* — this module is the natural
first such tool: given a system ``C`` and the specification ``A`` it
should stabilize to, *synthesize* a wrapper ``W`` such that
``C [] W`` is stabilizing to ``A``.

The synthesis works on the same objects the checker uses:

1. compute the behavioural core ``G`` (states from which ``C`` forever
   tracks ``A``) — the wrapper must never fire inside ``G``;
2. outside ``G``, identify the *stuck* states: deadlocks, members of
   cycles, and states from which ``G`` is unreachable;
3. give each stuck state one repair transition to a core state —
   by default the core state at minimum Hamming distance (fewest
   variables written), which keeps repairs as local as the instance
   allows;
4. verify the composite.

Because the box operator only ever *adds* transitions, a composite
can still take divergent cycles of ``C`` itself; the synthesized
repairs make every such cycle escapable, so the guarantee is
stabilization under **strong fairness** (the repair action, enabled
whenever the run lingers in a trap, must eventually fire).  When ``C``
has no cycles outside the core — the deadlock-only case, like the
quickstart's cascade — the composite stabilizes under the raw unfair
daemon, and the result says so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..checker.convergence import behavioural_core, check_stabilization
from ..checker.graph import states_on_cycles
from ..checker.witnesses import CheckResult
from ..core.abstraction import AbstractionFunction
from ..core.composition import box
from ..core.errors import VerificationError
from ..core.state import State
from ..core.system import System

__all__ = ["SynthesizedWrapper", "synthesize_wrapper"]


@dataclass(frozen=True)
class SynthesizedWrapper:
    """The product of :func:`synthesize_wrapper`.

    Attributes:
        wrapper: the synthesized repair system (no initial states).
        composite: ``C [] W``, ready to use.
        verification: the stabilization check of the composite.
        fairness: the weakest fairness mode under which the composite
            was verified (``"none"`` when no cycles survive outside
            the core, ``"strong"`` otherwise).
        repaired_states: the states given a repair transition.
    """

    wrapper: System
    composite: System
    verification: CheckResult
    fairness: str
    repaired_states: FrozenSet[State]

    @property
    def holds(self) -> bool:
        """Did the synthesized composite verify?"""
        return self.verification.holds

    def summary(self) -> str:
        """One-paragraph human rendering."""
        return (
            f"synthesized {self.wrapper.transition_count()} repair "
            f"transitions over {len(self.repaired_states)} states; "
            f"composite verified under fairness={self.fairness!r}: "
            f"{'yes' if self.holds else 'NO'}"
        )


def _hamming(a: State, b: State) -> int:
    """Number of differing components (repair write cost)."""
    return sum(1 for x, y in zip(a, b) if x != y)


def _nearest_core_state(state: State, core_states: List[State]) -> State:
    """The core state writable with the fewest variable changes."""
    return min(core_states, key=lambda target: (_hamming(state, target), repr(target)))


def synthesize_wrapper(
    concrete: System,
    abstract: System,
    alpha: Optional[AbstractionFunction] = None,
    stutter_insensitive: bool = False,
    repair_all_outside: bool = False,
) -> SynthesizedWrapper:
    """Synthesize a stabilization wrapper for ``concrete`` toward ``abstract``.

    Args:
        concrete: the system to wrap (often already model-compliant).
        abstract: the stabilization target.
        alpha: abstraction between the state spaces (identity if
            omitted).
        stutter_insensitive: passed through to the core computation and
            the final verification.
        repair_all_outside: repair *every* state outside the core, not
            just the stuck ones — a larger wrapper that converges in
            one step from anywhere (the "reset" extreme).

    Returns:
        A :class:`SynthesizedWrapper`; its ``verification`` is the
        mechanical proof obligation discharged on the instance.

    Raises:
        VerificationError: when the behavioural core is empty — the
            base system never tracks the specification and no wrapper
            of added transitions can fix that.
    """
    core = behavioural_core(
        concrete, abstract, alpha, stutter_insensitive=stutter_insensitive
    )
    if not core:
        raise VerificationError(
            f"{concrete.name!r} has an empty behavioural core w.r.t. "
            f"{abstract.name!r}; wrappers only add transitions and cannot "
            "repair the legitimate behaviour itself"
        )
    core_states = sorted(core, key=repr)
    outside = [
        state for state in concrete.schema.states() if state not in core
    ]
    # Cycles are detected on the raw graph: a self-loop outside the
    # core is a divergence opportunity under the unfair daemon just as
    # much as a longer cycle (a repair makes it escapable, which only
    # strong fairness turns into convergence).
    cycle_states = states_on_cycles(concrete, outside)

    # States that can reach the core through C alone need no repair
    # (unless repair_all_outside), except that membership of a cycle
    # still needs an escape to kill the fair trap.
    can_reach_core: set = set(core)
    changed = True
    while changed:
        changed = False
        for state in outside:
            if state in can_reach_core:
                continue
            if any(t in can_reach_core for t in concrete.successors(state)):
                can_reach_core.add(state)
                changed = True

    repairs: Dict[State, State] = {}
    for state in outside:
        stuck = (
            concrete.is_terminal(state)
            or state in cycle_states
            or state not in can_reach_core
        )
        if repair_all_outside or stuck:
            repairs[state] = _nearest_core_state(state, core_states)

    wrapper = System(
        concrete.schema,
        list(repairs.items()),
        initial=(),
        name=f"W({concrete.name})",
        labels={pair: ("w.repair",) for pair in repairs.items()},
    )
    composite = box(concrete, wrapper, name=f"{concrete.name} [] W")

    fairness = "none" if not cycle_states else "strong"
    verification = check_stabilization(
        composite,
        abstract,
        alpha,
        stutter_insensitive=stutter_insensitive,
        fairness=fairness,
        compute_steps=False,
    )
    return SynthesizedWrapper(
        wrapper=wrapper,
        composite=composite,
        verification=verification.result,
        fairness=fairness,
        repaired_states=frozenset(repairs),
    )
