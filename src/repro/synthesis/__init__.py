"""Wrapper synthesis — the paper's future-work refinement tooling.

:func:`~repro.synthesis.wrapper_synthesis.synthesize_wrapper` produces
a dependability wrapper for a given system/spec pair and verifies the
composite on the spot.
"""

from .render import system_to_program
from .wrapper_synthesis import SynthesizedWrapper, synthesize_wrapper

__all__ = ["SynthesizedWrapper", "synthesize_wrapper", "system_to_program"]
