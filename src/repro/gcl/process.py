"""Processes and the read/write restrictions of the execution models.

Section 3.1 of the paper distinguishes two system models:

* the **abstract** model lets a process read *and write* its own state
  and the states of its two ring neighbours in one atomic step;
* the **concrete** model lets it read neighbours but **write only its
  own state**.

The whole point of the derivations in Sections 4-6 is to refine
abstract programs that violate the concrete restriction into programs
that satisfy it.  :class:`Process` records which variables a process
owns and which it may read, and :func:`check_model_compliance` decides
mechanically whether a program fits a model — the reproduction uses it
to confirm that ``BTR4``/``BTR3`` *break* the concrete model while
``C1``/``C2``/``C3`` and the refined wrappers satisfy it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from .action import GuardedAction

__all__ = ["Process", "ModelViolation", "check_model_compliance"]


class Process:
    """A named process owning variables and holding guarded actions.

    Args:
        name: process identifier (e.g. ``"p3"``).
        owns: variables this process may write.
        reads: variables this process may additionally read (its own
            are always readable); for ring processes these are the
            neighbours' variables.
        actions: the process's guarded actions.
    """

    def __init__(
        self,
        name: str,
        owns: Iterable[str],
        reads: Iterable[str],
        actions: Sequence[GuardedAction],
    ):
        self.name = name
        self.owns: FrozenSet[str] = frozenset(owns)
        self.reads: FrozenSet[str] = frozenset(reads) | self.owns
        self.actions: Tuple[GuardedAction, ...] = tuple(actions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, owns={sorted(self.owns)}, actions={len(self.actions)})"


@dataclass(frozen=True)
class ModelViolation:
    """One violation of a model restriction.

    Attributes:
        process: offending process name.
        action: offending action name.
        kind: ``"write"`` or ``"read"``.
        variable: the variable accessed outside the allowance.
    """

    process: str
    action: str
    kind: str
    variable: str

    def format(self) -> str:
        """One-line human rendering of the violation."""
        verb = "writes" if self.kind == "write" else "reads"
        return f"process {self.process}: action {self.action} {verb} {self.variable}"


def check_model_compliance(
    processes: Sequence[Process], writes_restricted: bool = True
) -> List[ModelViolation]:
    """Check every process's actions against its access rights.

    Args:
        processes: the program's processes.
        writes_restricted: when true (the *concrete* model), an action
            may write only variables its process owns; when false (the
            *abstract* model), writes anywhere inside the declared read
            neighbourhood are allowed — the paper's abstract model
            permits writing a neighbour's state.

    Returns:
        All violations found (empty list means the program complies).
        Reads outside the declared neighbourhood are violations in
        both models.
    """
    violations: List[ModelViolation] = []
    for process in processes:
        writable = process.owns if writes_restricted else process.reads
        for action in process.actions:
            for variable in sorted(action.write_set()):
                if variable not in writable:
                    violations.append(
                        ModelViolation(process.name, action.name, "write", variable)
                    )
            for variable in sorted(action.read_set()):
                if variable not in process.reads:
                    violations.append(
                        ModelViolation(process.name, action.name, "read", variable)
                    )
    return violations
