"""A concrete syntax for guarded-command programs.

The surface syntax mirrors the paper's notation closely enough to
transcribe its figures directly::

    program dijkstra3
    # a 3-process instance of Dijkstra's 3-state ring
    var c.0, c.1, c.2 : mod 3

    process p0 owns c.0 reads c.1
    process p1 owns c.1 reads c.0, c.2
    process p2 owns c.2 reads c.1, c.0

    action bottom of p0 :: c.1 == (c.0 + 1) % 3 --> c.0 := (c.1 + 1) % 3
    action mid.up of p1 :: c.0 == (c.1 + 1) % 3 --> c.1 := c.0
    action mid.down of p1 :: c.2 == (c.1 + 1) % 3 --> c.1 := c.2
    action top of p2 :: c.1 == c.0 && (c.1 + 1) % 3 != c.2 --> c.2 := (c.1 + 1) % 3

    init c.0 == 0 && c.1 == 0 && c.2 == 0

Grammar (newline-insensitive; ``#`` starts a comment):

.. code-block:: text

    program    := "program" IDENT decl*
    decl       := vardecl | procdecl | actiondecl | initdecl
    vardecl    := "var" identlist ":" domain
    domain     := "bool" | INT ".." INT | "mod" INT
    procdecl   := "process" IDENT "owns" identlist ["reads" identlist]
    actiondecl := "action" IDENT ["of" IDENT] "::" expr "-->" assign ("," assign)*
    assign     := IDENT ":=" expr
    initdecl   := "init" expr

Expression precedence, loosest first: ``=>`` (right-assoc), ``||``,
``&&``, equality (``==`` ``!=``), ordering (``<`` ``<=`` ``>`` ``>=``),
additive (``+`` ``-``), multiplicative (``*`` ``%``), unary (``!``
``-``), atoms (integers, ``true``/``false``, identifiers, parentheses).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import GCLParseError
from .action import GuardedAction
from .domain import BoolDomain, Domain, IntRange, ModularDomain
from .expr import (
    Add,
    And,
    Const,
    Eq,
    Expr,
    Ge,
    Gt,
    Implies,
    Ite,
    Le,
    Lt,
    Mod,
    Mul,
    Ne,
    Not,
    Or,
    Sub,
    Var,
)
from .process import Process
from .program import Program
from .variable import Variable

__all__ = ["parse_program", "parse_expression", "tokenize"]

_KEYWORDS = frozenset(
    ["program", "var", "process", "action", "init", "of", "owns", "reads",
     "bool", "mod", "true", "false"]
)

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<ws>\s+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_]\w*(?:\.\w+)*)
  | (?P<op>-->|::|:=|\.\.|==|!=|<=|>=|&&|\|\||=>|[-+*%!<>(),:?])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    """One lexical token with its source position."""

    kind: str  # "int" | "ident" | "keyword" | "op" | "eof"
    text: str
    line: int
    column: int


def tokenize(source: str) -> List[_Token]:
    """Lex ``source`` into tokens (comments and whitespace dropped).

    Raises:
        GCLParseError: on any character no rule matches.
    """
    tokens: List[_Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _TOKEN_PATTERN.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise GCLParseError(
                f"unexpected character {source[position]!r}", line, column
            )
        text = match.group(0)
        kind = match.lastgroup or ""
        column = position - line_start + 1
        if kind == "int":
            tokens.append(_Token("int", text, line, column))
        elif kind == "ident":
            token_kind = "keyword" if text in _KEYWORDS else "ident"
            tokens.append(_Token(token_kind, text, line, column))
        elif kind == "op":
            tokens.append(_Token("op", text, line, column))
        # comments and whitespace fall through; track newlines for both
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rindex("\n") + 1
        position = match.end()
    tokens.append(_Token("eof", "", line, len(source) - line_start + 1))
    return tokens


class _Parser:
    """Recursive-descent / precedence-climbing parser over a token list."""

    def __init__(self, tokens: Sequence[_Token]):
        self._tokens = tokens
        self._position = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._position]

    def _advance(self) -> _Token:
        token = self._tokens[self._position]
        if token.kind != "eof":
            self._position += 1
        return token

    def _error(self, message: str) -> GCLParseError:
        token = self._peek()
        return GCLParseError(message, token.line, token.column)

    def _expect_op(self, text: str) -> _Token:
        token = self._peek()
        if token.kind != "op" or token.text != text:
            raise self._error(f"expected {text!r}, found {token.text!r}")
        return self._advance()

    def _expect_keyword(self, text: str) -> _Token:
        token = self._peek()
        if token.kind != "keyword" or token.text != text:
            raise self._error(f"expected keyword {text!r}, found {token.text!r}")
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != "ident":
            raise self._error(f"expected an identifier, found {token.text!r}")
        return self._advance().text

    def _expect_int(self) -> int:
        token = self._peek()
        if token.kind != "int":
            raise self._error(f"expected an integer, found {token.text!r}")
        return int(self._advance().text)

    def _at_op(self, text: str) -> bool:
        token = self._peek()
        return token.kind == "op" and token.text == text

    def _at_keyword(self, text: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.text == text

    # -- program structure ----------------------------------------------

    def parse_program(self) -> Program:
        """``program IDENT decl*`` to a :class:`Program`."""
        self._expect_keyword("program")
        name = self._expect_ident()
        variables: List[Variable] = []
        actions: List[GuardedAction] = []
        action_owner: Dict[str, Optional[str]] = {}
        process_decls: Dict[str, Tuple[List[str], Optional[List[str]]]] = {}
        process_order: List[str] = []
        init_expr: Optional[Expr] = None
        while not self._peek().kind == "eof":
            if self._at_keyword("var"):
                variables.extend(self._parse_vardecl())
            elif self._at_keyword("process"):
                proc_name, owns, reads = self._parse_procdecl()
                if proc_name in process_decls:
                    raise self._error(f"process {proc_name!r} declared twice")
                process_decls[proc_name] = (owns, reads)
                process_order.append(proc_name)
            elif self._at_keyword("action"):
                action, owner = self._parse_actiondecl()
                actions.append(action)
                action_owner[action.name] = owner
            elif self._at_keyword("init"):
                if init_expr is not None:
                    raise self._error("duplicate init declaration")
                self._advance()
                init_expr = self.parse_expression()
            else:
                raise self._error(
                    f"expected a declaration, found {self._peek().text!r}"
                )
        processes = self._build_processes(
            process_order, process_decls, actions, action_owner
        )
        return Program(
            name,
            variables,
            actions,
            init=init_expr,
            processes=processes or None,
        )

    def _parse_vardecl(self) -> List[Variable]:
        self._expect_keyword("var")
        names = [self._expect_ident()]
        while self._at_op(","):
            self._advance()
            names.append(self._expect_ident())
        self._expect_op(":")
        domain = self._parse_domain()
        return [Variable(name, domain) for name in names]

    def _parse_domain(self) -> Domain:
        if self._at_keyword("bool"):
            self._advance()
            return BoolDomain()
        if self._at_keyword("mod"):
            self._advance()
            modulus = self._expect_int()
            if modulus < 1:
                raise self._error("modulus must be positive")
            return ModularDomain(modulus)
        low = self._expect_int()
        self._expect_op("..")
        high = self._expect_int()
        if high < low:
            raise self._error(f"empty range {low}..{high}")
        return IntRange(low, high)

    def _parse_procdecl(self) -> Tuple[str, List[str], Optional[List[str]]]:
        self._expect_keyword("process")
        name = self._expect_ident()
        self._expect_keyword("owns")
        owns = [self._expect_ident()]
        while self._at_op(","):
            self._advance()
            owns.append(self._expect_ident())
        reads: Optional[List[str]] = None
        if self._at_keyword("reads"):
            self._advance()
            reads = [self._expect_ident()]
            while self._at_op(","):
                self._advance()
                reads.append(self._expect_ident())
        return name, owns, reads

    def _parse_actiondecl(self) -> Tuple[GuardedAction, Optional[str]]:
        self._expect_keyword("action")
        name = self._expect_ident()
        owner: Optional[str] = None
        if self._at_keyword("of"):
            self._advance()
            owner = self._expect_ident()
        self._expect_op("::")
        guard = self.parse_expression()
        self._expect_op("-->")
        assignments: Dict[str, Expr] = {}
        while True:
            target = self._expect_ident()
            self._expect_op(":=")
            value = self.parse_expression()
            if target in assignments:
                raise self._error(
                    f"action {name!r} assigns {target!r} twice"
                )
            assignments[target] = value
            if self._at_op(","):
                self._advance()
                continue
            break
        return GuardedAction(name, guard, assignments), owner

    def _build_processes(
        self,
        process_order: List[str],
        process_decls: Dict[str, Tuple[List[str], Optional[List[str]]]],
        actions: List[GuardedAction],
        action_owner: Dict[str, Optional[str]],
    ) -> List[Process]:
        if not process_decls:
            return []
        orphans = [
            action.name for action in actions if action_owner[action.name] is None
        ]
        if orphans:
            raise GCLParseError(
                "programs with process declarations must attribute every "
                f"action with 'of'; missing for {orphans}"
            )
        unknown = {
            owner
            for owner in action_owner.values()
            if owner is not None and owner not in process_decls
        }
        if unknown:
            raise GCLParseError(f"actions reference undeclared processes {sorted(unknown)}")
        processes: List[Process] = []
        for proc_name in process_order:
            owns, reads = process_decls[proc_name]
            owned_actions = [
                action for action in actions if action_owner[action.name] == proc_name
            ]
            if reads is None:
                inferred: set = set()
                for action in owned_actions:
                    inferred |= action.read_set()
                reads = sorted(inferred)
            processes.append(Process(proc_name, owns, reads, owned_actions))
        return processes

    # -- expressions ------------------------------------------------------

    def parse_expression(self) -> Expr:
        """Entry point: parse at the loosest precedence level.

        The loosest level is the right-associative conditional
        ``cond ? then : otherwise``, below implication.
        """
        condition = self._parse_implies()
        if self._at_op("?"):
            self._advance()
            then = self.parse_expression()
            self._expect_op(":")
            otherwise = self.parse_expression()
            return Ite(condition, then, otherwise)
        return condition

    def _parse_implies(self) -> Expr:
        left = self._parse_or()
        if self._at_op("=>"):
            self._advance()
            right = self._parse_implies()  # right associative
            return Implies(left, right)
        return left

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._at_op("||"):
            self._advance()
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_equality()
        while self._at_op("&&"):
            self._advance()
            left = And(left, self._parse_equality())
        return left

    def _parse_equality(self) -> Expr:
        left = self._parse_ordering()
        while self._at_op("==") or self._at_op("!="):
            operator = self._advance().text
            right = self._parse_ordering()
            left = Eq(left, right) if operator == "==" else Ne(left, right)
        return left

    def _parse_ordering(self) -> Expr:
        left = self._parse_additive()
        while any(self._at_op(op) for op in ("<", "<=", ">", ">=")):
            operator = self._advance().text
            right = self._parse_additive()
            node = {"<": Lt, "<=": Le, ">": Gt, ">=": Ge}[operator]
            left = node(left, right)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._at_op("+") or self._at_op("-"):
            operator = self._advance().text
            right = self._parse_multiplicative()
            left = Add(left, right) if operator == "+" else Sub(left, right)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._at_op("*") or self._at_op("%"):
            operator = self._advance().text
            right = self._parse_unary()
            left = Mul(left, right) if operator == "*" else Mod(left, right)
        return left

    def _parse_unary(self) -> Expr:
        if self._at_op("!"):
            self._advance()
            return Not(self._parse_unary())
        if self._at_op("-"):
            self._advance()
            return Sub(Const(0), self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self) -> Expr:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return Const(int(token.text))
        if token.kind == "keyword" and token.text in ("true", "false"):
            self._advance()
            return Const(token.text == "true")
        if token.kind == "ident":
            self._advance()
            return Var(token.text)
        if self._at_op("("):
            self._advance()
            inner = self.parse_expression()
            self._expect_op(")")
            return inner
        raise self._error(f"expected an expression, found {token.text!r}")


def parse_program(source: str) -> Program:
    """Parse a full program text.

    Raises:
        GCLParseError: with line/column information on syntax errors;
        GCLError: on semantic problems (duplicate variables, actions
            over undeclared variables, ...).
    """
    parser = _Parser(tokenize(source))
    program = parser.parse_program()
    trailing = parser._peek()
    if trailing.kind != "eof":  # pragma: no cover - parse_program consumes to eof
        raise GCLParseError("trailing input", trailing.line, trailing.column)
    return program


def parse_expression(source: str) -> Expr:
    """Parse a standalone expression (used by tests and the REPL-style examples).

    Raises:
        GCLParseError: on syntax errors or trailing input.
    """
    parser = _Parser(tokenize(source))
    expression = parser.parse_expression()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise GCLParseError(
            f"trailing input after expression: {trailing.text!r}",
            trailing.line,
            trailing.column,
        )
    return expression
