"""Compilation of guarded-command programs to transition systems.

The semantics of a program under a daemon is the automaton whose
states are all assignments of domain values to the program's variables
(the *full* space — stabilization analysis quantifies over arbitrary
transient corruptions, so unreachable states matter), and whose
transitions are the daemon's moves.

Out-of-domain writes are a compile-time error: an action that can
drive a variable outside its declared domain in some state is a bug in
the program, and silently clamping it would falsify every check
downstream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.errors import GCLError
from ..core.state import State
from ..core.system import System, Transition
from .daemon import CentralDaemon, Daemon
from .program import Program

__all__ = ["compile_program"]


def compile_program(
    program: Program,
    daemon: Optional[Daemon] = None,
    keep_stutter: bool = True,
    name: Optional[str] = None,
) -> System:
    """Compile ``program`` into a :class:`~repro.core.system.System`.

    Args:
        program: the guarded-command program.
        daemon: scheduling semantics; defaults to the paper's central
            daemon.
        keep_stutter: whether moves that do not change the state become
            self-loop transitions (``True``, the faithful semantics —
            the paper's ``C3`` genuinely stutters) or are dropped
            (``False``, the weak-fairness quotient).
        name: system display name (defaults to the program name, with
            the daemon appended when it is not the central one).

    Returns:
        The compiled automaton over the program's full state space,
        with transition labels recording the action(s) that produced
        each transition.

    Raises:
        GCLError: if any move writes a value outside a variable's
            declared domain.
    """
    chosen = daemon or CentralDaemon()
    schema = program.schema()
    transitions: List[Transition] = []
    labels: Dict[Transition, Set[str]] = {}
    for state in schema.states():
        env = schema.unpack(state)
        for new_env, action_labels in chosen.steps(program.actions, env):
            try:
                successor = schema.pack(new_env)
            except Exception as exc:
                raise GCLError(
                    f"program {program.name!r}: action(s) {action_labels} drive "
                    f"the state out of domain from {schema.format_state(state)}: {exc}"
                )
            if successor == state and not keep_stutter:
                continue
            pair = (state, successor)
            transitions.append(pair)
            labels.setdefault(pair, set()).update(action_labels)
    system_name = name or (
        program.name if chosen.name == "central" else f"{program.name}@{chosen.name}"
    )
    return System(
        schema,
        transitions,
        program.initial_states(),
        name=system_name,
        labels={pair: frozenset(names) for pair, names in labels.items()},
    )
