"""Named variables with finite domains."""

from __future__ import annotations

from .domain import Domain

__all__ = ["Variable"]


class Variable:
    """A state variable of a guarded-command program.

    Args:
        name: the variable's identifier.  The token-ring programs use
            indexed names such as ``c.2`` or ``up.0`` — any non-empty
            string without whitespace is accepted.
        domain: the finite :class:`~repro.gcl.domain.Domain` of values.

    Raises:
        ValueError: on empty or whitespace-containing names.
    """

    def __init__(self, name: str, domain: Domain):
        if not name or any(ch.isspace() for ch in name):
            raise ValueError(f"invalid variable name {name!r}")
        self.name = name
        self.domain = domain

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name == other.name and self.domain == other.domain

    def __hash__(self) -> int:
        return hash((self.name, self.domain))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r}, {self.domain.description})"
