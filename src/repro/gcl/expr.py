"""Expression AST for the guarded-command language.

Expressions are small immutable trees evaluated against an
*environment* — a mapping from variable name to value (the unpacked
form of a state).  The node set covers exactly what the paper's
protocols need: variables, constants, boolean connectives, (in)equality
and ordering, integer arithmetic, and the modular operators the paper
writes as circled-plus / circled-minus.

Construction is explicit (``Eq(Var("x"), Const(1))``) with a few
convenience builders at the bottom; the surface syntax lives in
:mod:`repro.gcl.parser`.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Mapping, Tuple

from ..core.errors import GCLEvalError

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Implies",
    "Eq",
    "Ne",
    "Lt",
    "Le",
    "Gt",
    "Ge",
    "Add",
    "Sub",
    "Mul",
    "Mod",
    "AddMod",
    "SubMod",
    "Ite",
    "BigAnd",
    "BigOr",
    "TRUE",
    "FALSE",
]

Env = Mapping[str, object]


class Expr:
    """Base class of all expression nodes.

    Subclasses implement :meth:`eval`, :meth:`free_variables`, and
    :meth:`render`.  Nodes are immutable and compare structurally.
    """

    def eval(self, env: Env) -> object:
        """Evaluate against an environment.

        Raises:
            GCLEvalError: on unbound variables or type errors.
        """
        raise NotImplementedError

    def free_variables(self) -> FrozenSet[str]:
        """Names of all variables occurring in the expression."""
        raise NotImplementedError

    def render(self) -> str:
        """Concrete-syntax rendering (re-parseable by the GCL parser)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.render()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Expr):
            return NotImplemented
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError


class Var(Expr):
    """A variable reference by name."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name

    def eval(self, env: Env) -> object:
        try:
            return env[self.name]
        except KeyError:
            raise GCLEvalError(f"unbound variable {self.name!r}")

    def free_variables(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def render(self) -> str:
        return self.name

    def _key(self) -> tuple:
        return (self.name,)


class Const(Expr):
    """A literal constant (int or bool)."""

    def __init__(self, value: object):
        self.value = value

    def eval(self, env: Env) -> object:
        return self.value

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def render(self) -> str:
        if self.value is True:
            return "true"
        if self.value is False:
            return "false"
        return str(self.value)

    def _key(self) -> tuple:
        return (self.value,)


TRUE = Const(True)
FALSE = Const(False)


class _Unary(Expr):
    """Shared plumbing for one-operand nodes."""

    symbol = "?"

    def __init__(self, operand: Expr):
        self.operand = operand

    def free_variables(self) -> FrozenSet[str]:
        return self.operand.free_variables()

    def render(self) -> str:
        return f"{self.symbol}({self.operand.render()})"

    def _key(self) -> tuple:
        return (self.operand,)


class Not(_Unary):
    """Boolean negation."""

    symbol = "!"

    def eval(self, env: Env) -> object:
        value = self.operand.eval(env)
        _require_bool(value, "!")
        return not value


class _Binary(Expr):
    """Shared plumbing for two-operand nodes."""

    symbol = "?"

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def free_variables(self) -> FrozenSet[str]:
        return self.left.free_variables() | self.right.free_variables()

    def render(self) -> str:
        return f"({self.left.render()} {self.symbol} {self.right.render()})"

    def _key(self) -> tuple:
        return (self.left, self.right)


def _require_bool(value: object, operator: str) -> None:
    if not isinstance(value, bool):
        raise GCLEvalError(f"operator {operator!r} needs a boolean, got {value!r}")


def _require_int(value: object, operator: str) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise GCLEvalError(f"operator {operator!r} needs an integer, got {value!r}")


class And(_Binary):
    """Boolean conjunction (non-strict in neither operand: both evaluated)."""

    symbol = "&&"

    def eval(self, env: Env) -> object:
        left = self.left.eval(env)
        _require_bool(left, "&&")
        if not left:
            return False
        right = self.right.eval(env)
        _require_bool(right, "&&")
        return right


class Or(_Binary):
    """Boolean disjunction."""

    symbol = "||"

    def eval(self, env: Env) -> object:
        left = self.left.eval(env)
        _require_bool(left, "||")
        if left:
            return True
        right = self.right.eval(env)
        _require_bool(right, "||")
        return right


class Implies(_Binary):
    """Boolean implication ``left => right``."""

    symbol = "=>"

    def eval(self, env: Env) -> object:
        left = self.left.eval(env)
        _require_bool(left, "=>")
        if not left:
            return True
        right = self.right.eval(env)
        _require_bool(right, "=>")
        return right


class Eq(_Binary):
    """Equality over any values."""

    symbol = "=="

    def eval(self, env: Env) -> object:
        return self.left.eval(env) == self.right.eval(env)


class Ne(_Binary):
    """Disequality over any values."""

    symbol = "!="

    def eval(self, env: Env) -> object:
        return self.left.eval(env) != self.right.eval(env)


class _IntCompare(_Binary):
    """Shared plumbing for integer ordering comparisons."""

    comparator: Callable[[int, int], bool] = staticmethod(lambda a, b: False)

    def eval(self, env: Env) -> object:
        left = self.left.eval(env)
        right = self.right.eval(env)
        _require_int(left, self.symbol)
        _require_int(right, self.symbol)
        return type(self).comparator(left, right)


class Lt(_IntCompare):
    """Strictly-less-than over integers."""

    symbol = "<"
    comparator = staticmethod(lambda a, b: a < b)


class Le(_IntCompare):
    """Less-or-equal over integers."""

    symbol = "<="
    comparator = staticmethod(lambda a, b: a <= b)


class Gt(_IntCompare):
    """Strictly-greater-than over integers."""

    symbol = ">"
    comparator = staticmethod(lambda a, b: a > b)


class Ge(_IntCompare):
    """Greater-or-equal over integers."""

    symbol = ">="
    comparator = staticmethod(lambda a, b: a >= b)


class _IntArith(_Binary):
    """Shared plumbing for integer arithmetic."""

    operation: Callable[[int, int], int] = staticmethod(lambda a, b: 0)

    def eval(self, env: Env) -> object:
        left = self.left.eval(env)
        right = self.right.eval(env)
        _require_int(left, self.symbol)
        _require_int(right, self.symbol)
        return type(self).operation(left, right)


class Add(_IntArith):
    """Integer addition."""

    symbol = "+"
    operation = staticmethod(lambda a, b: a + b)


class Sub(_IntArith):
    """Integer subtraction."""

    symbol = "-"
    operation = staticmethod(lambda a, b: a - b)


class Mul(_IntArith):
    """Integer multiplication."""

    symbol = "*"
    operation = staticmethod(lambda a, b: a * b)


class Mod(_IntArith):
    """Integer remainder (Python semantics: result has divisor's sign).

    Raises:
        GCLEvalError: on modulus zero.
    """

    symbol = "%"

    def eval(self, env: Env) -> object:
        left = self.left.eval(env)
        right = self.right.eval(env)
        _require_int(left, "%")
        _require_int(right, "%")
        if right == 0:
            raise GCLEvalError("modulus by zero")
        return left % right


class AddMod(Expr):
    """The paper's circled-plus: ``(left + right) mod modulus``.

    Args:
        left: integer expression.
        right: integer expression.
        modulus: the fixed, positive modulus (e.g. 3 for the 3-state
            systems).
    """

    def __init__(self, left: Expr, right: Expr, modulus: int):
        if modulus < 1:
            raise ValueError("modulus must be positive")
        self.left = left
        self.right = right
        self.modulus = modulus

    def eval(self, env: Env) -> object:
        left = self.left.eval(env)
        right = self.right.eval(env)
        _require_int(left, "(+)")
        _require_int(right, "(+)")
        return (left + right) % self.modulus

    def free_variables(self) -> FrozenSet[str]:
        return self.left.free_variables() | self.right.free_variables()

    def render(self) -> str:
        return f"(({self.left.render()} + {self.right.render()}) % {self.modulus})"

    def _key(self) -> tuple:
        return (self.left, self.right, self.modulus)


class SubMod(Expr):
    """The paper's circled-minus: ``(left - right) mod modulus``."""

    def __init__(self, left: Expr, right: Expr, modulus: int):
        if modulus < 1:
            raise ValueError("modulus must be positive")
        self.left = left
        self.right = right
        self.modulus = modulus

    def eval(self, env: Env) -> object:
        left = self.left.eval(env)
        right = self.right.eval(env)
        _require_int(left, "(-)")
        _require_int(right, "(-)")
        return (left - right) % self.modulus

    def free_variables(self) -> FrozenSet[str]:
        return self.left.free_variables() | self.right.free_variables()

    def render(self) -> str:
        return f"(({self.left.render()} - {self.right.render()}) % {self.modulus})"

    def _key(self) -> tuple:
        return (self.left, self.right, self.modulus)


class Ite(Expr):
    """Conditional expression ``condition ? then : otherwise``.

    Needed to transcribe the paper's Section 6 composite listing,
    whose mid-process actions are if-then-else cascades.  The
    condition must evaluate to a boolean; only the selected branch's
    value is returned (both branches may be evaluated safely — the
    language is effect-free).
    """

    def __init__(self, condition: Expr, then: Expr, otherwise: Expr):
        self.condition = condition
        self.then = then
        self.otherwise = otherwise

    def eval(self, env: Env) -> object:
        chosen = self.condition.eval(env)
        _require_bool(chosen, "?:")
        return self.then.eval(env) if chosen else self.otherwise.eval(env)

    def free_variables(self) -> FrozenSet[str]:
        return (
            self.condition.free_variables()
            | self.then.free_variables()
            | self.otherwise.free_variables()
        )

    def render(self) -> str:
        return (
            f"({self.condition.render()} ? {self.then.render()} "
            f": {self.otherwise.render()})"
        )

    def _key(self) -> tuple:
        return (self.condition, self.then, self.otherwise)


def BigAnd(*conjuncts: Expr) -> Expr:
    """N-ary conjunction; ``BigAnd()`` is ``true``.

    The paper's universally quantified guards (e.g. the guard of
    ``W1``) expand to finite conjunctions per instance, which this
    builder assembles.
    """
    result: Expr = TRUE
    for conjunct in conjuncts:
        result = conjunct if result is TRUE else And(result, conjunct)
    return result


def BigOr(*disjuncts: Expr) -> Expr:
    """N-ary disjunction; ``BigOr()`` is ``false``."""
    result: Expr = FALSE
    for disjunct in disjuncts:
        result = disjunct if result is FALSE else Or(result, disjunct)
    return result
