"""Daemons: the scheduling semantics of guarded-command programs.

The paper's execution model is the classical *central daemon*: at each
step an arbitrary enabled action is selected and executed atomically.
Dijkstra's stabilization results (and all the derivations reproduced
here) are stated under this semantics.  Two further daemons are
provided for experimentation:

* :class:`SynchronousDaemon` — every enabled action fires at once,
  with a deterministic conflict rule (actions are applied in program
  order; later writes win).  Dijkstra-style rings are *not* in general
  stabilizing under this daemon, which the ablation benchmarks
  demonstrate.
* :class:`DistributedDaemon` — any non-empty subset of enabled actions
  fires simultaneously (bounded subset size keeps the relation
  finite); strictly more transitions than the central daemon.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Sequence, Tuple

from .action import GuardedAction
from .expr import Env

__all__ = ["Daemon", "CentralDaemon", "SynchronousDaemon", "DistributedDaemon"]


class Daemon:
    """Strategy interface: which (multi-)steps a program may take.

    Subclasses implement :meth:`steps`, mapping an environment to the
    set of ``(new_environment, action_labels)`` moves the daemon
    allows.  A move must change *something being written* — daemons
    return moves for every selection of enabled actions, including
    stuttering moves where the writes happen to preserve the state;
    whether stuttering transitions are kept is the program compiler's
    concern, not the daemon's.
    """

    name = "daemon"

    def steps(
        self, actions: Sequence[GuardedAction], env: Env
    ) -> Iterable[Tuple[Dict[str, object], Tuple[str, ...]]]:
        """Enumerate the daemon's moves from ``env``.

        Args:
            actions: the program's actions, in program order.
            env: the current environment.

        Yields:
            ``(new_env, labels)`` pairs, one per allowed move.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class CentralDaemon(Daemon):
    """One enabled action at a time — the paper's execution model."""

    name = "central"

    def steps(
        self, actions: Sequence[GuardedAction], env: Env
    ) -> Iterable[Tuple[Dict[str, object], Tuple[str, ...]]]:
        for action in actions:
            if action.enabled(env):
                yield action.execute(env), (action.name,)


class SynchronousDaemon(Daemon):
    """All enabled actions fire in one step.

    Conflicting writes are resolved deterministically: actions execute
    against the shared pre-state and their updates are merged in
    program order, so a later action's write to the same variable wins.
    """

    name = "synchronous"

    def steps(
        self, actions: Sequence[GuardedAction], env: Env
    ) -> Iterable[Tuple[Dict[str, object], Tuple[str, ...]]]:
        enabled = [action for action in actions if action.enabled(env)]
        if not enabled:
            return
        result = dict(env)
        labels: List[str] = []
        for action in enabled:
            updates = {name: expr.eval(env) for name, expr in action.assignments.items()}
            result.update(updates)
            labels.append(action.name)
        yield result, tuple(labels)


class DistributedDaemon(Daemon):
    """Any non-empty subset of enabled actions fires simultaneously.

    Args:
        max_concurrency: bound on the subset size (keeps the move set
            polynomial for wide rings).  The default of 2 already
            exhibits every read/write race the concrete model worries
            about.

    Conflicts resolve as in :class:`SynchronousDaemon`: pre-state
    reads, program-order write merging.
    """

    name = "distributed"

    def __init__(self, max_concurrency: int = 2):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        self.max_concurrency = max_concurrency

    def steps(
        self, actions: Sequence[GuardedAction], env: Env
    ) -> Iterable[Tuple[Dict[str, object], Tuple[str, ...]]]:
        enabled = [action for action in actions if action.enabled(env)]
        limit = min(self.max_concurrency, len(enabled))
        for size in range(1, limit + 1):
            for subset in itertools.combinations(enabled, size):
                result = dict(env)
                labels: List[str] = []
                for action in subset:
                    updates = {
                        name: expr.eval(env)
                        for name, expr in action.assignments.items()
                    }
                    result.update(updates)
                    labels.append(action.name)
                yield result, tuple(labels)
