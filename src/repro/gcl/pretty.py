"""Rendering programs back to concrete syntax.

The renderer produces text that :func:`repro.gcl.parser.parse_program`
accepts, so round-tripping is testable; it also mirrors the paper's
guarded-command layout closely enough that a rendered derivation can
be compared with the figures by eye.
"""

from __future__ import annotations

from typing import List

from .domain import BoolDomain, IntRange, ModularDomain
from .program import Program

__all__ = ["render_program", "render_actions"]


def _render_domain(variable) -> str:
    """Concrete syntax of a variable's domain."""
    domain = variable.domain
    if isinstance(domain, BoolDomain):
        return "bool"
    if isinstance(domain, ModularDomain):
        return f"mod {domain.modulus}"
    if isinstance(domain, IntRange):
        return f"{domain.low}..{domain.high}"
    raise ValueError(
        f"domain of {variable.name!r} has no concrete syntax: {domain.description}"
    )


def render_actions(program: Program) -> str:
    """Only the action lines, paper-figure style (guard --> effects)."""
    width = max((len(action.name) for action in program.actions), default=0)
    lines = []
    for action in program.actions:
        lines.append(f"{action.name.ljust(width)}  ::  {action.render()}")
    return "\n".join(lines)


def render_program(program: Program) -> str:
    """Full concrete-syntax listing of a program.

    Re-parseable by :func:`repro.gcl.parser.parse_program` whenever all
    domains have concrete syntax (bool / range / mod) and, if the
    program declares processes, every action belongs to one.
    """
    # Program names may contain decoration ("K4-state", "C2 [] W1''");
    # normalize to a parseable identifier (display names are not part
    # of automaton equality).
    import re

    identifier = re.sub(r"\W+", "_", program.name).strip("_") or "program"
    if not identifier[0].isalpha() and identifier[0] != "_":
        identifier = f"p_{identifier}"
    lines: List[str] = [f"program {identifier}"]
    # Group consecutive variables with identical domains onto one line.
    index = 0
    variables = program.variables
    while index < len(variables):
        run_end = index + 1
        while (
            run_end < len(variables)
            and variables[run_end].domain == variables[index].domain
        ):
            run_end += 1
        names = ", ".join(variable.name for variable in variables[index:run_end])
        lines.append(f"var {names} : {_render_domain(variables[index])}")
        index = run_end

    owner_of = {}
    for process in program.processes:
        owns = ", ".join(sorted(process.owns))
        extra_reads = sorted(process.reads - process.owns)
        reads = f" reads {', '.join(extra_reads)}" if extra_reads else ""
        lines.append(f"process {process.name} owns {owns}{reads}")
        for action in process.actions:
            owner_of[action.name] = process.name

    for action in program.actions:
        owner = owner_of.get(action.name)
        of_clause = f" of {owner}" if owner else ""
        effects = ", ".join(
            f"{name} := {expr.render()}"
            for name, expr in sorted(action.assignments.items())
        )
        lines.append(
            f"action {action.name}{of_clause} :: {action.guard.render()} --> {effects}"
        )

    init = getattr(program, "_init", None)
    from .expr import Expr

    if isinstance(init, Expr):
        lines.append(f"init {init.render()}")
    elif init is not None:
        # Explicit initial-state lists render as a disjunction of
        # per-state conjunctions, re-parseable by the grammar.
        def literal(value: object) -> str:
            if value is True:
                return "true"
            if value is False:
                return "false"
            return str(value)

        disjuncts = []
        for assignment in init:
            conjuncts = " && ".join(
                f"{name} == {literal(dict(assignment)[name])}"
                for name in (variable.name for variable in program.variables)
            )
            disjuncts.append(f"({conjuncts})")
        if disjuncts:
            lines.append("init " + " || ".join(disjuncts))
    return "\n".join(lines)
