"""Guarded-command language: the notation of the paper's figures.

Provides finite-domain variables (:mod:`~repro.gcl.domain`,
:mod:`~repro.gcl.variable`), expressions (:mod:`~repro.gcl.expr`),
guarded actions (:mod:`~repro.gcl.action`), processes with the
abstract/concrete access models (:mod:`~repro.gcl.process`), programs
(:mod:`~repro.gcl.program`), daemons (:mod:`~repro.gcl.daemon`),
compilation to automata (:mod:`~repro.gcl.semantics`), and a concrete
syntax (:mod:`~repro.gcl.parser`, :mod:`~repro.gcl.pretty`).
"""

from .action import GuardedAction
from .daemon import CentralDaemon, Daemon, DistributedDaemon, SynchronousDaemon
from .domain import BoolDomain, Domain, EnumDomain, IntRange, ModularDomain
from .expr import (
    Add,
    AddMod,
    And,
    BigAnd,
    BigOr,
    Const,
    Eq,
    Expr,
    FALSE,
    Ge,
    Gt,
    Implies,
    Ite,
    Le,
    Lt,
    Mod,
    Mul,
    Ne,
    Not,
    Or,
    Sub,
    SubMod,
    TRUE,
    Var,
)
from .parser import parse_expression, parse_program, tokenize
from .pretty import render_actions, render_program
from .process import ModelViolation, Process, check_model_compliance
from .program import Program
from .semantics import compile_program
from .variable import Variable

__all__ = [
    "GuardedAction",
    "CentralDaemon",
    "Daemon",
    "DistributedDaemon",
    "SynchronousDaemon",
    "BoolDomain",
    "Domain",
    "EnumDomain",
    "IntRange",
    "ModularDomain",
    "Add",
    "AddMod",
    "And",
    "BigAnd",
    "BigOr",
    "Const",
    "Eq",
    "Expr",
    "FALSE",
    "Ge",
    "Gt",
    "Implies",
    "Ite",
    "Le",
    "Lt",
    "Mod",
    "Mul",
    "Ne",
    "Not",
    "Or",
    "Sub",
    "SubMod",
    "TRUE",
    "Var",
    "parse_expression",
    "parse_program",
    "tokenize",
    "render_actions",
    "render_program",
    "ModelViolation",
    "Process",
    "check_model_compliance",
    "Program",
    "compile_program",
    "Variable",
]
