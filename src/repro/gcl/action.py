"""Guarded actions: ``guard --> x := e, y := f``.

An action is a guard expression plus a *parallel* multiple assignment,
exactly the shape of every line in the paper's protocol listings.  All
right-hand sides are evaluated in the pre-state before any variable is
written, so ``x := y, y := x`` swaps.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Tuple

from ..core.errors import GCLEvalError
from .expr import Env, Expr

__all__ = ["GuardedAction"]


class GuardedAction:
    """One guarded command.

    Args:
        name: identifier used in transition labels and reports.
        guard: boolean :class:`~repro.gcl.expr.Expr`.
        assignments: mapping from assigned variable name to its
            right-hand-side expression.  Order is irrelevant
            (assignment is parallel); duplicates are impossible by
            construction of the mapping.

    Raises:
        ValueError: if the assignment set is empty (a guard with no
            effect is not an action).
    """

    def __init__(self, name: str, guard: Expr, assignments: Mapping[str, Expr]):
        if not assignments:
            raise ValueError(f"action {name!r} assigns nothing")
        self.name = name
        self.guard = guard
        self.assignments: Dict[str, Expr] = dict(assignments)

    def enabled(self, env: Env) -> bool:
        """Evaluate the guard in ``env``.

        Raises:
            GCLEvalError: if the guard is not boolean-valued.
        """
        value = self.guard.eval(env)
        if not isinstance(value, bool):
            raise GCLEvalError(
                f"guard of action {self.name!r} evaluated to non-boolean {value!r}"
            )
        return value

    def execute(self, env: Env) -> Dict[str, object]:
        """Apply the parallel assignment to ``env``; returns the new environment.

        The guard is *not* re-checked here — callers decide whether to
        honour it (the daemon semantics does; tests sometimes probe
        unguarded effects deliberately).
        """
        updates = {name: expr.eval(env) for name, expr in self.assignments.items()}
        result = dict(env)
        result.update(updates)
        return result

    def read_set(self) -> FrozenSet[str]:
        """All variables the action reads (guard plus right-hand sides)."""
        names = set(self.guard.free_variables())
        for expr in self.assignments.values():
            names |= expr.free_variables()
        return frozenset(names)

    def write_set(self) -> FrozenSet[str]:
        """All variables the action writes."""
        return frozenset(self.assignments)

    def render(self) -> str:
        """Paper-style one-line rendering: ``guard --> x := e, y := f``."""
        effects = ", ".join(
            f"{name} := {expr.render()}" for name, expr in sorted(self.assignments.items())
        )
        return f"{self.guard.render()} --> {effects}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GuardedAction({self.name!r}: {self.render()})"
