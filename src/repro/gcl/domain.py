"""Finite value domains for guarded-command variables.

The paper's systems use booleans (``up.j``, the token bits) and small
modular counters (``c.j`` over 0..K-1).  A :class:`Domain` fixes the
finite set of values a variable ranges over; the state-space schema of
a program is assembled from its variables' domains.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = ["Domain", "BoolDomain", "IntRange", "ModularDomain", "EnumDomain"]


class Domain:
    """A finite, ordered set of values.

    Args:
        values: the member values; order is preserved and becomes the
            enumeration order of the state space.
        description: short text used in error messages and rendering.

    Raises:
        ValueError: on empty or duplicated values.
    """

    def __init__(self, values: Iterable[object], description: str = "domain"):
        self._values: Tuple[object, ...] = tuple(values)
        if not self._values:
            raise ValueError("a domain must contain at least one value")
        if len(set(self._values)) != len(self._values):
            raise ValueError("domain values must be distinct")
        self._description = description
        self._member_set = frozenset(self._values)

    @property
    def values(self) -> Tuple[object, ...]:
        """The member values in declaration order."""
        return self._values

    @property
    def description(self) -> str:
        """Short rendering of the domain (e.g. ``0..2`` or ``bool``)."""
        return self._description

    def __contains__(self, value: object) -> bool:
        return value in self._member_set

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Domain({self._description})"


class BoolDomain(Domain):
    """The two-valued boolean domain ``{False, True}``."""

    def __init__(self):
        super().__init__((False, True), "bool")


class IntRange(Domain):
    """Consecutive integers ``low..high`` inclusive.

    Raises:
        ValueError: if ``high < low``.
    """

    def __init__(self, low: int, high: int):
        if high < low:
            raise ValueError(f"empty range {low}..{high}")
        super().__init__(range(low, high + 1), f"{low}..{high}")
        self.low = low
        self.high = high


class ModularDomain(IntRange):
    """The integers modulo ``modulus``: ``0..modulus-1``.

    The domain of the paper's K-state counters; arithmetic on it is
    done with the ``(+ 1) mod K`` expression forms, not by the domain
    itself.

    Raises:
        ValueError: if ``modulus < 1``.
    """

    def __init__(self, modulus: int):
        if modulus < 1:
            raise ValueError("modulus must be at least 1")
        super().__init__(0, modulus - 1)
        self.modulus = modulus
        self._description = f"mod {modulus}"


class EnumDomain(Domain):
    """A named finite enumeration of arbitrary (hashable) values."""

    def __init__(self, values: Sequence[object]):
        super().__init__(values, "{" + ", ".join(map(str, values)) + "}")
