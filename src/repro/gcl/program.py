"""Guarded-command programs.

A :class:`Program` is the syntactic unit the paper writes in its
figures: a set of variables with finite domains, a list of guarded
actions (possibly organized into processes), and a characterization of
the initial states.  Programs are *compiled* to semantic
:class:`~repro.core.system.System` automata by
:mod:`repro.gcl.semantics` under a chosen daemon.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import GCLError
from ..core.state import State, StateSchema
from .action import GuardedAction
from .daemon import CentralDaemon, Daemon
from .expr import Env, Expr
from .process import Process
from .variable import Variable

__all__ = ["Program"]


class Program:
    """A guarded-command program over finite-domain variables.

    Args:
        name: display name (used for the compiled system too).
        variables: the declared variables, in order; the order fixes
            the compiled state-tuple layout.
        actions: the program's actions.  May be empty for a *null*
            program (used when a wrapper refines to nothing, like the
            paper's vacuous ``W1'`` in Section 4.1).
        init: either a boolean :class:`~repro.gcl.expr.Expr`
            characterizing the initial states, an iterable of explicit
            name->value mappings, or ``None`` for *no* initial states
            (wrappers).
        processes: optional process structure for model-compliance
            checking; when given, its actions must be exactly
            ``actions`` (same names, same order is not required).

    Raises:
        GCLError: on duplicate variable names, duplicate action names,
            actions touching undeclared variables, or process/action
            mismatches.
    """

    def __init__(
        self,
        name: str,
        variables: Sequence[Variable],
        actions: Sequence[GuardedAction],
        init: "Expr | Iterable[Mapping[str, object]] | None" = None,
        processes: Optional[Sequence[Process]] = None,
    ):
        self.name = name
        self.variables: Tuple[Variable, ...] = tuple(variables)
        names = [variable.name for variable in self.variables]
        if len(set(names)) != len(names):
            raise GCLError(f"program {name!r} declares duplicate variables")
        self._by_name: Dict[str, Variable] = {v.name: v for v in self.variables}
        self.actions: Tuple[GuardedAction, ...] = tuple(actions)
        action_names = [action.name for action in self.actions]
        if len(set(action_names)) != len(action_names):
            raise GCLError(f"program {name!r} declares duplicate action names")
        declared = set(self._by_name)
        for action in self.actions:
            undeclared = (action.read_set() | action.write_set()) - declared
            if undeclared:
                raise GCLError(
                    f"action {action.name!r} uses undeclared variables "
                    f"{sorted(undeclared)}"
                )
        self.processes: Tuple[Process, ...] = tuple(processes or ())
        if self.processes:
            from_processes = {
                action.name for process in self.processes for action in process.actions
            }
            if from_processes != set(action_names):
                raise GCLError(
                    f"program {name!r}: process actions {sorted(from_processes)} "
                    f"do not match program actions {sorted(action_names)}"
                )
        self._init = init
        self._schema: Optional[StateSchema] = None

    # ------------------------------------------------------------------
    # State plumbing
    # ------------------------------------------------------------------

    def schema(self) -> StateSchema:
        """The state schema induced by the variable declarations (cached)."""
        if self._schema is None:
            self._schema = StateSchema(
                {variable.name: variable.domain.values for variable in self.variables}
            )
        return self._schema

    def env_of(self, state: State) -> Dict[str, object]:
        """Unpack a state tuple into a name->value environment."""
        return self.schema().unpack(state)

    def state_of(self, env: Mapping[str, object]) -> State:
        """Pack an environment into a state tuple.

        Raises:
            StateSpaceError: if the environment does not cover the
                variables or assigns out-of-domain values (e.g. an
                action computed a value outside the target domain).
        """
        return self.schema().pack(env)

    def variable(self, name: str) -> Variable:
        """Look up a declared variable.

        Raises:
            KeyError: if no such variable is declared.
        """
        return self._by_name[name]

    # ------------------------------------------------------------------
    # Semantics helpers
    # ------------------------------------------------------------------

    def enabled_actions(self, state: State) -> List[GuardedAction]:
        """Actions whose guards hold in ``state`` (program order)."""
        env = self.env_of(state)
        return [action for action in self.actions if action.enabled(env)]

    def is_initial(self, state: State) -> bool:
        """Does ``state`` satisfy the program's initial characterization?"""
        if self._init is None:
            return False
        if isinstance(self._init, Expr):
            value = self._init.eval(self.env_of(state))
            if not isinstance(value, bool):
                raise GCLError(
                    f"init predicate of {self.name!r} is not boolean-valued"
                )
            return value
        schema = self.schema()
        packed = {schema.pack(dict(assignment)) for assignment in self._init}
        return state in packed

    def initial_states(self) -> Iterator[State]:
        """Enumerate the initial states.

        Predicate form scans the full space; explicit form packs the
        given assignments directly.
        """
        if self._init is None:
            return iter(())
        if isinstance(self._init, Expr):
            predicate = self._init
            schema = self.schema()

            def generate() -> Iterator[State]:
                for state in schema.states():
                    value = predicate.eval(schema.unpack(state))
                    if not isinstance(value, bool):
                        raise GCLError(
                            f"init predicate of {self.name!r} is not boolean-valued"
                        )
                    if value:
                        yield state

            return generate()
        schema = self.schema()
        return iter({schema.pack(dict(assignment)) for assignment in self._init})

    def compile(
        self,
        daemon: Optional[Daemon] = None,
        keep_stutter: bool = True,
        name: Optional[str] = None,
    ):
        """Compile to a :class:`~repro.core.system.System`.

        Thin delegate to :func:`repro.gcl.semantics.compile_program`;
        see there for the semantics of the flags.
        """
        from .semantics import compile_program

        return compile_program(
            self,
            daemon=daemon or CentralDaemon(),
            keep_stutter=keep_stutter,
            name=name,
        )

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------

    def with_actions(
        self,
        actions: Sequence[GuardedAction],
        name: Optional[str] = None,
    ) -> "Program":
        """A copy of this program with a different action list.

        Keeps variables and the initial characterization; drops the
        process structure (the caller re-attaches one if needed).
        Used by the derivations when an action list is rewritten
        (guard relaxation, wrapper merging).
        """
        return Program(
            name or self.name,
            self.variables,
            actions,
            init=self._init,
            processes=None,
        )

    def with_init(
        self,
        init: "Expr | Iterable[Mapping[str, object]] | None",
        name: Optional[str] = None,
    ) -> "Program":
        """A copy of this program with a different initial characterization."""
        return Program(
            name or self.name,
            self.variables,
            self.actions,
            init=init,
            processes=self.processes or None,
        )

    def merged_with(self, other: "Program", name: Optional[str] = None) -> "Program":
        """Syntactic union of two programs over the same variables.

        The GCL-level counterpart of the semantic box operator: the
        action lists are concatenated.  The initial characterization is
        taken from ``self`` (wrappers contribute none).

        Raises:
            GCLError: if variable declarations differ or action names
                collide.
        """
        if self.variables != other.variables:
            raise GCLError(
                f"cannot merge {self.name!r} with {other.name!r}: "
                "variable declarations differ"
            )
        collisions = {a.name for a in self.actions} & {a.name for a in other.actions}
        if collisions:
            raise GCLError(f"action name collision on merge: {sorted(collisions)}")
        return Program(
            name or f"{self.name} [] {other.name}",
            self.variables,
            tuple(self.actions) + tuple(other.actions),
            init=self._init,
            processes=None,
        )

    def render(self) -> str:
        """Paper-style listing of the program (see :mod:`repro.gcl.pretty`)."""
        from .pretty import render_program

        return render_program(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program({self.name!r}, {len(self.variables)} vars, "
            f"{len(self.actions)} actions)"
        )
