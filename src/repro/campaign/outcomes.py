"""The campaign outcome taxonomy and per-cell result records.

Every campaign cell ends in exactly one of five first-class outcomes —
there is no sixth "the engine blew up" state, because resilience means
classifying everything:

* ``converged`` — the run reached the legitimate set within its step
  budget (or the checker proved stabilization);
* ``diverged``  — *suspected divergence*: the step budget ran out with
  the legitimacy predicate never holding after the last fault, the run
  deadlocked outside the legitimate set, or the checker produced a
  counterexample.  For simulation cells this is statistical evidence,
  not proof — hence "suspected" — and the offending trace is archived
  for replay when a trace directory is configured;
* ``timeout``   — the per-run wall-clock deadline elapsed first;
* ``partial``   — the checker hit its state budget before deciding
  (see :mod:`repro.checker.budget`);
* ``error``     — the cell crashed even after its bounded retries; the
  exception is summarized in ``detail``;
* ``earlystop`` — the cell was skipped because its cell class had
  already settled under ``--early-stop``
  (see :mod:`repro.campaign.earlystop`); ``detail`` names the settled
  status.

Results serialize as tagged ``{"t": "campaign-cell"}`` JSONL lines —
the same convention as :mod:`repro.obs.record`, so checkpoint files
are readable by ``repro report`` and by any consumer that skips
unknown tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

__all__ = ["CellStatus", "CellResult"]


class CellStatus(Enum):
    """How one campaign cell ended (see the module docstring)."""

    CONVERGED = "converged"
    DIVERGED = "diverged"
    TIMEOUT = "timeout"
    PARTIAL = "partial"
    ERROR = "error"
    EARLYSTOP = "earlystop"


@dataclass(frozen=True)
class CellResult:
    """The durable record of one executed campaign cell.

    Attributes:
        cell_id: the cell's stable identity (checkpoint key).
        status: the outcome.
        attempts: how many attempts were made (1 = first try).
        seconds: wall time across all attempts.
        steps: actions fired by the (final attempt's) run, when the
            cell was a simulation.
        seed: the derived sub-seed of the final attempt.
        detail: free-form context — convergence step, witness kind,
            exception summary, budget cut-off.
        trace_path: where the trace was archived (suspected-divergence
            cells with a trace directory configured).
    """

    cell_id: str
    status: CellStatus
    attempts: int
    seconds: float
    steps: Optional[int] = None
    seed: Optional[int] = None
    detail: str = ""
    trace_path: Optional[str] = None

    def to_payload(self) -> Dict[str, object]:
        """The tagged-JSONL checkpoint line for this result."""
        payload: Dict[str, object] = {
            "t": "campaign-cell",
            "id": self.cell_id,
            "status": self.status.value,
            "attempts": self.attempts,
            "seconds": round(self.seconds, 6),
        }
        if self.steps is not None:
            payload["steps"] = self.steps
        if self.seed is not None:
            payload["seed"] = self.seed
        if self.detail:
            payload["detail"] = self.detail
        if self.trace_path is not None:
            payload["trace"] = self.trace_path
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CellResult":
        """Rebuild a result from its checkpoint line."""
        return cls(
            cell_id=str(payload["id"]),
            status=CellStatus(str(payload["status"])),
            attempts=int(payload.get("attempts", 1)),
            seconds=float(payload.get("seconds", 0.0)),
            steps=int(payload["steps"]) if "steps" in payload else None,
            seed=int(payload["seed"]) if "seed" in payload else None,
            detail=str(payload.get("detail", "")),
            trace_path=str(payload["trace"]) if "trace" in payload else None,
        )
