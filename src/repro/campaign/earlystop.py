"""Cross-cell early stopping for campaign sweeps.

A campaign grid repeats each ``(system, size, scheduler, injector)``
combination — a *cell class* — across many seed indices.  Classes are
swept for distribution, not novelty: once a class has produced the
same outcome enough times in a row, the remaining seeds of that class
are overwhelmingly likely to repeat it, and the budget is better spent
elsewhere.  :class:`ConvergenceDetector` implements the stopping rule:

    a class is **settled** once its last ``window`` observed outcomes
    (in grid order) share one status.

The rule is deterministic and order-independent in the only way that
matters: observations are always fed in grid order — the sequential
sweep feeds them as it goes; the parallel sweep batches each class
into one worker task that runs its cells in grid order — so the same
grid, seed, and window always stop at the same cell.  Skipped cells
become first-class ``earlystop`` results (checkpointed like any other,
reported as ``campaign.earlystop`` counters), so a resumed or
re-summarized campaign sees exactly what the original decided.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .grid import CellSpec
from .outcomes import CellStatus

__all__ = ["ConvergenceDetector", "class_key"]


def class_key(cell: CellSpec) -> str:
    """The cell-class identity: the cell id minus its seed index."""
    return (
        f"{cell.kind}:{cell.system}:n{cell.n}"
        f":{cell.scheduler}:{cell.injector}"
    )


class ConvergenceDetector:
    """The settled-class detector behind ``--early-stop``.

    Args:
        window: consecutive identical outcomes required before a class
            counts as settled (must be positive; ``1`` stops a class
            after its first outcome — maximally aggressive).
    """

    def __init__(self, window: int):
        if window < 1:
            raise ValueError(f"early-stop window must be positive, got {window}")
        self.window = window
        self._outcomes: Dict[str, List[str]] = {}

    def observe(self, cell: CellSpec, status: CellStatus) -> None:
        """Feed one outcome, in grid order.

        ``earlystop`` outcomes (from a resumed checkpoint) are not
        evidence — they record a *decision*, not a run — and are
        ignored.
        """
        if status is CellStatus.EARLYSTOP:
            return
        trail = self._outcomes.setdefault(class_key(cell), [])
        trail.append(status.value)
        del trail[: -self.window]

    def settled(self, cell: CellSpec) -> Optional[str]:
        """The status ``cell``'s class has settled at, or ``None``.

        Settled means: ``window`` outcomes observed and the last
        ``window`` of them identical.
        """
        trail = self._outcomes.get(class_key(cell), ())
        if len(trail) >= self.window and len(set(trail)) == 1:
            return trail[0]
        return None
