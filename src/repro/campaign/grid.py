"""Campaign grids: the swept axes and deterministic seed derivation.

A grid is the cartesian product of four axes — stabilizing system,
daemon (scheduler), fault injector, and seed index — plus, optionally,
one budget-capped verification cell per (system, size).  Each point is
a :class:`CellSpec` whose :meth:`~CellSpec.cell_id` is a stable string:
it keys the checkpoint file, names archived traces, and feeds the
sub-seed derivation, so the same grid always resumes and replays
identically.

The registries below name the interesting points of each axis:

* :data:`SYSTEMS` — the derived rings of the paper (plus the abstract
  ``BTR`` itself as a known-non-stabilizing control);
* :data:`SCHEDULERS` — the daemon spectrum from uniformly random to
  the greedy token-maximizing adversary;
* :data:`INJECTORS` — single-variable, three-variable, and
  whole-state transient corruption.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from ..gcl.program import Program
from ..rings import (
    btr3_abstraction,
    btr4_abstraction,
    btr_program,
    c3_composed,
    dijkstra_four_state,
    dijkstra_three_state,
    kstate_program,
    utr_abstraction,
    utr_program,
)
from ..rings.topology import Ring
from ..simulation.faults import (
    CorruptEverything,
    CorruptVariables,
    FaultInjector,
)
from ..simulation.metrics import (
    btr_tokens,
    four_state_tokens,
    kstate_tokens,
    three_state_tokens,
)
from ..simulation.scheduler import (
    BiasedScheduler,
    GreedyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)

__all__ = [
    "SystemEntry",
    "SYSTEMS",
    "SCHEDULERS",
    "INJECTORS",
    "CellSpec",
    "build_grid",
    "build_scheduler",
    "build_injector",
    "derive_seed",
    "grid_signature",
]


@dataclass(frozen=True)
class SystemEntry:
    """One swept system: how to build, simulate, and verify it.

    Attributes:
        builder: ring size -> guarded-command program.
        legit_kind: key for
            :func:`repro.simulation.metrics.legitimacy_predicate` and
            the token decoders.
        spec_builder: ring size -> specification program (for check
            cells).
        alpha_builder: ring size -> abstraction function onto the spec
            (``None`` = identity).
        fairness: weakest known-sufficient daemon fairness for the
            stabilization check.
        stutter_insensitive: compare behaviours modulo stuttering.
        stabilizing: whether the check is *expected* to hold (``BTR``
            itself is the deliberate non-stabilizing control).
    """

    builder: Callable[[int], Program]
    legit_kind: str
    spec_builder: Callable[[int], Program]
    alpha_builder: Optional[Callable[[int], object]]
    fairness: str = "none"
    stutter_insensitive: bool = False
    stabilizing: bool = True


SYSTEMS: Dict[str, SystemEntry] = {
    "dijkstra4": SystemEntry(
        dijkstra_four_state, "four", btr_program, btr4_abstraction
    ),
    "dijkstra3": SystemEntry(
        dijkstra_three_state, "three", btr_program, btr3_abstraction
    ),
    "c3-composed": SystemEntry(
        c3_composed, "three", btr_program, btr3_abstraction,
        fairness="strong", stutter_insensitive=True,
    ),
    "kstate": SystemEntry(
        lambda n: kstate_program(n, n), "kstate", utr_program,
        lambda n: utr_abstraction(n, n),
    ),
    "btr": SystemEntry(
        btr_program, "btr", btr_program, None, stabilizing=False
    ),
}

#: The default sweep: every derived stabilizing ring (``btr`` is the
#: opt-in non-stabilizing control).
DEFAULT_SYSTEMS: Tuple[str, ...] = (
    "dijkstra4", "dijkstra3", "c3-composed", "kstate"
)

_TOKEN_DECODERS = {
    "btr": btr_tokens,
    "four": four_state_tokens,
    "three": three_state_tokens,
    "kstate": kstate_tokens,
}


def _greedy_token_scheduler(legit_kind: str, n: int) -> Scheduler:
    """The adversary that steers toward many-token states."""
    ring = Ring(n)
    decoder = _TOKEN_DECODERS[legit_kind]
    return GreedyScheduler(score=lambda env: len(decoder(ring, env)))


def _biased_starver(legit_kind: str, n: int) -> Scheduler:
    """Starve wrapper/cancellation actions with probability 0.95.

    On systems without wrapper actions every action is preferred, so
    the daemon degrades gracefully to the uniform one.
    """
    return BiasedScheduler(
        prefers=lambda name: not name.startswith("w"), bias=0.95
    )


SCHEDULERS: Dict[str, Callable[[str, int], Scheduler]] = {
    "random": lambda kind, n: RandomScheduler(),
    "round-robin": lambda kind, n: RoundRobinScheduler(),
    "starve-wrappers": _biased_starver,
    "greedy-tokens": _greedy_token_scheduler,
}

INJECTORS: Dict[str, Callable[[], FaultInjector]] = {
    "corrupt-1": lambda: CorruptVariables(1),
    "corrupt-3": lambda: CorruptVariables(3, clamp=True),
    "corrupt-all": CorruptEverything,
}


@dataclass(frozen=True)
class CellSpec:
    """One point of a campaign grid.

    Attributes:
        kind: ``"simulate"`` (fault-injected run) or ``"check"``
            (budget-capped stabilization verification).
        system: key into :data:`SYSTEMS`.
        n: ring size.
        scheduler: key into :data:`SCHEDULERS` (``"-"`` on check cells).
        injector: key into :data:`INJECTORS` (``"-"`` on check cells).
        seed_index: which of the cell's seeds this is (0-based).
    """

    kind: str
    system: str
    n: int
    scheduler: str = "-"
    injector: str = "-"
    seed_index: int = 0

    def cell_id(self) -> str:
        """The stable identity keying checkpoints, traces, and seeds."""
        return (
            f"{self.kind}:{self.system}:n{self.n}"
            f":{self.scheduler}:{self.injector}:s{self.seed_index}"
        )


def build_grid(
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    sizes: Sequence[int] = (3, 4),
    schedulers: Sequence[str] = ("random",),
    injectors: Sequence[str] = ("corrupt-all",),
    seeds: int = 3,
    with_check: bool = False,
) -> List[CellSpec]:
    """The cells of a campaign, in deterministic execution order.

    Args:
        systems: :data:`SYSTEMS` keys to sweep.
        sizes: ring sizes to sweep.
        schedulers: :data:`SCHEDULERS` keys to sweep.
        injectors: :data:`INJECTORS` keys to sweep.
        seeds: how many seed indices per combination.
        with_check: additionally emit one budget-capped verification
            cell per (system, size).

    Raises:
        SimulationError: on an unknown registry key or a non-positive
            axis, so a mistyped grid dies before the first cell runs.
    """
    for system in systems:
        if system not in SYSTEMS:
            raise SimulationError(
                f"unknown system {system!r}; known: {sorted(SYSTEMS)}"
            )
    for scheduler in schedulers:
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; known: {sorted(SCHEDULERS)}"
            )
    for injector in injectors:
        if injector not in INJECTORS:
            raise SimulationError(
                f"unknown injector {injector!r}; known: {sorted(INJECTORS)}"
            )
    if seeds < 1:
        raise SimulationError(f"seeds per cell must be positive, got {seeds}")
    if any(n < 3 for n in sizes):
        raise SimulationError(f"ring sizes must be at least 3, got {list(sizes)}")
    cells: List[CellSpec] = []
    for system in systems:
        for n in sizes:
            if with_check:
                cells.append(CellSpec("check", system, n))
            for scheduler in schedulers:
                for injector in injectors:
                    for index in range(seeds):
                        cells.append(
                            CellSpec(
                                "simulate", system, n,
                                scheduler, injector, index,
                            )
                        )
    return cells


def build_scheduler(key: str, legit_kind: str, n: int) -> Scheduler:
    """A fresh scheduler instance for one cell (never shared across runs)."""
    return SCHEDULERS[key](legit_kind, n)


def build_injector(key: str) -> FaultInjector:
    """A fresh injector instance for one cell."""
    return INJECTORS[key]()


def derive_seed(campaign_seed: int, cell_id: str, attempt: int = 0) -> int:
    """The deterministic sub-seed of one cell attempt.

    Hashes ``campaign_seed : cell_id : attempt`` with SHA-256 and takes
    the first 8 bytes, so every cell — and every retry — gets an
    independent, reproducible random stream regardless of execution
    order, interleaving, or resumption.
    """
    digest = hashlib.sha256(
        f"{campaign_seed}:{cell_id}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def grid_signature(cells: Sequence[CellSpec]) -> str:
    """A short fingerprint of a grid (order-sensitive).

    Stored in the checkpoint header and verified on ``--resume``: a
    checkpoint written for one grid must not silently skip cells of a
    different one.
    """
    digest = hashlib.sha256(
        "\n".join(cell.cell_id() for cell in cells).encode("utf-8")
    ).hexdigest()
    return digest[:16]
