"""The resilient campaign executor.

Executes a grid of :class:`~repro.campaign.grid.CellSpec` cells with
the four resilience properties the soak-testing workload needs:

* **Timeouts** — every simulation cell runs under a cooperative
  wall-clock deadline (:func:`repro.simulation.runner.execute`); a
  pathological run ends as a first-class ``timeout`` outcome and the
  campaign moves on.
* **Crash isolation** — a cell that raises is retried up to
  ``retries`` times with deterministically derived sub-seeds; if every
  attempt crashes the cell is recorded as ``error`` and the campaign
  continues.  Only ``KeyboardInterrupt`` stops the sweep.
* **Checkpoint/resume** — each finished cell is appended to the
  checkpoint file as one tagged JSONL line *and flushed* before the
  next cell starts, so an interrupt (SIGINT, OOM kill, power loss)
  between cells loses at most the cell in flight.  Resuming verifies
  the grid fingerprint and skips every completed cell.
* **Graceful checker degradation** — verification cells run under a
  state budget and report ``partial`` instead of exhausting memory.

Suspected-divergence runs archive their full trace (when a trace
directory is configured) so the non-converging schedule can be
replayed and inspected with ``repro report``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.errors import SimulationError
from ..obs import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    Recorder,
    RunRecord,
    append_jsonl_line,
)
from ..parallel.pool import using_worker_instrumentation, worker_instrumentation
from ..resilience import chaos
from ..simulation.faults import FaultSchedule
from ..simulation.metrics import legitimacy_predicate
from ..simulation.runner import SimStatus, execute
from .earlystop import ConvergenceDetector, class_key
from .grid import (
    SYSTEMS,
    CellSpec,
    build_injector,
    build_scheduler,
    derive_seed,
    grid_signature,
)
from .outcomes import CellResult, CellStatus

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "execute_cell",
    "run_campaign",
]


@dataclass(frozen=True)
class CampaignConfig:
    """Tunables shared by every cell of a campaign.

    Attributes:
        steps: step budget per simulation run.
        deadline: wall-clock budget per run in seconds (``None``
            disables the timeout).
        retries: extra attempts (each with a fresh derived sub-seed)
            after a crashed attempt; timeouts are recorded, not
            retried — a deadline that tripped once will almost
            certainly trip again.
        seed: the campaign master seed every sub-seed derives from.
        fault_count: transient faults injected per run, as a burst
            before steps ``0 .. fault_count-1``.
        state_budget: state cap for verification cells (``None`` =
            unbounded).
        checkpoint: the tagged-JSONL checkpoint file (``None`` =
            in-memory only, no resume).
        trace_dir: where suspected-divergence traces are archived
            (``None`` = do not archive).
        workers: worker processes executing grid cells concurrently
            (``1`` = sequential).  Cells land in the checkpoint in
            completion order, but rows are keyed by cell id and the
            assembled results stay in grid order, so a campaign can be
            resumed under any other worker count.  Sub-seeds derive
            from cell ids, never from execution order, so per-cell
            outcomes are identical at every worker count.
        cache_dir: root of the content-addressed verification cache
            (``None`` = no caching).  Verification cells whose program
            and parameters match a cached verdict are served from disk
            (their ``detail`` gains a ``[cached]`` marker); ``partial``
            and ``error`` outcomes are never cached.
        engine: checker engine for verification cells — ``"packed"``
            (dense state codes, bitset fixpoints; automatic fallback
            to tuple where packing cannot apply) or ``"tuple"``.
            Verdicts are identical either way, so the engine is — like
            ``workers`` — excluded from the verification cache key.
        early_stop: stop sweeping a cell class (same system, size,
            scheduler, and injector) once its last ``early_stop``
            outcomes are identical (``None`` = sweep every seed); the
            skipped cells become first-class ``earlystop`` results.
            Deterministic: observations are fed in grid order in both
            sweep modes (see :mod:`repro.campaign.earlystop`).

    Raises:
        SimulationError: on a non-positive budget or an unknown
            engine, so a misconfigured campaign dies before the first
            cell rather than deep in a run.
    """

    steps: int = 5000
    deadline: Optional[float] = 10.0
    retries: int = 1
    seed: int = 0
    fault_count: int = 1
    state_budget: Optional[int] = 500_000
    checkpoint: Optional[Union[str, Path]] = None
    trace_dir: Optional[Union[str, Path]] = None
    workers: int = 1
    cache_dir: Optional[Union[str, Path]] = None
    engine: str = "packed"
    early_stop: Optional[int] = None

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise SimulationError(f"steps must be positive, got {self.steps}")
        if self.engine not in ("packed", "tuple", "vector"):
            raise SimulationError(
                f"unknown engine {self.engine!r}; expected one of 'packed', "
                f"'tuple', 'vector'"
            )
        if self.workers < 1:
            raise SimulationError(
                f"workers must be positive, got {self.workers}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise SimulationError(
                f"deadline must be positive seconds, got {self.deadline}"
            )
        if self.retries < 0:
            raise SimulationError(f"retries must be >= 0, got {self.retries}")
        if self.fault_count < 1:
            raise SimulationError(
                f"fault count must be positive, got {self.fault_count}"
            )
        if self.state_budget is not None and self.state_budget < 1:
            raise SimulationError(
                f"state budget must be positive, got {self.state_budget}"
            )
        if self.early_stop is not None and self.early_stop < 1:
            raise SimulationError(
                f"early-stop window must be positive, got {self.early_stop}"
            )


@dataclass
class CampaignResult:
    """What a (possibly partial) campaign run produced.

    Attributes:
        results: one :class:`CellResult` per *finished* cell, in grid
            order — both the cells executed now and those restored
            from the checkpoint.
        executed: cells executed in this invocation.
        skipped: cells restored from the checkpoint and not re-run.
        pending: cells still to do (non-zero after an interrupt).
        interrupted: whether the sweep stopped on ``KeyboardInterrupt``.
    """

    results: List[CellResult] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    pending: int = 0
    interrupted: bool = False

    def counts(self) -> Dict[CellStatus, int]:
        """Finished cells per outcome."""
        tally: Dict[CellStatus, int] = {}
        for result in self.results:
            tally[result.status] = tally.get(result.status, 0) + 1
        return tally

    @property
    def ok(self) -> bool:
        """No errors and nothing left pending."""
        return not self.interrupted and self.pending == 0 and not any(
            result.status is CellStatus.ERROR for result in self.results
        )


def _trace_path(trace_dir: Union[str, Path], cell_id: str) -> Path:
    """Filesystem-safe archive path for one cell's trace."""
    return Path(trace_dir) / (cell_id.replace(":", "_") + ".trace.jsonl")


def _attempt_simulation(
    cell: CellSpec, config: CampaignConfig, seed: int
) -> CellResult:
    """One attempt at a simulation cell (may raise; caller isolates)."""
    entry = SYSTEMS[cell.system]
    program = entry.builder(cell.n)
    predicate = legitimacy_predicate(entry.legit_kind, cell.n)
    injector = build_injector(cell.injector)
    injector.validate(program)
    scheduler = build_scheduler(cell.scheduler, entry.legit_kind, cell.n)
    faults = FaultSchedule(range(config.fault_count), injector)
    outcome = execute(
        program,
        config.steps,
        scheduler=scheduler,
        faults=faults,
        stop_when=predicate,
        seed=seed,
        deadline=config.deadline,
        instrumentation=worker_instrumentation(),
    )
    cell_id = cell.cell_id()
    if outcome.status is SimStatus.CONVERGED:
        return CellResult(
            cell_id, CellStatus.CONVERGED, 1, outcome.wall_seconds,
            steps=outcome.steps, seed=seed,
            detail=f"converged in {outcome.steps} steps",
        )
    if outcome.status is SimStatus.TIMEOUT:
        return CellResult(
            cell_id, CellStatus.TIMEOUT, 1, outcome.wall_seconds,
            steps=outcome.steps, seed=seed,
            detail=f"deadline of {config.deadline}s elapsed "
            f"after {outcome.steps} steps",
        )
    if outcome.status is SimStatus.DEADLOCK and predicate(outcome.trace.final()):
        return CellResult(
            cell_id, CellStatus.CONVERGED, 1, outcome.wall_seconds,
            steps=outcome.steps, seed=seed,
            detail="halted inside the legitimate set",
        )
    # Step budget exhausted (or an illegitimate halt): suspected
    # divergence — archive the trace for replay when configured.
    trace_path: Optional[str] = None
    if config.trace_dir is not None:
        path = _trace_path(config.trace_dir, cell_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(outcome.trace.to_jsonl(), encoding="utf-8")
        trace_path = str(path)
    reason = (
        "deadlocked outside the legitimate set"
        if outcome.status is SimStatus.DEADLOCK
        else f"no convergence within {config.steps} steps"
    )
    return CellResult(
        cell_id, CellStatus.DIVERGED, 1, outcome.wall_seconds,
        steps=outcome.steps, seed=seed,
        detail=f"suspected divergence: {reason}", trace_path=trace_path,
    )


def _check_cache_key(cell: CellSpec, config: CampaignConfig) -> str:
    """The content address of one verification cell's verdict.

    Keyed on the canonical fingerprints of the concrete and spec
    programs plus the verdict-relevant parameters.  The fingerprints
    carry the semantics flags the programs are checked under
    (``keep_stutter``, the fairness mode): the same source under
    different semantics is a different transition system and must not
    share a verdict.  Execution-only knobs (workers, the checker
    engine, deadlines, checkpoint paths) are excluded: they cannot
    change the verdict, so runs under different settings share
    entries.
    """
    from ..parallel import cache_key, program_fingerprint

    entry = SYSTEMS[cell.system]
    semantics = {"keep_stutter": True, "fairness": entry.fairness}
    return cache_key(
        "campaign-check",
        [
            program_fingerprint(entry.builder(cell.n), semantics=semantics),
            program_fingerprint(entry.spec_builder(cell.n), semantics=semantics),
        ],
        {
            "system": cell.system,
            "n": cell.n,
            "fairness": entry.fairness,
            "stutter_insensitive": entry.stutter_insensitive,
            "state_budget": config.state_budget,
        },
    )


def _attempt_check(cell: CellSpec, config: CampaignConfig) -> CellResult:
    """One attempt at a verification cell (may raise; caller isolates)."""
    from ..checker.convergence import check_stabilization

    cache = key = None
    if config.cache_dir is not None:
        from ..parallel import VerificationCache

        cache = VerificationCache(config.cache_dir)
        key = _check_cache_key(cell, config)
        hit = cache.get(key)
        if hit is not None:
            cached = CellResult.from_payload(dict(hit))
            return CellResult(
                cached.cell_id, cached.status, cached.attempts,
                cached.seconds, steps=cached.steps, seed=cached.seed,
                detail=cached.detail + " [cached]",
                trace_path=cached.trace_path,
            )
    entry = SYSTEMS[cell.system]
    start = time.perf_counter()
    # Programs go in uncompiled: the packed engine lowers them straight
    # to a successor kernel, never materializing the transition table
    # (the tuple engine compiles them itself; verdicts are identical).
    concrete = entry.builder(cell.n)
    spec = entry.spec_builder(cell.n)
    alpha = entry.alpha_builder(cell.n) if entry.alpha_builder else None
    result = check_stabilization(
        concrete,
        spec,
        alpha,
        stutter_insensitive=entry.stutter_insensitive,
        fairness=entry.fairness,
        compute_steps=False,
        state_budget=config.state_budget,
        engine=config.engine,
        instrumentation=worker_instrumentation(),
    )
    seconds = time.perf_counter() - start
    cell_id = cell.cell_id()
    if result.is_partial:
        partial = result.result.partial
        assert partial is not None
        return CellResult(
            cell_id, CellStatus.PARTIAL, 1, seconds, detail=partial.format()
        )
    if result.holds:
        outcome = CellResult(
            cell_id, CellStatus.CONVERGED, 1, seconds,
            detail=f"stabilization verified (core {len(result.core)} states)",
        )
    else:
        witness = result.result.witness
        kind = witness.kind.value if witness is not None else "unknown"
        outcome = CellResult(
            cell_id, CellStatus.DIVERGED, 1, seconds,
            detail=f"stabilization fails: {kind}",
        )
    if cache is not None and key is not None:
        cache.put(key, outcome.to_payload())
    return outcome


def execute_cell(cell: CellSpec, config: CampaignConfig) -> CellResult:
    """Run one cell to a guaranteed outcome — never raises (except
    ``KeyboardInterrupt``).

    Crashed attempts retry with sub-seeds derived from
    ``(campaign seed, cell id, attempt)``; a cell whose every attempt
    crashed is recorded as ``error`` carrying the last exception.
    """
    cell_id = cell.cell_id()
    start = time.perf_counter()
    last_error: Optional[BaseException] = None
    attempts = 0
    for attempt in range(config.retries + 1):
        attempts += 1
        try:
            if cell.kind == "check":
                result = _attempt_check(cell, config)
            else:
                seed = derive_seed(config.seed, cell_id, attempt)
                result = _attempt_simulation(cell, config, seed)
        except KeyboardInterrupt:
            raise
        except BaseException as exc:  # crash isolation: anything else
            last_error = exc
            continue
        if attempts > 1:
            result = CellResult(
                result.cell_id, result.status, attempts,
                time.perf_counter() - start, steps=result.steps,
                seed=result.seed,
                detail=result.detail + f" (after {attempts - 1} crashed "
                f"attempt{'s' if attempts > 2 else ''})",
                trace_path=result.trace_path,
            )
        return result
    return CellResult(
        cell_id, CellStatus.ERROR, attempts,
        time.perf_counter() - start,
        detail=f"{type(last_error).__name__}: {last_error}",
    )


def _earlystop_result(cell: CellSpec, settled: str, window: int) -> CellResult:
    """The first-class record of a cell skipped by early stopping."""
    return CellResult(
        cell.cell_id(), CellStatus.EARLYSTOP, 0, 0.0,
        detail=f"class {class_key(cell)} settled at '{settled}' "
        f"({window} identical outcomes)",
    )


def _note_cell(
    instrumentation: Instrumentation, result: CellResult
) -> None:
    """Driver-side per-cell bookkeeping shared by both sweep modes.

    Counts executed cells and per-status tallies, keeps cache hits
    under their own ``cache.hit`` metric (a ``[cached]`` cell was
    served from disk, not verified again), and feeds the
    convergence-step distribution histogram — the quantity the
    convergence-time workloads in PAPERS.md are about.
    """
    instrumentation.count("campaign.cells.executed")
    instrumentation.count(f"campaign.status.{result.status.value}")
    if result.status is CellStatus.EARLYSTOP:
        instrumentation.count("campaign.earlystop")
        instrumentation.event(
            "campaign.earlystop", id=result.cell_id, detail=result.detail
        )
    if "[cached]" in result.detail:
        instrumentation.count("cache.hit")
    if result.status is CellStatus.CONVERGED and result.steps is not None:
        instrumentation.observe("campaign.converge.steps", result.steps)
    instrumentation.event(
        "campaign.cell",
        id=result.cell_id,
        status=result.status.value,
        attempts=result.attempts,
        seconds=result.seconds,
    )


def _read_checkpoint_rows(
    file: Path, instrumentation: Instrumentation
) -> List[Dict[str, object]]:
    """All tagged payloads in the checkpoint, tolerating a torn tail.

    A crash (SIGKILL, power loss) mid-append leaves exactly one
    artifact: a *final* line that is not complete JSON.  That line is
    the cell that was in flight, and the checkpoint contract already
    concedes the in-flight cell — so the torn tail is dropped with a
    ``campaign.checkpoint.truncated`` event and the resume simply
    re-runs that cell.  A malformed line anywhere else is not a crash
    signature (appends are sequential and flushed) and stays fatal.
    """
    lines = file.read_text(encoding="utf-8").splitlines()
    last_content = -1
    for index, line in enumerate(lines):
        if line.strip():
            last_content = index
    rows: List[Dict[str, object]] = []
    for index, line in enumerate(lines):
        text = line.strip()
        if not text:
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            if index == last_content:
                instrumentation.count("resilience.checkpoint.truncated")
                instrumentation.event(
                    "campaign.checkpoint.truncated",
                    path=str(file),
                    line=index + 1,
                    bytes=len(line),
                )
                break
            raise SimulationError(
                f"checkpoint {file} line {index + 1} is corrupt ({exc}); "
                "only a truncated final line (a crash mid-append) is "
                "recoverable — remove the file to start over"
            )
        if isinstance(payload, dict):
            rows.append(payload)
    return rows


def _load_checkpoint(
    path: Union[str, Path],
    cells: Sequence[CellSpec],
    resume: bool,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> Dict[str, CellResult]:
    """Completed cells from an existing checkpoint, after validation."""
    file = Path(path)
    if not file.exists():
        return {}
    if not resume:
        raise SimulationError(
            f"checkpoint {file} already exists; resume the campaign "
            "(--resume) or remove the file to start over"
        )
    rows = _read_checkpoint_rows(file, instrumentation)
    headers = [row for row in rows if row.get("t") == "campaign-meta"]
    signature = grid_signature(cells)
    if headers and headers[-1].get("grid") != signature:
        raise SimulationError(
            f"checkpoint {file} was written for a different grid "
            f"({headers[-1].get('grid')} != {signature}); refusing to "
            "resume — rerun with the original axes or remove the file"
        )
    completed: Dict[str, CellResult] = {}
    for payload in rows:
        if payload.get("t") == "campaign-cell":
            result = CellResult.from_payload(payload)
            completed[result.cell_id] = result
    return completed


def run_campaign(
    cells: Sequence[CellSpec],
    config: CampaignConfig,
    resume: bool = False,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    executor: Callable[[CellSpec, CampaignConfig], CellResult] = execute_cell,
    on_cell: Optional[Callable[[CellSpec, CellResult], None]] = None,
) -> CampaignResult:
    """Sweep ``cells`` resiliently; see the module docstring.

    Args:
        cells: the grid, in execution order.
        config: shared tunables (budgets, checkpoint, master seed).
        resume: continue from ``config.checkpoint`` — required when
            the file already exists (a guard against accidentally
            mixing two campaigns), harmless when it does not.
        instrumentation: observability sink — per-cell events plus
            executed/skipped/status counters.
        executor: the per-cell runner (injectable for tests).
        on_cell: optional progress callback after each executed cell.

    Returns:
        A :class:`CampaignResult`; ``interrupted`` is set (instead of
        the ``KeyboardInterrupt`` propagating) when the sweep was cut
        short, with the checkpoint already flushed for every finished
        cell.

    Raises:
        SimulationError: when the checkpoint exists without ``resume``
            or belongs to a different grid.
    """
    completed: Dict[str, CellResult] = {}
    if config.checkpoint is not None:
        completed = _load_checkpoint(
            config.checkpoint, cells, resume, instrumentation
        )
        if not Path(config.checkpoint).exists():
            append_jsonl_line(
                config.checkpoint,
                {
                    "t": "campaign-meta",
                    "grid": grid_signature(cells),
                    "cells": len(cells),
                    "seed": config.seed,
                    "steps": config.steps,
                },
            )
    instrumentation.annotate(
        cells=len(cells), seed=config.seed, steps=config.steps
    )
    campaign = CampaignResult()
    workers = config.workers
    if workers > 1:
        from ..parallel import resolve_workers

        workers = resolve_workers(workers)
    if workers > 1:
        return _run_campaign_parallel(
            cells, config, completed, workers, instrumentation,
            executor, on_cell, campaign,
        )
    detector = (
        ConvergenceDetector(config.early_stop)
        if config.early_stop is not None
        else None
    )
    interrupted_at: Optional[int] = None
    for index, cell in enumerate(cells):
        cell_id = cell.cell_id()
        if cell_id in completed:
            campaign.skipped += 1
            campaign.results.append(completed[cell_id])
            instrumentation.count("campaign.cells.skipped")
            if detector is not None:
                detector.observe(cell, completed[cell_id].status)
            continue
        settled = detector.settled(cell) if detector is not None else None
        if settled is not None:
            assert config.early_stop is not None
            result = _earlystop_result(cell, settled, config.early_stop)
        else:
            try:
                # In-process cells report straight to the run's sink (the
                # same slot forked workers rebind to their own recorder).
                with using_worker_instrumentation(instrumentation):
                    result = executor(cell, config)
            except KeyboardInterrupt:
                interrupted_at = index
                break
            if detector is not None:
                detector.observe(cell, result.status)
        campaign.executed += 1
        campaign.results.append(result)
        _note_cell(instrumentation, result)
        if config.checkpoint is not None:
            append_jsonl_line(config.checkpoint, result.to_payload())
            chaos.checkpoint_appended(config.checkpoint)
        if on_cell is not None:
            on_cell(cell, result)
    if interrupted_at is not None:
        campaign.interrupted = True
        campaign.pending = len(cells) - interrupted_at
        instrumentation.event(
            "campaign.interrupted", at=interrupted_at, pending=campaign.pending
        )
    return campaign


def _run_cell_task(
    item: "Tuple[int, CellSpec]",
) -> "Tuple[int, CellResult, Optional[RunRecord]]":
    """Pool task: run one grid cell with the fork-inherited executor.

    The executor and config ride into the worker through the pool's
    copy-on-write context (they may be closures, which do not pickle);
    only the ``(index, cell)`` pair crosses as a pickle.  When the
    driver staged ``campaign_record`` in the context, the cell runs
    under a fresh per-cell :class:`Recorder` whose snapshot travels
    back with the result for the driver to absorb; otherwise the
    record slot comes back ``None`` and telemetry costs nothing.
    """
    from ..parallel.pool import worker_context

    index, cell = item
    ctx = worker_context()
    executor: Callable[[CellSpec, CampaignConfig], CellResult] = (
        ctx["campaign_executor"]  # type: ignore[assignment]
    )
    config: CampaignConfig = ctx["campaign_config"]  # type: ignore[assignment]
    if not ctx.get("campaign_record"):
        return index, executor(cell, config), None
    recorder = Recorder(kind="worker")
    with using_worker_instrumentation(recorder):
        result = executor(cell, config)
    return index, result, recorder.record()


def _run_class_batch_task(
    payload: "Tuple[Tuple[Tuple[int, CellSpec], ...], Tuple[str, ...]]",
) -> "List[Tuple[int, CellResult, Optional[RunRecord]]]":
    """Pool task: run one cell class sequentially, early-stopping its tail.

    Under ``--early-stop`` the unit of parallel dispatch is the *class*
    (all pending seeds of one (system, size, scheduler, injector)
    combination), not the cell: the stopping rule reads the class's
    outcomes in grid order, so the class must execute in grid order.
    Classes still sweep concurrently.  ``payload`` carries the class's
    pending ``(index, cell)`` pairs plus the statuses of its
    checkpoint-restored cells (grid order) so a resumed class resumes
    its evidence trail too.
    """
    from ..parallel.pool import worker_context

    items, priors = payload
    ctx = worker_context()
    executor: Callable[[CellSpec, CampaignConfig], CellResult] = (
        ctx["campaign_executor"]  # type: ignore[assignment]
    )
    config: CampaignConfig = ctx["campaign_config"]  # type: ignore[assignment]
    assert config.early_stop is not None
    detector = ConvergenceDetector(config.early_stop)
    for status_value in priors:
        detector.observe(items[0][1], CellStatus(status_value))
    entries: List[Tuple[int, CellResult, Optional[RunRecord]]] = []
    for index, cell in items:
        settled = detector.settled(cell)
        if settled is not None:
            entries.append(
                (index, _earlystop_result(cell, settled, config.early_stop), None)
            )
            continue
        record: Optional[RunRecord] = None
        if ctx.get("campaign_record"):
            recorder = Recorder(kind="worker")
            with using_worker_instrumentation(recorder):
                result = executor(cell, config)
            record = recorder.record()
        else:
            result = executor(cell, config)
        detector.observe(cell, result.status)
        entries.append((index, result, record))
    return entries


def _run_campaign_parallel(
    cells: Sequence[CellSpec],
    config: CampaignConfig,
    completed: Dict[str, CellResult],
    workers: int,
    instrumentation: Instrumentation,
    executor: Callable[[CellSpec, CampaignConfig], CellResult],
    on_cell: Optional[Callable[[CellSpec, CellResult], None]],
    campaign: CampaignResult,
) -> CampaignResult:
    """The ``workers > 1`` body of :func:`run_campaign`.

    Pending cells fan out over a worker pool; the driver remains the
    only checkpoint writer, appending each result the moment it lands
    (completion order).  The assembled ``results`` list is rebuilt in
    grid order at the end, so callers — and resumes under any other
    worker count — see exactly what the sequential sweep produces:
    checkpoint rows are keyed by cell id, never by worker or arrival
    position.
    """
    from ..parallel.pool import WorkerPool

    instrumentation.count("parallel.workers", workers)
    pending_items: List[Tuple[int, CellSpec]] = []
    for index, cell in enumerate(cells):
        if cell.cell_id() in completed:
            campaign.skipped += 1
            instrumentation.count("campaign.cells.skipped")
        else:
            pending_items.append((index, cell))
    finished: Dict[int, CellResult] = {}
    interrupted = False
    record_workers = instrumentation is not NULL_INSTRUMENTATION

    def land(index: int, result: CellResult, record: Optional[RunRecord]) -> None:
        finished[index] = result
        campaign.executed += 1
        if record is not None:
            instrumentation.absorb(record)
        _note_cell(instrumentation, result)
        if config.checkpoint is not None:
            append_jsonl_line(config.checkpoint, result.to_payload())
            chaos.checkpoint_appended(config.checkpoint)
        if on_cell is not None:
            on_cell(cells[index], result)

    if pending_items:
        with WorkerPool(
            workers,
            campaign_executor=executor,
            campaign_config=config,
            campaign_record=record_workers,
        ) as pool:
            try:
                if config.early_stop is not None:
                    # Dispatch whole classes: the stopping rule needs
                    # each class's outcomes in grid order (see
                    # _run_class_batch_task).
                    priors: Dict[str, List[str]] = {}
                    for cell in cells:
                        done = completed.get(cell.cell_id())
                        if done is not None:
                            priors.setdefault(class_key(cell), []).append(
                                done.status.value
                            )
                    batches: Dict[str, List[Tuple[int, CellSpec]]] = {}
                    for index, cell in pending_items:
                        batches.setdefault(class_key(cell), []).append(
                            (index, cell)
                        )
                    payloads = [
                        (tuple(items), tuple(priors.get(key, ())))
                        for key, items in batches.items()
                    ]
                    for entries in pool.imap_unordered(
                        _run_class_batch_task, payloads
                    ):
                        for index, result, record in entries:
                            land(index, result, record)
                else:
                    for index, result, record in pool.imap_unordered(
                        _run_cell_task, pending_items
                    ):
                        land(index, result, record)
            except KeyboardInterrupt:
                interrupted = True
    for index, cell in enumerate(cells):
        cell_id = cell.cell_id()
        if cell_id in completed:
            campaign.results.append(completed[cell_id])
        elif index in finished:
            campaign.results.append(finished[index])
    if interrupted:
        campaign.interrupted = True
        campaign.pending = len(cells) - len(campaign.results)
        instrumentation.event(
            "campaign.interrupted",
            at=len(campaign.results),
            pending=campaign.pending,
        )
    return campaign
