"""The campaign summary table behind ``repro campaign``.

One row per (system, ring size), one column per outcome of the
taxonomy, plus a totals row — the at-a-glance answer to "did the soak
survive, and where did it hurt?".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .engine import CampaignResult
from .outcomes import CellResult, CellStatus

__all__ = ["summarize_campaign"]

_COLUMNS: Tuple[CellStatus, ...] = (
    CellStatus.CONVERGED,
    CellStatus.DIVERGED,
    CellStatus.TIMEOUT,
    CellStatus.PARTIAL,
    CellStatus.ERROR,
    CellStatus.EARLYSTOP,
)


def _row_key(result: CellResult) -> str:
    """Group label ``system n=N`` parsed from the cell id."""
    parts = result.cell_id.split(":")
    if len(parts) >= 3 and parts[2].startswith("n"):
        return f"{parts[1]} n={parts[2][1:]}"
    return result.cell_id


def summarize_campaign(campaign: CampaignResult) -> str:
    """A plain-text summary table of a campaign run.

    Rows are (system, ring size) groups in first-seen order; columns
    are the outcome taxonomy plus a total.  Cells that demand attention —
    suspected divergences with archived traces, errors, partial
    verdicts — are listed beneath the table with their detail lines.
    """
    rows: Dict[str, Dict[CellStatus, int]] = {}
    for result in campaign.results:
        key = _row_key(result)
        tally = rows.setdefault(key, {status: 0 for status in _COLUMNS})
        tally[result.status] += 1

    header = ["cell", *[status.value for status in _COLUMNS], "total"]
    table: List[List[str]] = [header]
    for key, tally in rows.items():
        table.append(
            [
                key,
                *[str(tally[status]) for status in _COLUMNS],
                str(sum(tally.values())),
            ]
        )
    totals = campaign.counts()
    table.append(
        [
            "total",
            *[str(totals.get(status, 0)) for status in _COLUMNS],
            str(len(campaign.results)),
        ]
    )
    widths = [
        max(len(row[col]) for row in table) for col in range(len(header))
    ]
    lines = ["campaign summary"]
    for index, row in enumerate(table):
        lines.append(
            "  "
            + "  ".join(
                cell.ljust(widths[col]) if col == 0 else cell.rjust(widths[col])
                for col, cell in enumerate(row)
            )
        )
        if index == 0 or index == len(table) - 2:
            lines.append("  " + "-" * (sum(widths) + 2 * (len(widths) - 1)))
    lines.append(
        f"  executed {campaign.executed}, resumed {campaign.skipped}"
        + (f", pending {campaign.pending}" if campaign.pending else "")
        + (" (interrupted)" if campaign.interrupted else "")
    )

    attention = [
        result
        for result in campaign.results
        if result.status
        in (CellStatus.DIVERGED, CellStatus.ERROR, CellStatus.PARTIAL)
    ]
    if attention:
        lines.append("")
        lines.append("needs attention:")
        for result in attention:
            lines.append(
                f"  [{result.status.value}] {result.cell_id}: {result.detail}"
            )
            if result.trace_path is not None:
                lines.append(f"      trace archived at {result.trace_path}")
    return "\n".join(lines)
