"""Resilient fault-injection campaigns.

A *campaign* sweeps a (system × scheduler × fault-injector × seed)
grid over the derived token rings, executing each cell — one bounded,
fault-injected simulation run or one budget-capped verification — with
a per-run wall-clock timeout, bounded retries on crashes, and
incremental JSONL checkpointing, so that a single pathological cell
cannot take down hours of soak testing and an interrupted campaign
resumes exactly where it stopped.

* :mod:`repro.campaign.grid` — the axes (system/scheduler/injector
  registries), :class:`CellSpec`, and deterministic seed derivation;
* :mod:`repro.campaign.engine` — the resilient executor with
  checkpoint/resume;
* :mod:`repro.campaign.earlystop` — the cross-cell convergence
  detector behind ``--early-stop``: a cell class whose last N
  outcomes are identical stops executing, and its remaining seeds
  become first-class ``earlystop`` results;
* :mod:`repro.campaign.outcomes` — the outcome taxonomy
  (``converged`` / ``diverged`` / ``timeout`` / ``partial`` /
  ``error`` / ``earlystop``) and the per-cell result record;
* :mod:`repro.campaign.report` — the summary table behind
  ``repro campaign``.
"""

from .earlystop import ConvergenceDetector, class_key
from .engine import CampaignConfig, CampaignResult, execute_cell, run_campaign
from .grid import (
    INJECTORS,
    SCHEDULERS,
    SYSTEMS,
    CellSpec,
    build_grid,
    derive_seed,
    grid_signature,
)
from .outcomes import CellResult, CellStatus
from .report import summarize_campaign

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CellResult",
    "CellSpec",
    "CellStatus",
    "ConvergenceDetector",
    "INJECTORS",
    "SCHEDULERS",
    "SYSTEMS",
    "build_grid",
    "class_key",
    "derive_seed",
    "execute_cell",
    "grid_signature",
    "run_campaign",
    "summarize_campaign",
]
