"""Abstraction functions between state spaces (paper, Section 2.3).

When the implementation ``C`` and the specification ``A`` use
different state spaces, the paper relates them through an abstraction
function: a *total* mapping from ``Sigma_C`` *onto* ``Sigma_A``.
All refinement and stabilization definitions are then read through
the function — a computation of ``C`` "is" a computation of ``A``
when its pointwise image is.

:class:`AbstractionFunction` wraps a plain Python callable together
with the two schemas, and can check totality and surjectivity by
exhaustive enumeration (the instances verified in this reproduction
are small by construction).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from .errors import AbstractionError
from .state import State, StateSchema
from .system import System

__all__ = ["AbstractionFunction", "identity_abstraction"]


class AbstractionFunction:
    """A total mapping from a concrete state space onto an abstract one.

    Args:
        concrete_schema: schema of ``Sigma_C``.
        abstract_schema: schema of ``Sigma_A``.
        mapping: callable taking a concrete state tuple to an abstract
            state tuple.
        name: display name used in reports.
        array_mapping: optional batch form of ``mapping`` for the
            vector engine.  It receives one NumPy column per concrete
            variable (bool dtype for all-bool domains, int64
            otherwise), all of equal length, and must return one column
            of abstract-domain values per abstract variable — the
            pointwise image of ``mapping`` over the batch.  Must not
            require NumPy at definition time (this module never imports
            it); the columns it is handed already are arrays, so plain
            operators suffice.

    The callable is memoized per concrete state: the derivations apply
    the mapping to every state of every transition many times.
    """

    def __init__(
        self,
        concrete_schema: StateSchema,
        abstract_schema: StateSchema,
        mapping: Callable[[State], State],
        name: str = "alpha",
        array_mapping: Optional[Callable[[Dict[str, object]], Dict[str, object]]] = None,
    ):
        self._concrete = concrete_schema
        self._abstract = abstract_schema
        self._mapping = mapping
        self._name = name
        self._array_mapping = array_mapping
        self._cache: Dict[State, State] = {}

    @property
    def concrete_schema(self) -> StateSchema:
        """Schema of the concrete (implementation) state space."""
        return self._concrete

    @property
    def abstract_schema(self) -> StateSchema:
        """Schema of the abstract (specification) state space."""
        return self._abstract

    @property
    def name(self) -> str:
        """Display name of the abstraction function."""
        return self._name

    @property
    def array_mapping(
        self,
    ) -> Optional[Callable[[Dict[str, object]], Dict[str, object]]]:
        """The batch form of the mapping, when one was supplied."""
        return self._array_mapping

    def __call__(self, state: State) -> State:
        """Apply the abstraction to one concrete state.

        Raises:
            AbstractionError: if the input is not a concrete state or
                the image is not an abstract state (non-totality).
        """
        cached = self._cache.get(state)
        if cached is not None:
            return cached
        try:
            self._concrete.validate(state)
        except Exception as exc:
            raise AbstractionError(f"{self._name}: input is not a concrete state: {exc}")
        image = self._mapping(state)
        try:
            self._abstract.validate(image)
        except Exception as exc:
            raise AbstractionError(
                f"{self._name}: image {image!r} of {state!r} is not an abstract state: {exc}"
            )
        self._cache[state] = image
        return image

    def map_sequence(self, sequence: Sequence[State]) -> Tuple[State, ...]:
        """Pointwise image of a state sequence."""
        return tuple(self(state) for state in sequence)

    def image_of_states(self, states: Iterable[State]) -> FrozenSet[State]:
        """Set image of a set of concrete states."""
        return frozenset(self(state) for state in states)

    def check_total(self) -> bool:
        """Exhaustively verify totality over the concrete state space.

        Returns True when every concrete state has a well-formed image;
        :class:`AbstractionError` from ``__call__`` is allowed to
        propagate so the offending state is reported.
        """
        for state in self._concrete.states():
            self(state)
        return True

    def check_onto(self) -> bool:
        """Exhaustively verify surjectivity onto the abstract space."""
        image = {self(state) for state in self._concrete.states()}
        return image == set(self._abstract.states())

    def missed_abstract_states(self) -> FrozenSet[State]:
        """Abstract states with no concrete preimage (empty iff onto)."""
        image = {self(state) for state in self._concrete.states()}
        return frozenset(set(self._abstract.states()) - image)

    def preimage(self, abstract_state: State) -> FrozenSet[State]:
        """All concrete states mapping to ``abstract_state``.

        Enumerates the concrete space; intended for small instances and
        for tests of surjectivity witnesses.
        """
        self._abstract.validate(abstract_state)
        return frozenset(
            state for state in self._concrete.states() if self(state) == abstract_state
        )

    def image_system(self, system: System, name: Optional[str] = None) -> System:
        """The pointwise image automaton of a concrete system.

        Every concrete transition ``(s, t)`` becomes the abstract
        transition ``(alpha(s), alpha(t))``; transitions whose image
        collapses to a stutter ``(u, u)`` are kept, since whether
        stuttering is meaningful is decided by the caller (see
        :meth:`repro.core.system.System.without_self_loops`).
        """
        transitions = [
            (self(source), self(target)) for source, target in system.transitions()
        ]
        initial = [self(state) for state in system.initial]
        return System(
            self._abstract,
            transitions,
            initial,
            name=name or f"{self._name}({system.name})",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AbstractionFunction({self._name!r}, "
            f"{self._concrete.describe()} -> {self._abstract.describe()})"
        )


def identity_abstraction(schema: StateSchema) -> AbstractionFunction:
    """The identity abstraction on a schema.

    Lets every check in the library be written uniformly against an
    abstraction function: same-state-space comparisons (the paper's
    Sections 2.1-2.2) simply pass the identity.
    """
    return AbstractionFunction(schema, schema, lambda state: state, name="id")
