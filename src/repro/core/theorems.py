"""Executable schemas for the paper's lemmas and theorems.

The paper's results are universally quantified over systems; on any
*particular* finite instance each result becomes a checkable
implication: verify the premises, verify the conclusion, and confirm
the implication was not vacuous.  The functions here run exactly that
drill and return a :class:`~repro.checker.report.VerificationReport`
whose rows are the premises and the conclusion.

These schemas are how the benchmark harness "reproduces" Theorems
0-5 — not by re-proving them, but by instantiating them on the
token-ring derivations (and on randomized systems in the property
tests) and confirming that whenever the premises hold so does the
conclusion.
"""

from __future__ import annotations

from typing import Optional

from ..checker.convergence import check_stabilization
from ..checker.refinement_check import (
    check_convergence_refinement,
    check_everywhere_refinement,
)
from ..checker.report import VerificationReport
from .abstraction import AbstractionFunction
from .composition import box
from .system import System

__all__ = [
    "theorem0_instance",
    "theorem1_instance",
    "lemma2_instance",
    "theorem3_instance",
    "lemma4_instance",
    "theorem5_instance",
    "graybox_instance",
]


def theorem0_instance(
    concrete: System,
    abstract: System,
    target: System,
    fairness: str = "none",
) -> VerificationReport:
    """Theorem 0: ``[C (= A]`` and ``A`` stabilizing to ``B`` imply
    ``C`` stabilizing to ``B``.

    All three systems must share a state space (the theorem as stated
    in Section 2.1).
    """
    report = VerificationReport(
        f"Theorem 0 on ({concrete.name}, {abstract.name}, {target.name})"
    )
    report.add(
        "premise: everywhere refinement",
        check_everywhere_refinement(concrete, abstract),
    )
    report.add(
        "premise: A stabilizing to B",
        check_stabilization(abstract, target, fairness=fairness),
    )
    report.add(
        "conclusion: C stabilizing to B",
        check_stabilization(concrete, target, fairness=fairness),
    )
    return report


def theorem1_instance(
    concrete: System,
    abstract: System,
    target: System,
    alpha: Optional[AbstractionFunction] = None,
    stutter_insensitive: bool = False,
    fairness: str = "none",
) -> VerificationReport:
    """Theorem 1: ``[C <= A]`` and ``A`` stabilizing to ``B`` imply
    ``C`` stabilizing to ``B``.

    Args:
        alpha: abstraction from ``C``'s space onto the shared space of
            ``A`` and ``B`` (identity if omitted).
    """
    report = VerificationReport(
        f"Theorem 1 on ({concrete.name}, {abstract.name}, {target.name})"
    )
    report.add(
        "premise: convergence refinement",
        check_convergence_refinement(
            concrete, abstract, alpha, stutter_insensitive=stutter_insensitive
        ),
    )
    report.add(
        "premise: A stabilizing to B",
        check_stabilization(abstract, target, fairness=fairness),
    )
    report.add(
        "conclusion: C stabilizing to B",
        check_stabilization(
            concrete,
            target,
            alpha,
            stutter_insensitive=stutter_insensitive,
            fairness=fairness,
        ),
    )
    return report


def lemma2_instance(
    concrete: System,
    abstract: System,
    wrapper: System,
    fairness: str = "none",
) -> VerificationReport:
    """Lemma 2: ``[C <= A]`` and ``(A [] W)`` stabilizing to ``A`` imply
    ``[(C [] W) <= (A [] W)]``.

    Same-state-space form, exactly as in the paper's proof.
    """
    report = VerificationReport(
        f"Lemma 2 on ({concrete.name}, {abstract.name}, {wrapper.name})"
    )
    report.add(
        "premise: [C <= A]", check_convergence_refinement(concrete, abstract)
    )
    wrapped_abstract = box(abstract, wrapper)
    report.add(
        "premise: (A [] W) stabilizing to A",
        check_stabilization(wrapped_abstract, abstract, fairness=fairness),
    )
    wrapped_concrete = box(concrete, wrapper)
    report.add(
        "conclusion: [(C [] W) <= (A [] W)]",
        check_convergence_refinement(wrapped_concrete, wrapped_abstract),
    )
    return report


def theorem3_instance(
    concrete: System,
    abstract: System,
    wrapper: System,
    fairness: str = "none",
) -> VerificationReport:
    """Theorem 3: ``[C <= A]`` and ``(A [] W)`` stabilizing to ``A``
    imply ``(C [] W)`` stabilizing to ``A``."""
    report = VerificationReport(
        f"Theorem 3 on ({concrete.name}, {abstract.name}, {wrapper.name})"
    )
    report.add(
        "premise: [C <= A]", check_convergence_refinement(concrete, abstract)
    )
    report.add(
        "premise: (A [] W) stabilizing to A",
        check_stabilization(box(abstract, wrapper), abstract, fairness=fairness),
    )
    report.add(
        "conclusion: (C [] W) stabilizing to A",
        check_stabilization(box(concrete, wrapper), abstract, fairness=fairness),
    )
    return report


def lemma4_instance(
    abstract: System,
    wrapper: System,
    refined_wrapper: System,
    fairness: str = "none",
) -> VerificationReport:
    """Lemma 4: ``[W' <= W]`` and ``(A [] W)`` stabilizing to ``A``
    imply ``(A [] W')`` stabilizing to ``A``."""
    report = VerificationReport(
        f"Lemma 4 on ({abstract.name}, {wrapper.name}, {refined_wrapper.name})"
    )
    report.add(
        "premise: [W' <= W] (open systems)",
        check_convergence_refinement(refined_wrapper, wrapper, open_systems=True),
    )
    report.add(
        "premise: (A [] W) stabilizing to A",
        check_stabilization(box(abstract, wrapper), abstract, fairness=fairness),
    )
    report.add(
        "conclusion: (A [] W') stabilizing to A",
        check_stabilization(box(abstract, refined_wrapper), abstract, fairness=fairness),
    )
    return report


def theorem5_instance(
    concrete: System,
    abstract: System,
    wrapper: System,
    refined_wrapper: System,
    fairness: str = "none",
) -> VerificationReport:
    """Theorem 5: ``[C <= A]``, ``(A [] W)`` stabilizing to ``A``, and
    ``[W' <= W]`` imply ``(C [] W')`` stabilizing to ``A``.

    This is the paper's graybox result in its same-state-space form:
    the system and the wrapper are refined *independently* and the
    composition still stabilizes.
    """
    report = VerificationReport(
        f"Theorem 5 on ({concrete.name}, {abstract.name}, "
        f"{wrapper.name}, {refined_wrapper.name})"
    )
    report.add(
        "premise: [C <= A]", check_convergence_refinement(concrete, abstract)
    )
    report.add(
        "premise: (A [] W) stabilizing to A",
        check_stabilization(box(abstract, wrapper), abstract, fairness=fairness),
    )
    report.add(
        "premise: [W' <= W] (open systems)",
        check_convergence_refinement(refined_wrapper, wrapper, open_systems=True),
    )
    report.add(
        "conclusion: (C [] W') stabilizing to A",
        check_stabilization(box(concrete, refined_wrapper), abstract, fairness=fairness),
    )
    return report


def graybox_instance(
    concrete: System,
    refined_wrapper: System,
    abstract: System,
    wrapper: System,
    alpha: AbstractionFunction,
    stutter_insensitive: bool = False,
    fairness: str = "none",
) -> VerificationReport:
    """Theorem 5 across state spaces — the form the derivations use.

    ``C`` and ``W'`` live in the concrete space; ``A`` and ``W`` in
    the abstract space; ``alpha`` relates the two (Section 2.3).  The
    premises become ``[C <= A]`` via ``alpha``, ``[W' <= W]`` via
    ``alpha``, and ``(A [] W)`` stabilizing to ``A``; the conclusion
    is ``(C [] W')`` stabilizing to ``A`` via ``alpha``.

    This single schema replays every derivation in Sections 4-6: pick
    the protocol's mapping as ``alpha``, the concrete protocol as
    ``C``, the refined wrappers as ``W'``.
    """
    report = VerificationReport(
        f"Graybox (Theorem 5 via {alpha.name}) on ({concrete.name}, "
        f"{refined_wrapper.name}; {abstract.name}, {wrapper.name})"
    )
    report.add(
        "premise: [C <= A] via alpha",
        check_convergence_refinement(
            concrete, abstract, alpha, stutter_insensitive=stutter_insensitive
        ),
    )
    report.add(
        "premise: [W' <= W] via alpha (open systems)",
        check_convergence_refinement(
            refined_wrapper,
            wrapper,
            alpha,
            stutter_insensitive=stutter_insensitive,
            open_systems=True,
        ),
    )
    report.add(
        "premise: (A [] W) stabilizing to A",
        check_stabilization(box(abstract, wrapper), abstract, fairness=fairness),
    )
    report.add(
        "conclusion: (C [] W') stabilizing to A via alpha",
        check_stabilization(
            box(concrete, refined_wrapper),
            abstract,
            alpha,
            stutter_insensitive=stutter_insensitive,
            fairness=fairness,
        ),
    )
    return report
