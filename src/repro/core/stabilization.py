"""Definitional (computation-level) stabilization checks.

Paper, Section 2::

    C is stabilizing to A iff every computation of C has a suffix
    that is a suffix of some computation of A that starts at an
    initial state of A.

A *suffix of some computation of A from an initial state* is exactly
a path of ``A`` that (i) starts at a state reachable from ``A``'s
initial states, (ii) follows ``A``'s transitions, and (iii) is
maximal where it ends.  The bounded oracle below checks the
definition literally, computation by computation, and is used in the
test suite to cross-validate the fixpoint procedure in
:mod:`repro.checker.convergence` (which is re-exported here for
convenience).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..checker.convergence import (  # noqa: F401  (re-exported)
    StabilizationResult,
    behavioural_core,
    check_self_stabilization,
    check_stabilization,
    legitimate_abstract_states,
    worst_case_convergence_steps,
)
from .abstraction import AbstractionFunction, identity_abstraction
from .computation import remove_stutter
from .state import State
from .system import System

__all__ = [
    "sequence_has_legitimate_suffix",
    "stabilizes_on_computations",
    "StabilizationResult",
    "behavioural_core",
    "check_self_stabilization",
    "check_stabilization",
    "legitimate_abstract_states",
    "worst_case_convergence_steps",
]


def sequence_has_legitimate_suffix(
    sequence: Sequence[State],
    abstract: System,
    complete: bool,
    stutter_insensitive: bool = False,
) -> bool:
    """Does ``sequence`` (already in abstract coordinates) have a suffix
    that is a suffix of a computation of ``A`` from an initial state?

    Args:
        sequence: the abstract image of a concrete computation.
        abstract: the target specification ``A``.
        complete: whether the underlying concrete computation is whole
            (ends in a terminal state) — then the matching suffix must
            be maximal in ``A`` too — or merely a bounded prefix, for
            which the one-state suffix reaching a legitimate state is
            enough evidence at this bound.
        stutter_insensitive: collapse stuttering before matching.
    """
    states = remove_stutter(sequence) if stutter_insensitive else tuple(sequence)
    if not states:
        return False
    legitimate = abstract.reachable()
    for start_index in range(len(states)):
        suffix = states[start_index:]
        if suffix[0] not in legitimate:
            continue
        if any(
            not abstract.has_transition(current, following)
            for current, following in zip(suffix, suffix[1:])
        ):
            continue
        if complete and not abstract.is_terminal(suffix[-1]):
            continue
        return True
    return False


def stabilizes_on_computations(
    concrete: System,
    abstract: System,
    alpha: Optional[AbstractionFunction] = None,
    max_length: int = 12,
    stutter_insensitive: bool = False,
    fairness: str = "none",
) -> bool:
    """Literal bounded check of "``C`` is stabilizing to ``A``".

    Enumerates every computation (prefix) of ``C`` up to ``max_length``
    states from *every* state of the concrete space and applies the
    suffix definition to its abstract image.

    The check is exact for refutation at sufficient bounds (a missing
    suffix in every extension shows up as a bounded computation whose
    image never touches a legitimate state from which it behaves
    legally); for confirmation it is a bounded approximation — the
    production procedure is :func:`check_stabilization`.

    Args:
        fairness: ``'weak'`` drops self-loops before enumeration,
            matching the treatment of stuttering systems.
    """
    if fairness not in ("none", "weak"):
        raise ValueError(f"unknown fairness mode {fairness!r}")
    mapping = alpha if alpha is not None else identity_abstraction(concrete.schema)
    system = concrete.without_self_loops() if fairness == "weak" else concrete
    for start in system.schema.states():
        for sequence in system.computations(start, max_length):
            complete = system.is_terminal(sequence[-1])
            image = mapping.map_sequence(sequence)
            if not sequence_has_legitimate_suffix(
                image, abstract, complete, stutter_insensitive=stutter_insensitive
            ):
                return False
    return True
