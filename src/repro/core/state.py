"""States, state schemas, and finite state spaces.

The paper models a system as a finite-state automaton ``(Sigma, T, I)``
over a state space ``Sigma``.  This module provides the concrete
representation of ``Sigma`` used throughout the library:

* a :class:`StateSchema` names the state variables and gives each a
  finite domain;
* a *state* is an immutable tuple of values, one per schema variable,
  in schema order (plain tuples keep the exhaustive enumerations used
  by the checkers cheap and hashable);
* a :class:`StateSpace` is the set of all states of a schema, lazily
  enumerable and queryable for membership.

The helpers here are deliberately free of any protocol knowledge: the
token-ring packages and the guarded-command compiler both build their
state spaces through this module.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

from .errors import SchemaMismatchError, StateSpaceError

__all__ = ["State", "StateSchema", "StateSpace"]

#: A state is an immutable tuple of variable values in schema order.
State = Tuple[object, ...]


class StateSchema:
    """An ordered set of named variables with finite domains.

    A schema fixes both the *shape* of states (which variables exist
    and in which order their values are stored) and the *extent* of the
    state space (the finite domain of each variable).

    Args:
        variables: mapping from variable name to an iterable of the
            values the variable may take.  Iteration order of the
            mapping fixes the tuple order of states.

    Raises:
        ValueError: if there are no variables, a domain is empty, or a
            domain contains duplicate values.

    Example:
        >>> schema = StateSchema({"x": (0, 1), "y": (0, 1, 2)})
        >>> schema.size()
        6
        >>> schema.pack({"y": 2, "x": 1})
        (1, 2)
    """

    def __init__(self, variables: Mapping[str, Iterable[object]]):
        if not variables:
            raise ValueError("a state schema needs at least one variable")
        self._names: Tuple[str, ...] = tuple(variables)
        self._domains: Tuple[Tuple[object, ...], ...] = tuple(
            tuple(domain) for domain in variables.values()
        )
        for name, domain in zip(self._names, self._domains):
            if not domain:
                raise ValueError(f"variable {name!r} has an empty domain")
            if len(set(domain)) != len(domain):
                raise ValueError(f"variable {name!r} has duplicate domain values")
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self._names)}
        self._domain_sets = tuple(frozenset(domain) for domain in self._domains)

    @property
    def names(self) -> Tuple[str, ...]:
        """Variable names in tuple order."""
        return self._names

    @property
    def domains(self) -> Tuple[Tuple[object, ...], ...]:
        """Per-variable domains, aligned with :attr:`names`."""
        return self._domains

    def domain_of(self, name: str) -> Tuple[object, ...]:
        """Return the domain of variable ``name``.

        Raises:
            KeyError: if the schema has no such variable.
        """
        return self._domains[self._index[name]]

    def index_of(self, name: str) -> int:
        """Return the tuple position of variable ``name``."""
        return self._index[name]

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._names)

    def size(self) -> int:
        """Number of states in the state space (product of domain sizes)."""
        result = 1
        for domain in self._domains:
            result *= len(domain)
        return result

    def pack(self, assignment: Mapping[str, object]) -> State:
        """Build a state tuple from a name->value mapping.

        Every schema variable must be assigned, every value must lie in
        the variable's domain, and no extra names may be present.

        Raises:
            StateSpaceError: on missing/extra variables or out-of-domain
                values.
        """
        extra = set(assignment) - set(self._names)
        if extra:
            raise StateSpaceError(f"unknown variables in assignment: {sorted(extra)}")
        values = []
        for name, domain_set in zip(self._names, self._domain_sets):
            if name not in assignment:
                raise StateSpaceError(f"assignment is missing variable {name!r}")
            value = assignment[name]
            if value not in domain_set:
                raise StateSpaceError(
                    f"value {value!r} is outside the domain of {name!r}"
                )
            values.append(value)
        return tuple(values)

    def unpack(self, state: State) -> Dict[str, object]:
        """Return the name->value dictionary view of a state tuple."""
        self.validate(state)
        return dict(zip(self._names, state))

    def value(self, state: State, name: str) -> object:
        """Read variable ``name`` out of ``state`` without unpacking it all."""
        return state[self._index[name]]

    def replace(self, state: State, **updates: object) -> State:
        """Return a copy of ``state`` with the named variables replaced.

        Raises:
            StateSpaceError: if an update is out of domain or names an
                unknown variable.
        """
        values = list(state)
        for name, value in updates.items():
            if name not in self._index:
                raise StateSpaceError(f"unknown variable {name!r}")
            position = self._index[name]
            if value not in self._domain_sets[position]:
                raise StateSpaceError(
                    f"value {value!r} is outside the domain of {name!r}"
                )
            values[position] = value
        return tuple(values)

    def validate(self, state: State) -> None:
        """Assert that ``state`` is a member of this schema's state space.

        Raises:
            StateSpaceError: if the tuple has the wrong arity or an
                out-of-domain component.
        """
        if not isinstance(state, tuple) or len(state) != len(self._names):
            raise StateSpaceError(
                f"state {state!r} does not have arity {len(self._names)}"
            )
        for name, domain_set, value in zip(self._names, self._domain_sets, state):
            if value not in domain_set:
                raise StateSpaceError(
                    f"state component {name!r}={value!r} is out of domain"
                )

    def is_valid(self, state: State) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(state)
        except StateSpaceError:
            return False
        return True

    def states(self) -> Iterator[State]:
        """Enumerate the full state space in lexicographic domain order."""
        return iter(itertools.product(*self._domains))

    def space(self) -> "StateSpace":
        """Return the :class:`StateSpace` over this schema."""
        return StateSpace(self)

    def compatible_with(self, other: "StateSchema") -> bool:
        """True iff both schemas have identical names and domains."""
        return self._names == other._names and self._domains == other._domains

    def require_compatible(self, other: "StateSchema", context: str) -> None:
        """Raise :class:`SchemaMismatchError` unless schemas match.

        Args:
            context: a short phrase naming the operation, used in the
                error message.
        """
        if not self.compatible_with(other):
            raise SchemaMismatchError(
                f"{context}: schemas differ "
                f"({self.describe()} vs {other.describe()})"
            )

    def describe(self) -> str:
        """Human-readable one-line description of the schema."""
        parts = ", ".join(
            f"{name}:{len(domain)}" for name, domain in zip(self._names, self._domains)
        )
        return f"<schema {parts}; {self.size()} states>"

    def format_state(self, state: State) -> str:
        """Render a state as ``name=value`` pairs for messages and traces."""
        self.validate(state)
        return " ".join(f"{n}={v}" for n, v in zip(self._names, state))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateSchema({self.describe()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateSchema):
            return NotImplemented
        return self.compatible_with(other)

    def __hash__(self) -> int:
        return hash((self._names, self._domains))


class StateSpace:
    """The (finite) set of all states of a schema.

    Thin wrapper that lets callers treat ``Sigma`` as a first-class
    value: it supports ``in``, ``len``, and iteration, and caches the
    materialized frozenset on first full enumeration.
    """

    def __init__(self, schema: StateSchema):
        self._schema = schema
        self._cache: frozenset | None = None

    @property
    def schema(self) -> StateSchema:
        """The schema this space enumerates."""
        return self._schema

    def __iter__(self) -> Iterator[State]:
        return self._schema.states()

    def __len__(self) -> int:
        return self._schema.size()

    def __contains__(self, state: object) -> bool:
        return isinstance(state, tuple) and self._schema.is_valid(state)

    def as_frozenset(self) -> frozenset:
        """Materialize (and cache) the whole space as a frozenset."""
        if self._cache is None:
            self._cache = frozenset(self._schema.states())
        return self._cache

    def sample(self, count: int, rng) -> Sequence[State]:
        """Draw ``count`` states uniformly at random using ``rng``.

        Sampling draws each variable independently from its domain, so
        it never materializes the full space.

        Args:
            count: number of states to draw (with replacement).
            rng: a :class:`random.Random`-like object.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        domains = self._schema.domains
        return [tuple(rng.choice(domain) for domain in domains) for _ in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateSpace({self._schema.describe()})"
