"""Definitional (computation-level) refinement checks.

The :mod:`repro.checker` package decides the paper's relations with
transition-local graph procedures.  This module implements the same
relations *literally* — by enumerating bounded computations and
checking the quantified definitions word for word.  The definitional
forms are exponential and only usable on tiny systems, which is
precisely their role: they are the oracle against which the efficient
procedures are cross-validated in the test suite, mirroring how the
paper justifies its lemmas by reasoning over computations.

The efficient procedures are re-exported here as well, so user code
can import everything refinement-related from one place:

    from repro.core.refinement import check_convergence_refinement
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..checker.refinement_check import (  # noqa: F401  (re-exported)
    check_convergence_refinement,
    check_everywhere_refinement,
    check_init_refinement,
    compression_transitions,
    expand_to_abstract_path,
)
from .abstraction import AbstractionFunction, identity_abstraction
from .isomorphism import check_convergence_isomorphism
from .state import State
from .system import System

__all__ = [
    "refines_init_on_computations",
    "everywhere_refines_on_computations",
    "convergence_refines_on_computations",
    "check_init_refinement",
    "check_everywhere_refinement",
    "check_convergence_refinement",
    "compression_transitions",
    "expand_to_abstract_path",
]


def _image_is_computation(
    sequence: Tuple[State, ...],
    abstract: System,
    alpha: AbstractionFunction,
    complete: bool,
) -> bool:
    """Does the pointwise image of ``sequence`` form an ``A``-computation?

    Args:
        complete: whether ``sequence`` is a whole (finite, maximal)
            computation — then the image must be maximal in ``A`` —
            or just a prefix, for which path-validity suffices.
    """
    image = alpha.map_sequence(sequence)
    for current, following in zip(image, image[1:]):
        if not abstract.has_transition(current, following):
            return False
    if complete and not abstract.is_terminal(image[-1]):
        return False
    return True


def refines_init_on_computations(
    concrete: System,
    abstract: System,
    alpha: Optional[AbstractionFunction] = None,
    max_length: int = 8,
) -> bool:
    """Literal check of ``[C (= A]_init`` over bounded computations.

    Enumerates every computation (prefix) of ``C`` of at most
    ``max_length`` states from each initial state and tests that its
    image is a computation (prefix) of ``A``.  Exhaustive — and
    therefore exact — whenever ``max_length`` exceeds the length of
    the longest simple path plus one, but intended for tiny systems
    regardless.
    """
    mapping = alpha if alpha is not None else identity_abstraction(concrete.schema)
    for start in concrete.initial:
        if mapping(start) not in abstract.initial:
            return False
        for sequence in concrete.computations(start, max_length):
            complete = concrete.is_terminal(sequence[-1])
            if not _image_is_computation(sequence, abstract, mapping, complete):
                return False
    return True


def everywhere_refines_on_computations(
    concrete: System,
    abstract: System,
    alpha: Optional[AbstractionFunction] = None,
    max_length: int = 8,
) -> bool:
    """Literal check of ``[C (= A]`` over bounded computations.

    As :func:`refines_init_on_computations` but quantifying over
    computations from *every* state of the concrete space.
    """
    mapping = alpha if alpha is not None else identity_abstraction(concrete.schema)
    for start in concrete.schema.states():
        for sequence in concrete.computations(start, max_length):
            complete = concrete.is_terminal(sequence[-1])
            if not _image_is_computation(sequence, abstract, mapping, complete):
                return False
    return True


def convergence_refines_on_computations(
    concrete: System,
    abstract: System,
    alpha: Optional[AbstractionFunction] = None,
    max_length: int = 8,
    stutter_insensitive: bool = False,
) -> bool:
    """Literal check of ``[C <= A]`` over bounded computations.

    For every bounded computation of ``C`` (from every state), a
    witness abstract computation is constructed by splicing shortest
    abstract paths (:func:`expand_to_abstract_path`) and the
    convergence-isomorphism definition is then checked verbatim on the
    pair.  Also requires the initial-refinement clause.

    Note: like the other ``*_on_computations`` helpers this bounds the
    computations it looks at; it is an oracle for cross-validation,
    not the production decision procedure.
    """
    mapping = alpha if alpha is not None else identity_abstraction(concrete.schema)
    if stutter_insensitive:
        # Initial-refinement clause modulo stuttering: the image of a
        # reachable computation, with stutters collapsed, must be a
        # path of A starting from an A-initial state.
        from .computation import remove_stutter

        for start in concrete.initial:
            if mapping(start) not in abstract.initial:
                return False
            for sequence in concrete.computations(start, max_length):
                image = remove_stutter(mapping.map_sequence(sequence))
                for current, following in zip(image, image[1:]):
                    if not abstract.has_transition(current, following):
                        return False
    else:
        if not refines_init_on_computations(
            concrete, abstract, mapping, max_length=max_length
        ):
            return False
    for start in concrete.schema.states():
        for sequence in concrete.computations(start, max_length):
            witness = expand_to_abstract_path(
                sequence, abstract, mapping, stutter_insensitive=stutter_insensitive
            )
            if witness is None:
                return False
            verdict = check_convergence_isomorphism(
                mapping.map_sequence(sequence),
                witness,
                stutter_insensitive=stutter_insensitive,
            )
            if not verdict.holds:
                return False
    return True
