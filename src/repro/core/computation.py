"""Utilities over state sequences (computations).

The definitions in Section 2 of the paper quantify over computations:
*stabilization* talks about suffixes, and *convergence isomorphism*
talks about subsequences with finitely many omissions.  This module
collects the sequence-level predicates those definitions need, kept
independent of any particular :class:`~repro.core.system.System` so
they can be property-tested in isolation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .state import State

__all__ = [
    "is_suffix",
    "suffixes",
    "is_subsequence",
    "subsequence_embedding",
    "omission_count",
    "remove_stutter",
    "common_suffix_start",
]


def is_suffix(candidate: Sequence[State], sequence: Sequence[State]) -> bool:
    """True iff ``candidate`` equals a suffix of ``sequence``.

    The empty sequence counts as a suffix of anything, matching the
    usual convention; callers enforcing non-emptiness do so themselves.
    """
    n = len(candidate)
    if n == 0:
        return True
    if n > len(sequence):
        return False
    return tuple(sequence[len(sequence) - n :]) == tuple(candidate)


def suffixes(sequence: Sequence[State]) -> Iterable[Tuple[State, ...]]:
    """Yield every non-empty suffix of ``sequence``, longest first."""
    as_tuple = tuple(sequence)
    for start in range(len(as_tuple)):
        yield as_tuple[start:]


def subsequence_embedding(
    candidate: Sequence[State], sequence: Sequence[State]
) -> Optional[List[int]]:
    """Greedy left-most embedding of ``candidate`` into ``sequence``.

    Returns the list of indices ``p`` such that
    ``sequence[p[i]] == candidate[i]`` and ``p`` is strictly
    increasing, or ``None`` if no embedding exists.  The greedy
    left-most strategy is complete: an embedding exists iff the greedy
    one succeeds.
    """
    positions: List[int] = []
    cursor = 0
    for item in candidate:
        while cursor < len(sequence) and sequence[cursor] != item:
            cursor += 1
        if cursor == len(sequence):
            return None
        positions.append(cursor)
        cursor += 1
    return positions


def is_subsequence(candidate: Sequence[State], sequence: Sequence[State]) -> bool:
    """True iff ``candidate`` can be obtained from ``sequence`` by deletions."""
    return subsequence_embedding(candidate, sequence) is not None


def omission_count(candidate: Sequence[State], sequence: Sequence[State]) -> Optional[int]:
    """Number of states dropped by the *best* embedding of ``candidate``.

    For finite sequences every embedding omits exactly
    ``len(sequence) - len(candidate)`` states, so the count does not
    depend on the embedding chosen.  Returns ``None`` when ``candidate``
    is not a subsequence of ``sequence``.
    """
    if not is_subsequence(candidate, sequence):
        return None
    return len(sequence) - len(candidate)


def remove_stutter(sequence: Sequence[State]) -> Tuple[State, ...]:
    """Collapse maximal runs of equal consecutive states to one state.

    The paper's new 3-state system ``C3`` takes tau (stuttering) steps
    in illegitimate states; comparing computations up to stuttering is
    done by normalizing both sides with this function.
    """
    result: List[State] = []
    for state in sequence:
        if not result or result[-1] != state:
            result.append(state)
    return tuple(result)


def common_suffix_start(left: Sequence[State], right: Sequence[State]) -> Optional[int]:
    """Index into ``left`` where its longest common suffix with ``right`` begins.

    Returns ``None`` when the sequences do not even share a final
    state.  Useful for measuring how quickly two recovery paths merge.
    """
    i, j = len(left) - 1, len(right) - 1
    if i < 0 or j < 0 or left[i] != right[j]:
        return None
    while i > 0 and j > 0 and left[i - 1] == right[j - 1]:
        i -= 1
        j -= 1
    return i
