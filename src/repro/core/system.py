"""The system model of the paper: finite-state automata ``(Sigma, T, I)``.

Section 2 of the paper defines a *system* as a finite-state automaton
``(Sigma, T, I)`` where ``T`` is a set of transitions over ``Sigma``
and ``I`` a set of initial states.  A *computation* is a maximal
sequence of states related by ``T`` — maximal meaning that a finite
computation must end in a state with no outgoing transition.

:class:`System` is the library's concrete realization.  Transitions
are stored explicitly (adjacency mapping), optionally labelled with
the name of the action that produced them so that counterexamples can
be traced back to guarded commands.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .errors import StateSpaceError  # noqa: F401  (re-exported for callers)
from .state import State, StateSchema

__all__ = ["System", "Transition", "successors_closure"]

#: A transition is an ordered pair of states.
Transition = Tuple[State, State]


class System:
    """A finite-state automaton ``(Sigma, T, I)``.

    Args:
        schema: the state schema whose space is ``Sigma``.
        transitions: the transition relation, given either as an
            iterable of ``(source, target)`` pairs or as a mapping from
            source to an iterable of targets.
        initial: the set of initial states ``I`` (may be empty; the
            paper's wrappers are systems with no distinguished initial
            states of their own).
        name: optional human-readable name used in reports.
        labels: optional mapping from transition pair to a set of
            action names, recording which guarded command produced the
            transition.  Labels are advisory; all semantic checks use
            only the relation itself.

    Every state mentioned anywhere is validated against the schema so
    that malformed systems fail at construction, not mid-check.
    """

    def __init__(
        self,
        schema: StateSchema,
        transitions: Iterable[Transition] | Mapping[State, Iterable[State]],
        initial: Iterable[State],
        name: str = "system",
        labels: Optional[Mapping[Transition, Iterable[str]]] = None,
    ):
        self._schema = schema
        self._name = name
        adjacency: Dict[State, Set[State]] = {}
        if isinstance(transitions, Mapping):
            pairs: Iterable[Transition] = (
                (source, target)
                for source, targets in transitions.items()
                for target in targets
            )
        else:
            pairs = transitions
        for source, target in pairs:
            schema.validate(source)
            schema.validate(target)
            adjacency.setdefault(source, set()).add(target)
        self._adjacency: Dict[State, FrozenSet[State]] = {
            source: frozenset(targets) for source, targets in adjacency.items()
        }
        initial_set = frozenset(initial)
        for state in initial_set:
            schema.validate(state)
        self._initial = initial_set
        label_map: Dict[Transition, FrozenSet[str]] = {}
        if labels:
            for pair, names in labels.items():
                source, target = pair
                schema.validate(source)
                schema.validate(target)
                label_map[pair] = frozenset(names)
        self._labels = label_map

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def schema(self) -> StateSchema:
        """The schema of ``Sigma``."""
        return self._schema

    @property
    def name(self) -> str:
        """The system's display name."""
        return self._name

    @property
    def initial(self) -> FrozenSet[State]:
        """The set ``I`` of initial states."""
        return self._initial

    def successors(self, state: State) -> FrozenSet[State]:
        """The set ``{t : (state, t) in T}`` (empty for terminal states)."""
        return self._adjacency.get(state, frozenset())

    def has_transition(self, source: State, target: State) -> bool:
        """True iff ``(source, target)`` is in ``T``."""
        return target in self._adjacency.get(source, frozenset())

    def transitions(self) -> Iterator[Transition]:
        """Iterate over all transition pairs in ``T``."""
        for source, targets in self._adjacency.items():
            for target in targets:
                yield (source, target)

    def transition_count(self) -> int:
        """Number of transitions in ``T``."""
        return sum(len(targets) for targets in self._adjacency.values())

    def sources(self) -> Iterator[State]:
        """States with at least one outgoing transition."""
        return iter(self._adjacency)

    def labels_of(self, source: State, target: State) -> FrozenSet[str]:
        """Action names recorded for a transition (may be empty)."""
        return self._labels.get((source, target), frozenset())

    def is_terminal(self, state: State) -> bool:
        """True iff ``state`` has no outgoing transition.

        A finite computation may only end in such a state (maximality).
        """
        self._schema.validate(state)
        return not self._adjacency.get(state)

    def terminal_states(self) -> FrozenSet[State]:
        """All terminal states of the full state space ``Sigma``.

        Enumerates ``Sigma`` exhaustively; intended for the small
        instances on which the paper's theorems are verified.
        """
        return frozenset(
            state for state in self._schema.states() if not self._adjacency.get(state)
        )

    def enabled_anywhere(self) -> bool:
        """True iff the transition relation is non-empty."""
        return bool(self._adjacency)

    # ------------------------------------------------------------------
    # Derived systems
    # ------------------------------------------------------------------

    def with_initial(self, initial: Iterable[State], name: Optional[str] = None) -> "System":
        """Return the same automaton with a different initial-state set."""
        return System(
            self._schema,
            self._adjacency,
            initial,
            name=name or self._name,
            labels=self._labels,
        )

    def with_name(self, name: str) -> "System":
        """Return the same automaton under a different display name."""
        return System(self._schema, self._adjacency, self._initial, name=name, labels=self._labels)

    def restricted_to(self, states: Iterable[State], name: Optional[str] = None) -> "System":
        """The sub-automaton induced on ``states``.

        Transitions are kept only when both endpoints lie inside the
        given set; initial states are intersected with it.
        """
        keep = frozenset(states)
        for state in keep:
            self._schema.validate(state)
        transitions = {
            source: frozenset(t for t in targets if t in keep)
            for source, targets in self._adjacency.items()
            if source in keep
        }
        labels = {
            pair: names
            for pair, names in self._labels.items()
            if pair[0] in keep and pair[1] in keep
        }
        return System(
            self._schema,
            transitions,
            self._initial & keep,
            name=name or f"{self._name}|restricted",
            labels=labels,
        )

    def without_self_loops(self, name: Optional[str] = None) -> "System":
        """Drop all stuttering transitions ``(s, s)``.

        Used to check convergence of systems with stuttering actions
        (the paper's ``C3``) under weak fairness: an action that only
        stutters cannot be scheduled forever to the exclusion of
        actions that change the state.
        """
        transitions = {
            source: frozenset(t for t in targets if t != source)
            for source, targets in self._adjacency.items()
        }
        labels = {pair: names for pair, names in self._labels.items() if pair[0] != pair[1]}
        return System(
            self._schema,
            transitions,
            self._initial,
            name=name or f"{self._name}|no-stutter",
            labels=labels,
        )

    def reachable_from(self, sources: Iterable[State]) -> FrozenSet[State]:
        """All states reachable from ``sources`` (inclusive) via ``T``."""
        frontier: List[State] = []
        seen: Set[State] = set()
        for state in sources:
            self._schema.validate(state)
            if state not in seen:
                seen.add(state)
                frontier.append(state)
        while frontier:
            state = frontier.pop()
            for successor in self._adjacency.get(state, ()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return frozenset(seen)

    def reachable(self) -> FrozenSet[State]:
        """All states reachable from the initial states (inclusive)."""
        return self.reachable_from(self._initial)

    # ------------------------------------------------------------------
    # Computations
    # ------------------------------------------------------------------

    def computations(
        self,
        start: State,
        max_length: int,
    ) -> Iterator[Tuple[State, ...]]:
        """Enumerate computation prefixes from ``start``.

        Yields every maximal sequence of at most ``max_length`` states:
        a yielded sequence either ends in a terminal state (a genuine
        finite computation) or has exactly ``max_length`` states (a
        prefix of some longer, possibly infinite, computation).

        Args:
            start: the first state of every yielded sequence.
            max_length: inclusive bound on the number of states.

        Raises:
            ValueError: if ``max_length`` is not positive.
        """
        if max_length <= 0:
            raise ValueError("max_length must be positive")
        self._schema.validate(start)
        stack: List[Tuple[Tuple[State, ...], State]] = [((start,), start)]
        while stack:
            prefix, last = stack.pop()
            successors = self._adjacency.get(last)
            if not successors or len(prefix) == max_length:
                yield prefix
                continue
            for successor in sorted(successors, key=repr):
                stack.append((prefix + (successor,), successor))

    def is_computation(self, sequence: Sequence[State], require_maximal: bool = True) -> bool:
        """Check whether ``sequence`` is a computation (prefix) of this system.

        Args:
            sequence: the candidate state sequence (non-empty).
            require_maximal: when true, a finite sequence must end in a
                terminal state, matching the paper's maximality clause;
                when false, any finite path through ``T`` is accepted.
        """
        if not sequence:
            return False
        for state in sequence:
            if not self._schema.is_valid(state):
                return False
        for current, following in zip(sequence, sequence[1:]):
            if not self.has_transition(current, following):
                return False
        if require_maximal and not self.is_terminal(sequence[-1]):
            return False
        return True

    def random_computation(self, start: State, steps: int, rng) -> Tuple[State, ...]:
        """Follow ``steps`` uniformly random transitions from ``start``.

        Stops early at a terminal state.  Used by the simulation
        substrate and property tests.
        """
        self._schema.validate(start)
        sequence = [start]
        current = start
        for _ in range(steps):
            successors = self._adjacency.get(current)
            if not successors:
                break
            current = rng.choice(sorted(successors, key=repr))
            sequence.append(current)
        return tuple(sequence)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"System({self._name!r}, |T|={self.transition_count()}, "
            f"|I|={len(self._initial)}, {self._schema.describe()})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality: same schema, relation, and initial set.

        Display names and labels are ignored — two systems written
        differently but denoting the same automaton compare equal,
        which is exactly what the paper's "the above system is equal to
        Dijkstra's system" claims need.
        """
        if not isinstance(other, System):
            return NotImplemented
        return (
            self._schema.compatible_with(other._schema)
            and self._adjacency == other._adjacency
            and self._initial == other._initial
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._schema,
                frozenset((s, ts) for s, ts in self._adjacency.items()),
                self._initial,
            )
        )


def successors_closure(
    system: System, state: State, max_depth: int
) -> Dict[State, int]:
    """Map every state reachable from ``state`` to its BFS distance.

    Args:
        system: the automaton to explore.
        state: the start state (distance 0).
        max_depth: inclusive depth bound; states farther than this are
            omitted.

    Returns:
        dict mapping reachable state to its minimum distance.
    """
    if max_depth < 0:
        raise ValueError("max_depth must be non-negative")
    system.schema.validate(state)
    distances: Dict[State, int] = {state: 0}
    frontier = [state]
    depth = 0
    while frontier and depth < max_depth:
        depth += 1
        next_frontier: List[State] = []
        for current in frontier:
            for successor in system.successors(current):
                if successor not in distances:
                    distances[successor] = depth
                    next_frontier.append(successor)
        frontier = next_frontier
    return distances
