"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that
callers can catch every library failure with a single ``except``
clause while still being able to distinguish the individual failure
modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "StateSpaceError",
    "SchemaMismatchError",
    "CompositionError",
    "AbstractionError",
    "RefinementError",
    "VerificationError",
    "GCLError",
    "GCLParseError",
    "GCLEvalError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class StateSpaceError(ReproError):
    """A state is not a member of the state space it was used with."""


class SchemaMismatchError(ReproError):
    """Two systems or states with incompatible schemas were combined."""


class CompositionError(ReproError):
    """The box composition ``A [] W`` was applied to incompatible systems."""


class AbstractionError(ReproError):
    """An abstraction function is not total or not onto, or was misapplied."""


class RefinementError(ReproError):
    """A refinement check was invoked on malformed inputs."""


class VerificationError(ReproError):
    """A verification procedure could not be carried out (not a negative verdict)."""


class GCLError(ReproError):
    """Base class for guarded-command-language errors."""


class GCLParseError(GCLError):
    """The GCL parser rejected its input.

    Attributes:
        line: 1-based line of the offending token (``None`` if unknown).
        column: 1-based column of the offending token (``None`` if unknown).
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class GCLEvalError(GCLError):
    """An expression or action could not be evaluated in a given state."""


class SimulationError(ReproError):
    """A simulation run was configured inconsistently."""
