"""Convergence isomorphism between state sequences.

Paper, Section 2::

    A state sequence c is a convergence isomorphism of a state
    sequence a iff c is a subsequence of a with at most a finite
    number of omissions and with the same initial and final (if any)
    state as a.

For explicit (finite) sequences the definition is directly decidable;
that decision procedure lives here together with diagnostics that the
checker package uses to explain failures.  The paper's worked example
is covered by the doctests below:

    >>> is_convergence_isomorphism("s1 s3 s6".split(), "s1 s2 s3 s4 s5 s6".split())
    True
    >>> is_convergence_isomorphism("s1 s3 s5 s6".split(), "s1 s2 s5 s6".split())
    False
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .computation import remove_stutter, subsequence_embedding
from .state import State

__all__ = [
    "IsomorphismVerdict",
    "check_convergence_isomorphism",
    "is_convergence_isomorphism",
]


@dataclass(frozen=True)
class IsomorphismVerdict:
    """Outcome of a convergence-isomorphism check.

    Attributes:
        holds: the overall verdict.
        reason: short human-readable explanation when ``holds`` is
            false; empty string otherwise.
        embedding: the witness embedding (indices into the abstract
            sequence) when ``holds`` is true.
        omissions: number of states the concrete sequence dropped.
    """

    holds: bool
    reason: str = ""
    embedding: Optional[Tuple[int, ...]] = None
    omissions: int = 0

    def __bool__(self) -> bool:
        return self.holds


def check_convergence_isomorphism(
    concrete: Sequence[State],
    abstract: Sequence[State],
    stutter_insensitive: bool = False,
) -> IsomorphismVerdict:
    """Decide whether ``concrete`` is a convergence isomorphism of ``abstract``.

    Args:
        concrete: the candidate sequence ``c`` (from the implementation).
        abstract: the reference sequence ``a`` (from the specification).
        stutter_insensitive: when true, both sequences are first
            normalized by collapsing stuttering steps.  This is the
            comparison appropriate for systems with tau steps such as
            the paper's ``C3``; the paper's definition itself is the
            default (``False``).

    Returns:
        An :class:`IsomorphismVerdict` carrying the witness embedding
        or the reason for failure.  The check enforces all three
        clauses of the definition: subsequence-ness, finitely many
        omissions (trivial for finite inputs but reported), and equal
        endpoints.
    """
    c = tuple(concrete)
    a = tuple(abstract)
    if stutter_insensitive:
        c = remove_stutter(c)
        a = remove_stutter(a)
    if not c or not a:
        return IsomorphismVerdict(False, "sequences must be non-empty")
    if c[0] != a[0]:
        return IsomorphismVerdict(
            False, f"initial states differ: {c[0]!r} vs {a[0]!r}"
        )
    if c[-1] != a[-1]:
        return IsomorphismVerdict(
            False, f"final states differ: {c[-1]!r} vs {a[-1]!r}"
        )
    embedding = subsequence_embedding(c, a)
    if embedding is None:
        return IsomorphismVerdict(
            False,
            "concrete sequence is not a subsequence of the abstract sequence "
            "(it inserts states not present, or reorders them)",
        )
    # Force the endpoints onto the endpoints of ``a``: the definition
    # forbids dropping the initial and final states.  A left-most
    # embedding already pins the first occurrence; re-pin the last.
    if a[embedding[0]] != a[0]:  # pragma: no cover - defensive, c[0]==a[0] holds
        return IsomorphismVerdict(False, "embedding does not start at the initial state")
    embedding[-1] = len(a) - 1
    omissions = len(a) - len(c)
    return IsomorphismVerdict(True, "", tuple(embedding), omissions)


def is_convergence_isomorphism(
    concrete: Sequence[State],
    abstract: Sequence[State],
    stutter_insensitive: bool = False,
) -> bool:
    """Boolean form of :func:`check_convergence_isomorphism`."""
    return check_convergence_isomorphism(concrete, abstract, stutter_insensitive).holds
