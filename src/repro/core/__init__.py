"""The paper's core theory: systems, refinements, stabilization.

This package realizes Section 2 of *Convergence Refinement*
(Demirbas & Arora, ICDCS 2002):

* :mod:`repro.core.state` / :mod:`repro.core.system` — the automaton
  model ``(Sigma, T, I)`` and its computations;
* :mod:`repro.core.isomorphism` — convergence isomorphism between
  state sequences;
* :mod:`repro.core.refinement` — ``[C (= A]_init``, ``[C (= A]``,
  and ``[C <= A]`` (both the literal computation-level oracles and
  the efficient graph procedures);
* :mod:`repro.core.stabilization` — "C is stabilizing to A";
* :mod:`repro.core.composition` — the box operator ``[]``;
* :mod:`repro.core.abstraction` — abstraction functions between
  state spaces (Section 2.3);
* :mod:`repro.core.theorems` — executable instances of Theorems 0-5.

The refinement/stabilization/theorem re-exports are resolved lazily
(PEP 562): those modules pull in :mod:`repro.checker`, which itself
builds on the state/system layer of this package, and lazy resolution
keeps the import graph acyclic regardless of which package a user
imports first.
"""

from .abstraction import AbstractionFunction, identity_abstraction
from .composition import box, box_many
from .computation import (
    common_suffix_start,
    is_subsequence,
    is_suffix,
    omission_count,
    remove_stutter,
    subsequence_embedding,
    suffixes,
)
from .errors import (
    AbstractionError,
    CompositionError,
    GCLError,
    GCLEvalError,
    GCLParseError,
    RefinementError,
    ReproError,
    SchemaMismatchError,
    SimulationError,
    StateSpaceError,
    VerificationError,
)
from .isomorphism import (
    IsomorphismVerdict,
    check_convergence_isomorphism,
    is_convergence_isomorphism,
)
from .state import State, StateSchema, StateSpace
from .system import System, successors_closure

#: Names resolved lazily from submodules that depend on repro.checker.
_LAZY_EXPORTS = {
    "check_convergence_refinement": "refinement",
    "check_everywhere_refinement": "refinement",
    "check_init_refinement": "refinement",
    "compression_transitions": "refinement",
    "convergence_refines_on_computations": "refinement",
    "everywhere_refines_on_computations": "refinement",
    "expand_to_abstract_path": "refinement",
    "refines_init_on_computations": "refinement",
    "StabilizationResult": "stabilization",
    "behavioural_core": "stabilization",
    "check_self_stabilization": "stabilization",
    "check_stabilization": "stabilization",
    "legitimate_abstract_states": "stabilization",
    "sequence_has_legitimate_suffix": "stabilization",
    "stabilizes_on_computations": "stabilization",
    "worst_case_convergence_steps": "stabilization",
    "graybox_instance": "theorems",
    "lemma2_instance": "theorems",
    "lemma4_instance": "theorems",
    "theorem0_instance": "theorems",
    "theorem1_instance": "theorems",
    "theorem3_instance": "theorems",
    "theorem5_instance": "theorems",
}


def __getattr__(name: str):
    """Lazily import the checker-dependent re-exports (PEP 562)."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "AbstractionFunction",
    "identity_abstraction",
    "box",
    "box_many",
    "common_suffix_start",
    "is_subsequence",
    "is_suffix",
    "omission_count",
    "remove_stutter",
    "subsequence_embedding",
    "suffixes",
    "AbstractionError",
    "CompositionError",
    "GCLError",
    "GCLEvalError",
    "GCLParseError",
    "RefinementError",
    "ReproError",
    "SchemaMismatchError",
    "SimulationError",
    "StateSpaceError",
    "VerificationError",
    "IsomorphismVerdict",
    "check_convergence_isomorphism",
    "is_convergence_isomorphism",
    "State",
    "StateSchema",
    "StateSpace",
    "System",
    "successors_closure",
] + sorted(_LAZY_EXPORTS)
