"""The box operator ``[]`` — union of automata (paper, Section 2.2).

The paper "adds" a wrapper ``W`` to a system ``A`` by taking the
union of the two automata, written ``A [] W``.  Both operands must
live over the same state space; the composite's transition relation
is the union of the operands' relations.

Initial states: a wrapper is a system over ``Sigma`` whose job is to
add recovery transitions — it has no initial states of its own (its
``I`` is empty), so the composite inherits ``A``'s initial states.
The operator nevertheless unions the initial sets, which reduces to
exactly that in the wrapper case and keeps ``[]`` commutative and
associative in general.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from .errors import CompositionError
from .state import State
from .system import System, Transition

__all__ = ["box", "box_many"]


def box(left: System, right: System, name: str | None = None) -> System:
    """The union automaton ``left [] right``.

    Args:
        left: typically the base system ``A`` (or ``C``).
        right: typically a wrapper ``W``.
        name: display name of the composite; defaults to
            ``"<left> [] <right>"``.

    Returns:
        A :class:`~repro.core.system.System` whose transition relation
        and initial-state set are the unions of the operands', and
        whose transition labels merge the operands' labels.

    Raises:
        CompositionError: if the operands' schemas differ — ``[]`` is
            only defined over a common state space.  Cross-state-space
            wrapping first refines the wrapper (paper, Theorem 5) and
            then composes.
    """
    if not left.schema.compatible_with(right.schema):
        raise CompositionError(
            f"cannot compose {left.name!r} [] {right.name!r}: "
            "operands use different state spaces"
        )
    transitions: Set[Transition] = set(left.transitions()) | set(right.transitions())
    labels: Dict[Transition, Set[str]] = {}
    for system in (left, right):
        for pair in system.transitions():
            recorded = system.labels_of(*pair)
            if recorded:
                labels.setdefault(pair, set()).update(recorded)
    return System(
        left.schema,
        transitions,
        left.initial | right.initial,
        name=name or f"{left.name} [] {right.name}",
        labels={pair: frozenset(names) for pair, names in labels.items()},
    )


def box_many(systems: Iterable[System], name: str | None = None) -> System:
    """Fold :func:`box` over several systems, left to right.

    Convenient for the paper's three-way composites such as
    ``BTR [] W1 [] W2`` and ``C2 [] W1'' [] W2'``.

    Raises:
        CompositionError: if no system is given or schemas differ.
    """
    iterator = iter(systems)
    try:
        result = next(iterator)
    except StopIteration:
        raise CompositionError("box_many needs at least one system")
    for system in iterator:
        result = box(result, system)
    if name is not None:
        result = result.with_name(name)
    return result
