"""Summary statistics for experiment samples.

Deliberately dependency-light (the standard :mod:`statistics` module
only) so the benchmark harness runs anywhere; numpy/scipy remain
available to users for deeper analysis of the returned samples.
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, List, Sequence

__all__ = ["summarize", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Raises:
        ValueError: on an empty sample or ``q`` outside [0, 100].
    """
    if not samples:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must lie in [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(ordered[low])
    fraction = position - low
    return float(ordered[low] * (1 - fraction) + ordered[high] * fraction)


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Mean / median / p95 / min / max / stdev of a sample.

    Empty samples yield NaNs rather than raising, so sweep code can
    emit a row for an all-diverged cell and keep going.
    """
    if not samples:
        nan = float("nan")
        return {
            "mean": nan,
            "median": nan,
            "p95": nan,
            "min": nan,
            "max": nan,
            "stdev": nan,
            "count": 0,
        }
    values = [float(v) for v in samples]
    return {
        "mean": statistics.fmean(values),
        "median": statistics.median(values),
        "p95": percentile(values, 95.0),
        "min": min(values),
        "max": max(values),
        "stdev": statistics.stdev(values) if len(values) > 1 else 0.0,
        "count": len(values),
    }
