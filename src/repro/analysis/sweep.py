"""Parameter sweeps and ASCII tables.

The paper's artifacts are reproduced as printed tables; this module
renders lists of row-dicts uniformly so every benchmark and example
produces output in the same shape.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Mapping, Sequence

__all__ = ["grid", "run_sweep", "format_table"]


def grid(**axes: Sequence[object]) -> List[Dict[str, object]]:
    """Cartesian product of named parameter axes.

    Example:
        >>> grid(n=[3, 4], k=[2, 3])[0]
        {'n': 3, 'k': 2}
    """
    names = list(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, values)) for values in combos]


def run_sweep(
    points: Iterable[Mapping[str, object]],
    experiment: Callable[..., Mapping[str, object]],
) -> List[Dict[str, object]]:
    """Run ``experiment(**point)`` for every grid point.

    The experiment's returned mapping is merged over the point's
    parameters; parameter keys the experiment also returns win.
    """
    rows: List[Dict[str, object]] = []
    for point in points:
        row: Dict[str, object] = dict(point)
        row.update(experiment(**point))
        rows.append(row)
    return rows


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table.

    Args:
        rows: the data (all mappings; missing keys render empty).
        columns: column order (default: keys of the first row).
        title: optional heading line.

    Returns:
        The table text (empty string for no rows).
    """
    if not rows:
        return ""
    names = list(columns) if columns else list(rows[0])
    rendered = [
        [_format_cell(row.get(name, "")) for name in names] for row in rows
    ]
    widths = [
        max(len(name), *(len(line[i]) for line in rendered))
        for i, name in enumerate(names)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(name.ljust(width) for name, width in zip(names, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in rendered:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)
