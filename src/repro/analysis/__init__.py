"""Sweeps and statistics for the benchmark harness."""

from .stats import percentile, summarize
from .sweep import format_table, grid, run_sweep

__all__ = ["percentile", "summarize", "format_table", "grid", "run_sweep"]
