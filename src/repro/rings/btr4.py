"""The 4-state derivation (paper, Section 4).

``BTR4`` re-expresses BTR with two booleans per process — a colour
``c.j`` and a direction bit ``up.j`` (``up.0 = true`` and
``up.N = false`` are hard-wired, so the bit exists only at interior
processes).  The token flags are *encoded*::

    ut.N  ==  c.N != c.(N-1) && up.(N-1)
    dt.0  ==  c.0  = c.1     && !up.1
    ut.j  ==  c.j != c.(j-1) && up.(j-1) && !up.j       (0 < j < N)
    dt.j  ==  c.j  = c.(j+1) && !up.(j+1) && up.j       (0 < j < N)

Three systems are built here:

* :func:`btr4_program` — the mapped abstract system.  Its actions
  include the *enforcement writes* to neighbour state that keep the
  encoding exactly in step with BTR (legal in the abstract model).
* :func:`c1_program` — the refinement ``C1``: same guards, but the
  neighbour writes are dropped (the concrete model lets a process
  write only its own state) — the paper's "commented-out" clauses.
* :func:`dijkstra_four_state` — Dijkstra's 4-state system, obtained
  from ``C1 [] W1' [] W2'`` by relaxing the guards of the top and
  mid-up actions (the wrappers ``W1'`` and ``W2'`` are *vacuous* in
  the 4-state encoding, which the reproduction checks mechanically:
  no 4-state configuration has zero tokens or co-located tokens).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..gcl.action import GuardedAction
from ..gcl.domain import BoolDomain
from ..gcl.expr import And, Const, Eq, Expr, Ne, Not, Var
from ..gcl.process import Process
from ..gcl.program import Program
from ..gcl.variable import Variable
from .topology import Ring

__all__ = [
    "btr4_variables",
    "up_expr",
    "btr4_program",
    "c1_program",
    "dijkstra_four_state",
    "four_state_initial",
]


def btr4_variables(ring: Ring) -> List[Variable]:
    """Colour bits ``c.0..c.N`` then direction bits ``up.1..up.(N-1)``."""
    variables = [Variable(Ring.c(j), BoolDomain()) for j in ring.processes()]
    variables.extend(Variable(Ring.up(j), BoolDomain()) for j in ring.middles())
    return variables


def up_expr(ring: Ring, j: int) -> Expr:
    """The direction bit at ``j`` as an expression, honouring the
    hard-wired ``up.0 = true`` and ``up.N = false``."""
    if j == 0:
        return Const(True)
    if j == ring.top:
        return Const(False)
    return Var(Ring.up(j))


def _guards(ring: Ring) -> Dict[str, Expr]:
    """The four guard families shared by BTR4 and C1."""
    top = ring.top
    guards: Dict[str, Expr] = {
        "top": And(
            Ne(Var(Ring.c(top)), Var(Ring.c(top - 1))), up_expr(ring, top - 1)
        ),
        "bottom": And(
            Eq(Var(Ring.c(0)), Var(Ring.c(1))), Not(up_expr(ring, 1))
        ),
    }
    for j in ring.middles():
        guards[f"up.{j}"] = And(
            And(Ne(Var(Ring.c(j)), Var(Ring.c(j - 1))), up_expr(ring, j - 1)),
            Not(up_expr(ring, j)),
        )
        guards[f"down.{j}"] = And(
            And(Eq(Var(Ring.c(j)), Var(Ring.c(j + 1))), Not(up_expr(ring, j + 1))),
            up_expr(ring, j),
        )
    return guards


def _four_state_processes(
    ring: Ring, actions: List[GuardedAction]
) -> List[Process]:
    """Attach actions to processes; ownership is the process's own bits."""
    top = ring.top
    owns: Dict[int, List[str]] = {j: [Ring.c(j)] for j in ring.processes()}
    for j in ring.middles():
        owns[j].append(Ring.up(j))
    by_name = {action.name: action for action in actions}
    processes: List[Process] = []
    for j in ring.processes():
        mine: List[GuardedAction] = []
        if j == top and "top" in by_name:
            mine.append(by_name["top"])
        if j == 0 and "bottom" in by_name:
            mine.append(by_name["bottom"])
        if 0 < j < top:
            for key in (f"up.{j}", f"down.{j}"):
                if key in by_name:
                    mine.append(by_name[key])
        reads: List[str] = []
        for neighbour in (j - 1, j + 1):
            if 0 <= neighbour <= top:
                reads.extend(owns[neighbour])
        processes.append(Process(f"p{j}", owns[j], reads, mine))
    return processes


def four_state_initial(ring: Ring) -> List[Mapping[str, object]]:
    """Canonical initial states: uniform colours, all direction bits down.

    Both uniform colourings encode the single token ``dt.0`` (the
    bottom process is about to flip), matching BTR's unique-token
    initial condition through the abstraction.
    """
    states: List[Mapping[str, object]] = []
    for colour in (False, True):
        assignment: Dict[str, object] = {
            Ring.c(j): colour for j in ring.processes()
        }
        for j in ring.middles():
            assignment[Ring.up(j)] = False
        states.append(assignment)
    return states


def btr4_program(n_processes: int) -> Program:
    """``BTR4``: the mapped abstract system, *with* neighbour writes.

    Each action performs the encoded token hand-off **and** enforces
    the receiving side of the encoding on the neighbour (the clauses
    C1 later comments out).  Right-hand sides are evaluated in the
    pre-state (parallel assignment), exactly as in the paper's
    guarded-command semantics.
    """
    ring = Ring(n_processes)
    top = ring.top
    guards = _guards(ring)
    actions: List[GuardedAction] = []

    effects_top: Dict[str, Expr] = {Ring.c(top): Var(Ring.c(top - 1))}
    if top - 1 >= 1:
        effects_top[Ring.up(top - 1)] = Const(True)
    actions.append(GuardedAction("top", guards["top"], effects_top))

    effects_bottom: Dict[str, Expr] = {Ring.c(0): Not(Var(Ring.c(0)))}
    if 1 <= top - 1:
        effects_bottom[Ring.up(1)] = Const(False)
    actions.append(GuardedAction("bottom", guards["bottom"], effects_bottom))

    for j in ring.middles():
        # Token moves up from j to j+1: write own state, and enforce
        # ut.(j+1)'s encoding on the neighbour above.
        effects_up: Dict[str, Expr] = {
            Ring.c(j): Var(Ring.c(j - 1)),
            Ring.up(j): Const(True),
            Ring.c(j + 1): Not(Var(Ring.c(j - 1))),
        }
        if j + 1 <= top - 1:
            effects_up[Ring.up(j + 1)] = Const(False)
        actions.append(GuardedAction(f"up.{j}", guards[f"up.{j}"], effects_up))

        # Token moves down from j to j-1: clear own bit, and enforce
        # dt.(j-1)'s encoding on the neighbour below.
        effects_down: Dict[str, Expr] = {
            Ring.up(j): Const(False),
            Ring.c(j - 1): Var(Ring.c(j)),
        }
        if j - 1 >= 1:
            effects_down[Ring.up(j - 1)] = Const(True)
        actions.append(GuardedAction(f"down.{j}", guards[f"down.{j}"], effects_down))

    return Program(
        "BTR4",
        btr4_variables(ring),
        actions,
        init=four_state_initial(ring),
    )


def c1_program(n_processes: int) -> Program:
    """``C1``: the concrete-model refinement of ``BTR4``.

    Identical guards; every write to a neighbour's state is dropped —
    the paper's ``//`` comments.  Complies with the concrete model
    (verified by :func:`repro.gcl.process.check_model_compliance`).
    """
    ring = Ring(n_processes)
    top = ring.top
    guards = _guards(ring)
    actions: List[GuardedAction] = [
        GuardedAction("top", guards["top"], {Ring.c(top): Var(Ring.c(top - 1))}),
        GuardedAction("bottom", guards["bottom"], {Ring.c(0): Not(Var(Ring.c(0)))}),
    ]
    for j in ring.middles():
        actions.append(
            GuardedAction(
                f"up.{j}",
                guards[f"up.{j}"],
                {Ring.c(j): Var(Ring.c(j - 1)), Ring.up(j): Const(True)},
            )
        )
        actions.append(
            GuardedAction(
                f"down.{j}", guards[f"down.{j}"], {Ring.up(j): Const(False)}
            )
        )
    return Program(
        "C1",
        btr4_variables(ring),
        actions,
        init=four_state_initial(ring),
        processes=_four_state_processes(ring, actions),
    )


def dijkstra_four_state(n_processes: int) -> Program:
    """Dijkstra's 4-state stabilizing token ring (paper, end of Section 4).

    ``C1 [] W1' [] W2'`` with the guards of the top and mid-up actions
    relaxed (the dropped conjuncts are implied in legitimate states and
    harmless elsewhere)::

        c.(N-1) != c.N                      --> c.N := c.(N-1)
        c.1 = c.0 && !up.1                  --> c.0 := !c.0
        c.(j-1) != c.j                      --> c.j := c.(j-1); up.j := true
        c.(j+1) = c.j && !up.(j+1) && up.j  --> up.j := false
    """
    ring = Ring(n_processes)
    top = ring.top
    actions: List[GuardedAction] = [
        GuardedAction(
            "top",
            Ne(Var(Ring.c(top - 1)), Var(Ring.c(top))),
            {Ring.c(top): Var(Ring.c(top - 1))},
        ),
        GuardedAction(
            "bottom",
            And(Eq(Var(Ring.c(1)), Var(Ring.c(0))), Not(up_expr(ring, 1))),
            {Ring.c(0): Not(Var(Ring.c(0)))},
        ),
    ]
    for j in ring.middles():
        actions.append(
            GuardedAction(
                f"up.{j}",
                Ne(Var(Ring.c(j - 1)), Var(Ring.c(j))),
                {Ring.c(j): Var(Ring.c(j - 1)), Ring.up(j): Const(True)},
            )
        )
        actions.append(
            GuardedAction(
                f"down.{j}",
                And(
                    And(Eq(Var(Ring.c(j + 1)), Var(Ring.c(j))), Not(up_expr(ring, j + 1))),
                    up_expr(ring, j),
                ),
                {Ring.up(j): Const(False)},
            )
        )
    return Program(
        "Dijkstra4",
        btr4_variables(ring),
        actions,
        init=four_state_initial(ring),
        processes=_four_state_processes(ring, actions),
    )
