"""The abstract bidirectional token ring ``BTR`` (paper, Section 3.1).

State: boolean token flags ``ut.j`` ("process j received the token
from j-1", defined for ``j >= 1``) and ``dt.j`` ("... from j+1",
defined for ``j <= N-1``).  Actions, verbatim from the paper::

    ut.N --> ut.N := false; dt.(N-1) := true          (top)
    dt.0 --> dt.0 := false; ut.1 := true              (bottom)
    ut.j --> ut.j := false; ut.(j+1) := true          (0 < j < N)
    dt.j --> dt.j := false; dt.(j-1) := true          (0 < j < N)

The *abstract* system model applies: a process may read and write its
neighbours' state in one atomic step — the top and bottom actions and
the token moves all write the receiving neighbour's flag.  Initially
there is a unique token (any placement).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..gcl.action import GuardedAction
from ..gcl.domain import BoolDomain
from ..gcl.expr import Const, Var
from ..gcl.process import Process
from ..gcl.program import Program
from ..gcl.variable import Variable
from .tokens import token_flags
from .topology import Ring

__all__ = ["btr_variables", "btr_actions", "btr_processes", "btr_program"]


def btr_variables(ring: Ring) -> List[Variable]:
    """The token-flag variables of BTR, in canonical ring order."""
    return [Variable(name, BoolDomain()) for name in token_flags(ring)]


def btr_actions(ring: Ring) -> List[GuardedAction]:
    """The four action families of BTR, instantiated for ``ring``."""
    top = ring.top
    actions: List[GuardedAction] = [
        GuardedAction(
            "top",
            Var(Ring.ut(top)),
            {Ring.ut(top): Const(False), Ring.dt(top - 1): Const(True)},
        ),
        GuardedAction(
            "bottom",
            Var(Ring.dt(0)),
            {Ring.dt(0): Const(False), Ring.ut(1): Const(True)},
        ),
    ]
    for j in ring.middles():
        actions.append(
            GuardedAction(
                f"up.{j}",
                Var(Ring.ut(j)),
                {Ring.ut(j): Const(False), Ring.ut(j + 1): Const(True)},
            )
        )
        actions.append(
            GuardedAction(
                f"down.{j}",
                Var(Ring.dt(j)),
                {Ring.dt(j): Const(False), Ring.dt(j - 1): Const(True)},
            )
        )
    return actions


def btr_processes(ring: Ring) -> List[Process]:
    """Process structure of BTR, for model-compliance checks.

    Process ``j`` owns its own token flags; its actions also write the
    *receiving* neighbour's flag — legal in the abstract model, a
    violation in the concrete model (which the reproduction checks
    mechanically).
    """
    top = ring.top
    owns: Dict[int, List[str]] = {j: [] for j in ring.processes()}
    for j in ring.up_token_indices():
        owns[j].append(Ring.ut(j))
    for j in ring.down_token_indices():
        owns[j].append(Ring.dt(j))

    def neighbourhood(j: int) -> List[str]:
        names: List[str] = []
        for neighbour in (j - 1, j + 1):
            if 0 <= neighbour <= top:
                names.extend(owns[neighbour])
        return names

    actions = {action.name: action for action in btr_actions(ring)}
    processes: List[Process] = []
    for j in ring.processes():
        mine: List[GuardedAction] = []
        if j == top:
            mine.append(actions["top"])
        if j == 0:
            mine.append(actions["bottom"])
        if 0 < j < top:
            mine.append(actions[f"up.{j}"])
            mine.append(actions[f"down.{j}"])
        processes.append(Process(f"p{j}", owns[j], neighbourhood(j), mine))
    return processes


def btr_program(n_processes: int) -> Program:
    """The abstract BTR over ``n_processes`` processes.

    Initial states: every single-token placement (the paper's "unique
    token in the system", invariant ``I1 && I2 && I3``).
    """
    ring = Ring(n_processes)
    flags = token_flags(ring)
    initial = [
        {name: (name == placed) for name in flags} for placed in flags
    ]
    return Program(
        "BTR",
        btr_variables(ring),
        btr_actions(ring),
        init=initial,
        processes=btr_processes(ring),
    )
