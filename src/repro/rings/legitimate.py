"""The BTR invariant ``I = I1 && I2 && I3 && I4`` (paper, Section 3.1).

``I1`` — some token exists; ``I2``/``I3`` — at most one process holds
a token and holds only one; together: exactly one token.  ``I4`` (the
token alternates direction each round) is a *history* property, not a
state predicate — the paper notes it follows from BTR once
``I1 && I2 && I3`` is established, and the reproduction confirms this
behaviourally: the legitimate reachable behaviour of BTR is exactly
token circulation, bounce, circulation (see the integration tests).
"""

from __future__ import annotations

from typing import FrozenSet

from ..core.state import State, StateSchema
from .tokens import count_tokens
from .topology import Ring

__all__ = ["i1_holds", "i2_i3_hold", "exactly_one_token", "legitimate_btr_states"]


def i1_holds(schema: StateSchema, state: State) -> bool:
    """``I1``: there exists a token in the system."""
    return count_tokens(schema, state) >= 1


def i2_i3_hold(schema: StateSchema, state: State) -> bool:
    """``I2 && I3``: at most one token flag is raised anywhere.

    ``I2`` forbids tokens at two distinct processes, ``I3`` forbids a
    process from holding both an up- and a down-token; jointly they say
    at most one flag is true, which is how they are checked here.
    """
    return count_tokens(schema, state) <= 1


def exactly_one_token(schema: StateSchema, state: State) -> bool:
    """``I1 && I2 && I3``: there is a unique token."""
    return count_tokens(schema, state) == 1


def legitimate_btr_states(ring: Ring, schema: StateSchema) -> FrozenSet[State]:
    """All abstract states satisfying ``I1 && I2 && I3``.

    For the abstract BTR these coincide with the states reachable from
    the single-token initial set (verified mechanically in the test
    suite), so the predicate form and the reachability form of
    "legitimate" agree.
    """
    return frozenset(
        state for state in schema.states() if exactly_one_token(schema, state)
    )
