"""The 3-state derivation (paper, Section 5).

``BTR3`` re-expresses BTR with one counter ``c.j`` over ``{0,1,2}``
per process; with circled-plus denoting addition mod 3 the token
flags are encoded as::

    ut.N  =  c.(N-1) = c.N (+) 1
    dt.0  =  c.1     = c.0 (+) 1
    ut.j  =  c.(j-1) = c.j (+) 1
    dt.j  =  c.(j+1) = c.j (+) 1

Systems built here:

* :func:`btr3_program` — the mapped abstract system.  The top and
  bottom actions translate to single own-state writes; the interior
  moves additionally *enforce* the receiving side of the encoding on
  the far neighbour (``c.(j+1) := c.j`` for the up-move, ``c.(j-1) :=
  c.j`` for the down-move, right-hand sides in the pre-state), which
  the concrete model forbids.
* :func:`c2_program` — ``C2``: the interior enforcement writes
  dropped (the paper's commented clauses).
* :func:`w1_global_program` (``W1'``), :func:`w1_local_program`
  (``W1''``), :func:`w2_refined_program` (``W2'``) — the refined
  wrappers.  ``W1''`` approximates the global guard of ``W1'`` with
  the local test ``c.(N-1) = c.0`` and is *not* an everywhere
  refinement of ``W1'`` (the reproduction demonstrates this
  mechanically); the paper argues non-interference instead (Lemma 9).
* :func:`dijkstra_three_state` — Dijkstra's 3-state system, the
  paper's optimized rendering of ``C2 [] W1'' [] W2'``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ..gcl.action import GuardedAction
from ..gcl.domain import ModularDomain
from ..gcl.expr import AddMod, And, BigAnd, Const, Eq, Expr, Ne, Var
from ..gcl.process import Process
from ..gcl.program import Program
from ..gcl.variable import Variable
from .topology import Ring

__all__ = [
    "btr3_variables",
    "three_state_initial",
    "btr3_program",
    "c2_program",
    "w1_global_program",
    "w1_local_program",
    "w2_refined_program",
    "dijkstra_three_state",
    "dijkstra_three_state_modk",
    "three_state_processes",
]


def btr3_variables(ring: Ring) -> List[Variable]:
    """One mod-3 counter per process."""
    return [Variable(Ring.c(j), ModularDomain(3)) for j in ring.processes()]


def _plus_one(j: int) -> Expr:
    """``c.j (+) 1``."""
    return AddMod(Var(Ring.c(j)), Const(1), 3)


def three_state_initial(ring: Ring) -> List[Mapping[str, object]]:
    """Canonical initial states: the three rotations of ``(v, v+1, ..., v+1)``.

    ``c.0 = v`` and ``c.j = v (+) 1`` elsewhere encodes the single
    token ``dt.0``; all three choices of ``v`` are included so the
    initial set is closed under the encoding's value symmetry.
    """
    states: List[Mapping[str, object]] = []
    for v in range(3):
        assignment: Dict[str, object] = {Ring.c(0): v}
        for j in range(1, ring.n_processes):
            assignment[Ring.c(j)] = (v + 1) % 3
        states.append(assignment)
    return states


def three_state_processes(ring: Ring, actions: List[GuardedAction]) -> List[Process]:
    """Attach 3-state actions to ring processes (ownership: own counter)."""
    top = ring.top
    by_name = {action.name: action for action in actions}
    processes: List[Process] = []
    for j in ring.processes():
        mine: List[GuardedAction] = []
        for key in ("top", "w1.local") if j == top else ():
            if key in by_name:
                mine.append(by_name[key])
        if j == 0 and "bottom" in by_name:
            mine.append(by_name["bottom"])
        if 0 < j < top:
            for key in (f"up.{j}", f"down.{j}", f"w2.cancel.{j}"):
                if key in by_name:
                    mine.append(by_name[key])
        reads = [
            Ring.c(neighbour)
            for neighbour in (j - 1, j + 1)
            if 0 <= neighbour <= top
        ]
        if j == top and ("w1.local" in by_name or "top" in by_name):
            # Dijkstra's top process also reads the bottom's counter.
            reads.append(Ring.c(0))
        processes.append(Process(f"p{j}", [Ring.c(j)], reads, mine))
    return processes


def btr3_program(n_processes: int) -> Program:
    """``BTR3``: the mapped abstract system, with far-neighbour enforcement."""
    ring = Ring(n_processes)
    top = ring.top
    actions: List[GuardedAction] = [
        GuardedAction(
            "top",
            Eq(Var(Ring.c(top - 1)), _plus_one(top)),
            {Ring.c(top): AddMod(Var(Ring.c(top - 1)), Const(1), 3)},
        ),
        GuardedAction(
            "bottom",
            Eq(Var(Ring.c(1)), _plus_one(0)),
            {Ring.c(0): AddMod(Var(Ring.c(1)), Const(1), 3)},
        ),
    ]
    for j in ring.middles():
        actions.append(
            GuardedAction(
                f"up.{j}",
                Eq(Var(Ring.c(j - 1)), _plus_one(j)),
                {Ring.c(j): Var(Ring.c(j - 1)), Ring.c(j + 1): Var(Ring.c(j))},
            )
        )
        actions.append(
            GuardedAction(
                f"down.{j}",
                Eq(Var(Ring.c(j + 1)), _plus_one(j)),
                {Ring.c(j): Var(Ring.c(j + 1)), Ring.c(j - 1): Var(Ring.c(j))},
            )
        )
    return Program(
        "BTR3",
        btr3_variables(ring),
        actions,
        init=three_state_initial(ring),
    )


def c2_program(n_processes: int) -> Program:
    """``C2``: BTR3 with the far-neighbour writes commented out."""
    ring = Ring(n_processes)
    top = ring.top
    actions: List[GuardedAction] = [
        GuardedAction(
            "top",
            Eq(Var(Ring.c(top - 1)), _plus_one(top)),
            {Ring.c(top): AddMod(Var(Ring.c(top - 1)), Const(1), 3)},
        ),
        GuardedAction(
            "bottom",
            Eq(Var(Ring.c(1)), _plus_one(0)),
            {Ring.c(0): AddMod(Var(Ring.c(1)), Const(1), 3)},
        ),
    ]
    for j in ring.middles():
        actions.append(
            GuardedAction(
                f"up.{j}",
                Eq(Var(Ring.c(j - 1)), _plus_one(j)),
                {Ring.c(j): Var(Ring.c(j - 1))},
            )
        )
        actions.append(
            GuardedAction(
                f"down.{j}",
                Eq(Var(Ring.c(j + 1)), _plus_one(j)),
                {Ring.c(j): Var(Ring.c(j + 1))},
            )
        )
    program = Program(
        "C2",
        btr3_variables(ring),
        actions,
        init=three_state_initial(ring),
    )
    return Program(
        "C2",
        program.variables,
        actions,
        init=three_state_initial(ring),
        processes=three_state_processes(ring, actions),
    )


def w1_global_program(n_processes: int) -> Program:
    """``W1'``: the mapped token-creation wrapper, still global.

    Guard: all counters below the top agree *and* the top holds no
    token; action: re-point the top's counter so ``ut.N`` appears.
    """
    ring = Ring(n_processes)
    top = ring.top
    conjuncts: List[Expr] = [
        Eq(Var(Ring.c(j)), Var(Ring.c(0))) for j in range(1, top)
    ]
    conjuncts.append(Ne(Var(Ring.c(top)), AddMod(Var(Ring.c(top - 1)), Const(1), 3)))
    # The paper's guard reads c.N != c.(N-1) (+) 1 -- "ut.N is absent"
    # is c.(N-1) != c.N (+) 1; both conjuncts are needed for the wrapper
    # to be disabled in every single-token state, and the second is the
    # one the paper writes.
    action = GuardedAction(
        "w1.global",
        BigAnd(*conjuncts),
        {Ring.c(top): AddMod(Var(Ring.c(top - 1)), Const(1), 3)},
    )
    return Program("W1'", btr3_variables(ring), [action], init=None)


def w1_local_program(n_processes: int) -> Program:
    """``W1''``: the local approximation of ``W1'`` at the top process.

    Guard ``c.(N-1) = c.0 && c.N != c.(N-1) (+) 1``; the top process
    reads only its two neighbours on the (wrapped) ring — the bottom's
    counter stands in for the global all-equal test.
    """
    ring = Ring(n_processes)
    top = ring.top
    action = GuardedAction(
        "w1.local",
        And(
            Eq(Var(Ring.c(top - 1)), Var(Ring.c(0))),
            Ne(Var(Ring.c(top)), AddMod(Var(Ring.c(top - 1)), Const(1), 3)),
        ),
        {Ring.c(top): AddMod(Var(Ring.c(top - 1)), Const(1), 3)},
    )
    return Program("W1''", btr3_variables(ring), [action], init=None)


def w2_refined_program(n_processes: int) -> Program:
    """``W2'``: cancellation of co-located opposite tokens, in counters.

    ``c.(j-1) = c.j (+) 1 && c.(j+1) = c.j (+) 1 --> c.j := c.(j-1)``
    deletes both tokens at ``j`` (single own-state write — already
    concrete-model compliant).
    """
    ring = Ring(n_processes)
    actions: List[GuardedAction] = []
    for j in ring.middles():
        actions.append(
            GuardedAction(
                f"w2.cancel.{j}",
                And(
                    Eq(Var(Ring.c(j - 1)), _plus_one(j)),
                    Eq(Var(Ring.c(j + 1)), _plus_one(j)),
                ),
                {Ring.c(j): Var(Ring.c(j - 1))},
            )
        )
    return Program("W2'", btr3_variables(ring), actions, init=None)


def dijkstra_three_state(n_processes: int) -> Program:
    """Dijkstra's 3-state stabilizing token ring (paper, end of Section 5).

    The optimized rendering of ``C2 [] W1'' [] W2'``::

        c.(N-1) = c.0 && c.(N-1) (+) 1 != c.N --> c.N := c.(N-1) (+) 1
        c.1 = c.0 (+) 1                       --> c.0 := c.1 (+) 1
        c.(j-1) = c.j (+) 1                   --> c.j := c.(j-1)
        c.(j+1) = c.j (+) 1                   --> c.j := c.(j+1)
    """
    ring = Ring(n_processes)
    top = ring.top
    actions: List[GuardedAction] = [
        GuardedAction(
            "top",
            And(
                Eq(Var(Ring.c(top - 1)), Var(Ring.c(0))),
                Ne(AddMod(Var(Ring.c(top - 1)), Const(1), 3), Var(Ring.c(top))),
            ),
            {Ring.c(top): AddMod(Var(Ring.c(top - 1)), Const(1), 3)},
        ),
        GuardedAction(
            "bottom",
            Eq(Var(Ring.c(1)), _plus_one(0)),
            {Ring.c(0): AddMod(Var(Ring.c(1)), Const(1), 3)},
        ),
    ]
    for j in ring.middles():
        actions.append(
            GuardedAction(
                f"up.{j}",
                Eq(Var(Ring.c(j - 1)), _plus_one(j)),
                {Ring.c(j): Var(Ring.c(j - 1))},
            )
        )
        actions.append(
            GuardedAction(
                f"down.{j}",
                Eq(Var(Ring.c(j + 1)), _plus_one(j)),
                {Ring.c(j): Var(Ring.c(j + 1))},
            )
        )
    return Program(
        "Dijkstra3",
        btr3_variables(ring),
        actions,
        init=three_state_initial(ring),
        processes=three_state_processes(ring, actions),
    )


def dijkstra_three_state_modk(n_processes: int, k: int) -> Program:
    """The Dijkstra-3 *action schema* with counters mod ``k``.

    An ablation probe, not a protocol from the paper: the Section 6
    rewriting to Dijkstra's system leans on a case analysis that only
    closes for ``Z_3``.  The reproduction confirms mechanically that
    ``k = 3`` is the unique modulus at which this schema stabilizes —
    ``k = 2`` breaks closure of the legitimate behaviour and ``k >= 4``
    introduces illegitimate deadlocks (see ``bench_ablations.py``).

    Raises:
        ValueError: for ``k < 2``.
    """
    if k < 2:
        raise ValueError("counters need at least two values")
    ring = Ring(n_processes)
    top = ring.top

    def plus_one(j: int) -> Expr:
        return AddMod(Var(Ring.c(j)), Const(1), k)

    variables = [Variable(Ring.c(j), ModularDomain(k)) for j in ring.processes()]
    actions: List[GuardedAction] = [
        GuardedAction(
            "top",
            And(
                Eq(Var(Ring.c(top - 1)), Var(Ring.c(0))),
                Ne(AddMod(Var(Ring.c(top - 1)), Const(1), k), Var(Ring.c(top))),
            ),
            {Ring.c(top): AddMod(Var(Ring.c(top - 1)), Const(1), k)},
        ),
        GuardedAction(
            "bottom",
            Eq(Var(Ring.c(1)), plus_one(0)),
            {Ring.c(0): AddMod(Var(Ring.c(1)), Const(1), k)},
        ),
    ]
    for j in ring.middles():
        actions.append(
            GuardedAction(
                f"up.{j}", Eq(Var(Ring.c(j - 1)), plus_one(j)),
                {Ring.c(j): Var(Ring.c(j - 1))},
            )
        )
        actions.append(
            GuardedAction(
                f"down.{j}", Eq(Var(Ring.c(j + 1)), plus_one(j)),
                {Ring.c(j): Var(Ring.c(j + 1))},
            )
        )
    init = [
        {Ring.c(0): v, **{Ring.c(j): (v + 1) % k for j in range(1, n_processes)}}
        for v in range(k)
    ]
    return Program(f"D3-mod{k}", variables, actions, init=init)
