"""Token calculus over abstract BTR states.

The abstract bidirectional token ring's state is a truth assignment to
the token flags ``ut.j`` / ``dt.j``.  This module reads and writes
token patterns, counts tokens, and builds the token-pattern states the
invariants and the simulation metrics need.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..core.state import State, StateSchema
from .topology import Ring

__all__ = [
    "token_flags",
    "tokens_in_state",
    "count_tokens",
    "state_with_tokens",
    "all_single_token_states",
]


def token_flags(ring: Ring) -> Tuple[str, ...]:
    """The token flag names of the abstract BTR over ``ring``."""
    return tuple(ring.token_variable_names())


def tokens_in_state(schema: StateSchema, state: State) -> Tuple[str, ...]:
    """Names of the token flags that are true in ``state``.

    Works for any schema that contains (a superset of) boolean token
    flags named ``ut.*`` / ``dt.*``; other variables are ignored, so
    the same helper serves the wrapped and composed systems.
    """
    names: List[str] = []
    for name in schema.names:
        if name.startswith(("ut.", "dt.")) and schema.value(state, name):
            names.append(name)
    return tuple(names)


def count_tokens(schema: StateSchema, state: State) -> int:
    """Number of tokens present in ``state``."""
    return len(tokens_in_state(schema, state))


def state_with_tokens(schema: StateSchema, present: Iterable[str]) -> State:
    """The BTR state in which exactly the given token flags are true.

    Args:
        schema: the abstract BTR schema.
        present: names of the flags to set (must exist in the schema).

    Raises:
        StateSpaceError: if a name is unknown to the schema.
    """
    present_set = set(present)
    assignment: Dict[str, object] = {
        name: (name in present_set) for name in schema.names
    }
    return schema.pack(assignment)


def all_single_token_states(ring: Ring, schema: StateSchema) -> Tuple[State, ...]:
    """Every abstract state with exactly one token — BTR's initial set.

    The paper starts BTR with "a unique token in the system"; all
    single-token placements are legitimate starting points (invariant
    ``I1 && I2 && I3``).
    """
    return tuple(
        state_with_tokens(schema, (flag,)) for flag in token_flags(ring)
    )
