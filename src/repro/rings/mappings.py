"""Abstraction functions from the encoded rings onto BTR/UTR token space.

Section 2.3 of the paper relates different state spaces through a
total abstraction function; Sections 4-6 instantiate it with the
4-state and 3-state encodings.  The functions here compute, for every
concrete configuration, the truth value of each token flag, producing
the abstract BTR (or UTR) state.

None of these mappings is *onto* the full abstract space — e.g. no
4-state configuration encodes zero tokens or co-located opposite
tokens (that is exactly why the refined wrappers ``W1'``/``W2'`` are
vacuous), and no 3-state configuration encodes zero tokens.  The
checks in this library never rely on surjectivity;
:meth:`~repro.core.abstraction.AbstractionFunction.missed_abstract_states`
reports the uncovered region, and EXPERIMENTS.md discusses how the
paper's blanket "onto" requirement is to be read per instance.
"""

from __future__ import annotations

from typing import Dict

from ..core.abstraction import AbstractionFunction
from ..core.state import State, StateSchema
from .btr import btr_program
from .btr3 import btr3_variables
from .btr4 import btr4_variables
from .kstate import kstate_variables, utr_program
from .topology import Ring

__all__ = [
    "btr4_abstraction",
    "btr3_abstraction",
    "btrk_abstraction",
    "utr_abstraction",
]


def _btr_schema(n_processes: int) -> StateSchema:
    """The abstract BTR schema for a ring of ``n_processes``."""
    return btr_program(n_processes).schema()


def btr4_abstraction(n_processes: int) -> AbstractionFunction:
    """The Section 4 mapping from 4-state configurations to BTR states.

    Token flags are decoded with ``up.0 = true`` and ``up.N = false``
    hard-wired::

        ut.N  =  c.N != c.(N-1) && up.(N-1)
        dt.0  =  c.0  = c.1     && !up.1
        ut.j  =  c.j != c.(j-1) && up.(j-1) && !up.j
        dt.j  =  c.j  = c.(j+1) && !up.(j+1) && up.j
    """
    ring = Ring(n_processes)
    top = ring.top
    concrete_schema = StateSchema(
        {v.name: v.domain.values for v in btr4_variables(ring)}
    )
    abstract_schema = _btr_schema(n_processes)

    def up_of(env: Dict[str, object], j: int) -> bool:
        if j == 0:
            return True
        if j == top:
            return False
        return bool(env[Ring.up(j)])

    def mapping(state: State) -> State:
        env = concrete_schema.unpack(state)
        c = {j: env[Ring.c(j)] for j in ring.processes()}
        image: Dict[str, object] = {}
        image[Ring.ut(top)] = c[top] != c[top - 1] and up_of(env, top - 1)
        image[Ring.dt(0)] = c[0] == c[1] and not up_of(env, 1)
        for j in ring.middles():
            image[Ring.ut(j)] = (
                c[j] != c[j - 1] and up_of(env, j - 1) and not up_of(env, j)
            )
            image[Ring.dt(j)] = (
                c[j] == c[j + 1] and not up_of(env, j + 1) and up_of(env, j)
            )
        return abstract_schema.pack(image)

    def array_mapping(columns: Dict[str, object]) -> Dict[str, object]:
        # Lazy import: only the vector engine calls the batch form, and
        # it only exists when NumPy does.
        import numpy as np

        c = {j: columns[Ring.c(j)] for j in ring.processes()}
        true = np.ones(np.shape(c[0]), dtype=bool)

        def up(j: int) -> object:
            if j == 0:
                return true
            if j == top:
                return ~true
            return columns[Ring.up(j)]

        image: Dict[str, object] = {}
        image[Ring.ut(top)] = (c[top] != c[top - 1]) & up(top - 1)
        image[Ring.dt(0)] = (c[0] == c[1]) & ~up(1)
        for j in ring.middles():
            image[Ring.ut(j)] = (c[j] != c[j - 1]) & up(j - 1) & ~up(j)
            image[Ring.dt(j)] = (c[j] == c[j + 1]) & ~up(j + 1) & up(j)
        return image

    return AbstractionFunction(
        concrete_schema, abstract_schema, mapping, name="alpha4",
        array_mapping=array_mapping,
    )


def btr3_abstraction(n_processes: int) -> AbstractionFunction:
    """The Section 5 mapping from 3-state counters to BTR states.

    With circled-plus denoting addition mod 3::

        ut.N  =  c.(N-1) = c.N (+) 1
        dt.0  =  c.1     = c.0 (+) 1
        ut.j  =  c.(j-1) = c.j (+) 1
        dt.j  =  c.(j+1) = c.j (+) 1
    """
    ring = Ring(n_processes)
    top = ring.top
    concrete_schema = StateSchema(
        {v.name: v.domain.values for v in btr3_variables(ring)}
    )
    abstract_schema = _btr_schema(n_processes)

    def mapping(state: State) -> State:
        env = concrete_schema.unpack(state)
        c = {j: int(env[Ring.c(j)]) for j in ring.processes()}
        image: Dict[str, object] = {}
        image[Ring.ut(top)] = c[top - 1] == (c[top] + 1) % 3
        image[Ring.dt(0)] = c[1] == (c[0] + 1) % 3
        for j in ring.middles():
            image[Ring.ut(j)] = c[j - 1] == (c[j] + 1) % 3
            image[Ring.dt(j)] = c[j + 1] == (c[j] + 1) % 3
        return abstract_schema.pack(image)

    def array_mapping(columns: Dict[str, object]) -> Dict[str, object]:
        c = {j: columns[Ring.c(j)] for j in ring.processes()}
        image: Dict[str, object] = {}
        image[Ring.ut(top)] = c[top - 1] == (c[top] + 1) % 3
        image[Ring.dt(0)] = c[1] == (c[0] + 1) % 3
        for j in ring.middles():
            image[Ring.ut(j)] = c[j - 1] == (c[j] + 1) % 3
            image[Ring.dt(j)] = c[j + 1] == (c[j] + 1) % 3
        return image

    return AbstractionFunction(
        concrete_schema, abstract_schema, mapping, name="alpha3",
        array_mapping=array_mapping,
    )


def btrk_abstraction(n_processes: int, k: int) -> AbstractionFunction:
    """The Section 5 token decoding generalized to mod-``k`` counters.

    Used by the mod-``k`` ablation of the 3-state schema;
    ``btrk_abstraction(n, 3)`` coincides with
    :func:`btr3_abstraction` up to the counter domain object.
    """
    ring = Ring(n_processes)
    top = ring.top
    concrete_schema = StateSchema(
        {Ring.c(j): tuple(range(k)) for j in ring.processes()}
    )
    abstract_schema = _btr_schema(n_processes)

    def mapping(state: State) -> State:
        env = concrete_schema.unpack(state)
        c = {j: int(env[Ring.c(j)]) for j in ring.processes()}
        image: Dict[str, object] = {}
        image[Ring.ut(top)] = c[top - 1] == (c[top] + 1) % k
        image[Ring.dt(0)] = c[1] == (c[0] + 1) % k
        for j in ring.middles():
            image[Ring.ut(j)] = c[j - 1] == (c[j] + 1) % k
            image[Ring.dt(j)] = c[j + 1] == (c[j] + 1) % k
        return abstract_schema.pack(image)

    def array_mapping(columns: Dict[str, object]) -> Dict[str, object]:
        c = {j: columns[Ring.c(j)] for j in ring.processes()}
        image: Dict[str, object] = {}
        image[Ring.ut(top)] = c[top - 1] == (c[top] + 1) % k
        image[Ring.dt(0)] = c[1] == (c[0] + 1) % k
        for j in ring.middles():
            image[Ring.ut(j)] = c[j - 1] == (c[j] + 1) % k
            image[Ring.dt(j)] = c[j + 1] == (c[j] + 1) % k
        return image

    return AbstractionFunction(
        concrete_schema, abstract_schema, mapping, name=f"alpha-mod{k}",
        array_mapping=array_mapping,
    )


def utr_abstraction(n_processes: int, k: int) -> AbstractionFunction:
    """The K-state mapping onto the abstract unidirectional ring UTR.

    A process holds the (unique, in legitimate states) privilege when
    its counter differs from its predecessor's — except the bottom,
    which is privileged when it *equals* the top's::

        t.0  =  c.0  = c.N
        t.j  =  c.j != c.(j-1)        (j > 0)
    """
    ring = Ring(n_processes)
    top = ring.top
    concrete_schema = StateSchema(
        {v.name: v.domain.values for v in kstate_variables(ring, k)}
    )
    abstract_schema = utr_program(n_processes).schema()

    def mapping(state: State) -> State:
        env = concrete_schema.unpack(state)
        c = {j: int(env[Ring.c(j)]) for j in ring.processes()}
        image: Dict[str, object] = {Ring.t(0): c[0] == c[top]}
        for j in range(1, n_processes):
            image[Ring.t(j)] = c[j] != c[j - 1]
        return abstract_schema.pack(image)

    def array_mapping(columns: Dict[str, object]) -> Dict[str, object]:
        c = {j: columns[Ring.c(j)] for j in ring.processes()}
        image: Dict[str, object] = {Ring.t(0): c[0] == c[top]}
        for j in range(1, n_processes):
            image[Ring.t(j)] = c[j] != c[j - 1]
        return image

    return AbstractionFunction(
        concrete_schema, abstract_schema, mapping, name=f"alphaK{k}",
        array_mapping=array_mapping,
    )
