"""The abstract stabilization wrappers ``W1`` and ``W2`` (paper, Section 3.2).

``W1`` re-establishes ``I1`` (some token exists)::

    (forall j : j != N : !ut.j && !dt.j)  -->  ut.N := true

``W2`` establishes ``I2 && I3`` eventually by cancelling co-located
opposite tokens, one instance per interior process ``j``::

    ut.j && dt.j  -->  ut.j := false; dt.j := false

Two readings of ``W1`` are provided.  The paper's literal guard
quantifies over ``j != N`` only, so it is also enabled in the
legitimate state whose unique token is ``ut.N`` — there the action is
a stutter (``ut.N := true`` with ``ut.N`` already true).  The *strict*
variant adds the conjunct ``!ut.N``, firing only when the system truly
has no token; it is an everywhere refinement of the literal wrapper
(it only removes stuttering computations) and is the variant to use
under the raw unfair daemon.
"""

from __future__ import annotations

from typing import List

from ..gcl.action import GuardedAction
from ..gcl.expr import And, BigAnd, Const, Expr, Not, Var
from ..gcl.program import Program
from .btr import btr_variables
from .topology import Ring

__all__ = ["w1_guard", "w1_program", "w2_program"]


def w1_guard(ring: Ring, strict: bool = False) -> Expr:
    """The guard of ``W1``: no token anywhere below the top.

    Args:
        ring: the ring instance.
        strict: also require ``!ut.N`` (no token at all), avoiding the
            stutter in the legitimate ``ut.N`` state.
    """
    top = ring.top
    conjuncts: List[Expr] = []
    for j in ring.processes():
        if j == top:
            continue
        if j >= 1:
            conjuncts.append(Not(Var(Ring.ut(j))))
        if j <= top - 1:
            conjuncts.append(Not(Var(Ring.dt(j))))
    if strict:
        conjuncts.append(Not(Var(Ring.ut(top))))
    return BigAnd(*conjuncts)


def w1_program(n_processes: int, strict: bool = False) -> Program:
    """The token-(re)creation wrapper ``W1`` over the BTR variables.

    A wrapper is a program with no initial states of its own
    (``init=None``); composition with the base system is done with
    :func:`repro.core.composition.box` on the compiled automata, or
    :meth:`repro.gcl.program.Program.merged_with` on the programs.
    """
    ring = Ring(n_processes)
    action = GuardedAction(
        "w1.create" if not strict else "w1s.create",
        w1_guard(ring, strict=strict),
        {Ring.ut(ring.top): Const(True)},
    )
    name = "W1" if not strict else "W1-strict"
    return Program(name, btr_variables(ring), [action], init=None)


def w2_program(n_processes: int) -> Program:
    """The token-cancellation wrapper ``W2`` over the BTR variables.

    One cancellation action per interior process; the top and bottom
    processes have only one token flag each, so co-location cannot
    occur there and the paper's quantification effectively ranges over
    ``0 < j < N``.
    """
    ring = Ring(n_processes)
    actions: List[GuardedAction] = []
    for j in ring.middles():
        actions.append(
            GuardedAction(
                f"w2.cancel.{j}",
                And(Var(Ring.ut(j)), Var(Ring.dt(j))),
                {Ring.ut(j): Const(False), Ring.dt(j): Const(False)},
            )
        )
    if not actions:
        # A 2-process ring has no interior; W2 is the null wrapper.
        return Program("W2", btr_variables(ring), [], init=None)
    return Program("W2", btr_variables(ring), actions, init=None)
