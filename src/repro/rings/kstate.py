"""The unidirectional ring and Dijkstra's K-state protocol.

The paper's companion technical report derives Dijkstra's K-state
protocol from an abstract unidirectional token ring; the report is not
part of the conference paper, so this module reconstructs the natural
abstract system and the classical concrete protocol:

* :func:`utr_program` — the abstract unidirectional token ring
  ``UTR``: one boolean token flag per process, a single action family
  ``t.j --> t.j := false; t.(j+1 mod N+1) := true``.  Tokens moving
  onto an occupied process *merge* (the flag is simply set), which is
  the abstraction's built-in counterpart of cancellation.
* :func:`kstate_program` — Dijkstra's K-state system::

      c.0 = c.N       --> c.0 := c.0 (+) 1        (bottom)
      c.j != c.(j-1)  --> c.j := c.(j-1)           (j > 0)

  with counters mod ``K``.  Classically self-stabilizing for
  ``K >= N + 1`` (number of processes); the benchmark sweep
  rediscovers the exact threshold mechanically.

The abstraction (:func:`repro.rings.mappings.utr_abstraction`) decodes
``t.0 = (c.0 = c.N)`` and ``t.j = (c.j != c.(j-1))``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ..gcl.action import GuardedAction
from ..gcl.domain import BoolDomain, ModularDomain
from ..gcl.expr import AddMod, Const, Eq, Ne, Var
from ..gcl.process import Process
from ..gcl.program import Program
from ..gcl.variable import Variable
from .topology import Ring

__all__ = [
    "utr_variables",
    "utr_program",
    "utr_token_creation_wrapper",
    "kstate_variables",
    "kstate_initial",
    "kstate_program",
]


def utr_variables(ring: Ring) -> List[Variable]:
    """One boolean token flag per process."""
    return [Variable(Ring.t(j), BoolDomain()) for j in ring.processes()]


def utr_program(n_processes: int) -> Program:
    """The abstract unidirectional token ring ``UTR``.

    Initial states: every single-token placement.  The move action
    writes the successor's flag — abstract-model behaviour.
    """
    ring = Ring(n_processes)
    actions = [
        GuardedAction(
            f"move.{j}",
            Var(Ring.t(j)),
            {Ring.t(j): Const(False), Ring.t(ring.succ(j)): Const(True)},
        )
        for j in ring.processes()
    ]
    flags = [Ring.t(j) for j in ring.processes()]
    initial = [{name: (name == placed) for name in flags} for placed in flags]
    return Program("UTR", utr_variables(ring), actions, init=initial)


def utr_token_creation_wrapper(n_processes: int) -> Program:
    """The unidirectional analogue of ``W1``: create a token when none
    exists.

    Included for the E11 negative result: even with this wrapper (and
    even under strong fairness) the abstract boolean ring does *not*
    stabilize — two tokens can rotate in lockstep forever, never
    becoming adjacent, so no merge is ever forced.  Cancellation-style
    wrappers have no unidirectional counterpart; the K-state counters
    are what breaks the symmetry.
    """
    ring = Ring(n_processes)
    from ..gcl.expr import BigAnd, Not

    guard = BigAnd(*(Not(Var(Ring.t(j))) for j in ring.processes()))
    action = GuardedAction("w1u.create", guard, {Ring.t(0): Const(True)})
    return Program("W1u", utr_variables(ring), [action], init=None)


def kstate_variables(ring: Ring, k: int) -> List[Variable]:
    """One mod-``k`` counter per process.

    Raises:
        ValueError: for ``k < 2`` — a 1-state counter cannot even
            represent a moving token.
    """
    if k < 2:
        raise ValueError("the K-state protocol needs K >= 2")
    return [Variable(Ring.c(j), ModularDomain(k)) for j in ring.processes()]


def kstate_initial(ring: Ring, k: int) -> List[Mapping[str, object]]:
    """Canonical initial states: all counters equal (token at the bottom)."""
    return [
        {Ring.c(j): value for j in ring.processes()} for value in range(k)
    ]


def kstate_program(n_processes: int, k: int) -> Program:
    """Dijkstra's K-state protocol over ``n_processes`` processes.

    Complies with the concrete model: every action writes only its own
    counter (ownership is attached for mechanical model checking).
    """
    ring = Ring(n_processes)
    top = ring.top
    actions: List[GuardedAction] = [
        GuardedAction(
            "bottom",
            Eq(Var(Ring.c(0)), Var(Ring.c(top))),
            {Ring.c(0): AddMod(Var(Ring.c(0)), Const(1), k)},
        )
    ]
    for j in range(1, n_processes):
        actions.append(
            GuardedAction(
                f"copy.{j}",
                Ne(Var(Ring.c(j)), Var(Ring.c(j - 1))),
                {Ring.c(j): Var(Ring.c(j - 1))},
            )
        )
    by_name = {action.name: action for action in actions}
    processes: List[Process] = []
    for j in ring.processes():
        mine = [by_name["bottom"]] if j == 0 else [by_name[f"copy.{j}"]]
        reads = [Ring.c(ring.pred(j))]
        processes.append(Process(f"p{j}", [Ring.c(j)], reads, mine))
    return Program(
        f"K{k}-state",
        kstate_variables(ring, k),
        actions,
        init=kstate_initial(ring, k),
        processes=processes,
    )
