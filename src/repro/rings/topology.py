"""Ring topology bookkeeping shared by all token-ring protocols.

The paper's bidirectional ring consists of processes ``{0, .., N}``
arranged in a line that tokens traverse up and down (the "ring" is the
bounce at the ends); the unidirectional K-state ring wraps around.
:class:`Ring` centralizes the index arithmetic and the variable-naming
conventions (``ut.j`` for the paper's up-token at ``j``, ``dt.j`` for
the down-token, ``c.j`` and ``up.j`` for the encoded counters) so that
every protocol module and every abstraction function agrees on them.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

__all__ = ["Ring"]


class Ring:
    """Index helpers for a ring of ``n_processes`` processes ``0..N``.

    Args:
        n_processes: total number of processes (the paper's ``N + 1``).

    Raises:
        ValueError: for rings of fewer than 2 processes — the paper's
            systems need at least a bottom and a top.
    """

    def __init__(self, n_processes: int):
        if n_processes < 2:
            raise ValueError("a token ring needs at least 2 processes")
        self.n_processes = n_processes

    @property
    def top(self) -> int:
        """The paper's ``N`` — index of the top process."""
        return self.n_processes - 1

    @property
    def bottom(self) -> int:
        """Index of the bottom process (always 0)."""
        return 0

    def processes(self) -> range:
        """All process indices ``0..N``."""
        return range(self.n_processes)

    def middles(self) -> range:
        """The interior processes ``1..N-1`` (empty for a 2-ring)."""
        return range(1, self.top)

    def succ(self, j: int) -> int:
        """Clockwise neighbour ``(j + 1) mod (N + 1)`` (unidirectional ring)."""
        return (j + 1) % self.n_processes

    def pred(self, j: int) -> int:
        """Counter-clockwise neighbour ``(j - 1) mod (N + 1)``."""
        return (j - 1) % self.n_processes

    # -- variable naming conventions -------------------------------------

    @staticmethod
    def ut(j: int) -> str:
        """Name of the paper's up-token flag at process ``j`` (defined for j >= 1)."""
        return f"ut.{j}"

    @staticmethod
    def dt(j: int) -> str:
        """Name of the down-token flag at process ``j`` (defined for j <= N-1)."""
        return f"dt.{j}"

    @staticmethod
    def c(j: int) -> str:
        """Name of the counter/colour variable at process ``j``."""
        return f"c.{j}"

    @staticmethod
    def up(j: int) -> str:
        """Name of the 4-state direction bit at process ``j`` (interior only)."""
        return f"up.{j}"

    @staticmethod
    def t(j: int) -> str:
        """Name of the unidirectional token flag at process ``j``."""
        return f"t.{j}"

    def up_token_indices(self) -> range:
        """Processes ``j`` for which ``ut.j`` exists (``1..N``)."""
        return range(1, self.n_processes)

    def down_token_indices(self) -> range:
        """Processes ``j`` for which ``dt.j`` exists (``0..N-1``)."""
        return range(0, self.top)

    def token_variable_names(self) -> List[str]:
        """All BTR token flags, process by process: dt.0, ut.1, dt.1, ..."""
        names: List[str] = []
        for j in self.processes():
            if j >= 1:
                names.append(self.ut(j))
            if j <= self.top - 1:
                names.append(self.dt(j))
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ring(n_processes={self.n_processes})"
