"""The new 3-state system ``C3`` (paper, Section 6).

``C3`` uses the same 3-state encoding as Section 5 but implements the
interior moves the *other* way around: instead of killing the token at
``j`` with an own-state write and leaving the creation at the
neighbour implicit, it *creates* the destination token with an
own-state write and leaves the deletion implicit::

    c.(N-1) = c.N (+) 1 --> c.N := c.(N-1) (+) 1          (top)
    c.1 = c.0 (+) 1     --> c.0 := c.1 (+) 1              (bottom)
    c.(j-1) = c.j (+) 1 --> c.j := c.(j+1) (+) 1          (up; // kill ut.j)
    c.(j+1) = c.j (+) 1 --> c.j := c.(j-1) (+) 1          (down; // kill dt.j)

In legitimate states the write coincides with ``C2``'s; in corrupted
states the action may leave the state unchanged — the *tau steps*
(stuttering) of the paper's Section 6 figure — so all checks on ``C3``
run stutter-insensitively under weak fairness.

:func:`c3_aggressive_composed` builds the paper's final if-then-else
composite (``C3`` with the *aggressive* ``W2'`` merged in), which the
paper argues — and this reproduction verifies mechanically, action by
action — is exactly Dijkstra's 3-state system.
"""

from __future__ import annotations

from typing import List

from ..gcl.action import GuardedAction
from ..gcl.expr import AddMod, And, Const, Eq, Expr, Ite, Ne, Var
from ..gcl.program import Program
from .btr3 import (
    btr3_variables,
    three_state_initial,
    three_state_processes,
    w1_local_program,
    w2_refined_program,
)
from .topology import Ring

__all__ = ["c3_program", "c3_composed", "c3_aggressive_composed"]


def _plus_one(j: int) -> Expr:
    """``c.j (+) 1``."""
    return AddMod(Var(Ring.c(j)), Const(1), 3)


def c3_program(n_processes: int) -> Program:
    """The alternative 3-state refinement ``C3`` of BTR."""
    ring = Ring(n_processes)
    top = ring.top
    actions: List[GuardedAction] = [
        GuardedAction(
            "top",
            Eq(Var(Ring.c(top - 1)), _plus_one(top)),
            {Ring.c(top): AddMod(Var(Ring.c(top - 1)), Const(1), 3)},
        ),
        GuardedAction(
            "bottom",
            Eq(Var(Ring.c(1)), _plus_one(0)),
            {Ring.c(0): AddMod(Var(Ring.c(1)), Const(1), 3)},
        ),
    ]
    for j in ring.middles():
        actions.append(
            GuardedAction(
                f"up.{j}",
                Eq(Var(Ring.c(j - 1)), _plus_one(j)),
                {Ring.c(j): AddMod(Var(Ring.c(j + 1)), Const(1), 3)},
            )
        )
        actions.append(
            GuardedAction(
                f"down.{j}",
                Eq(Var(Ring.c(j + 1)), _plus_one(j)),
                {Ring.c(j): AddMod(Var(Ring.c(j - 1)), Const(1), 3)},
            )
        )
    return Program(
        "C3",
        btr3_variables(ring),
        actions,
        init=three_state_initial(ring),
        processes=three_state_processes(ring, actions),
    )


def c3_composed(n_processes: int) -> Program:
    """``C3 [] W1'' [] W2'`` — the graybox result of Theorem 13.

    The wrappers are exactly the ones developed for ``C2`` in
    Section 5.1, reused without modification (the whole point of
    graybox design).
    """
    return (
        c3_program(n_processes)
        .merged_with(w1_local_program(n_processes))
        .merged_with(w2_refined_program(n_processes), name="C3 [] W1'' [] W2'")
    )


def c3_aggressive_composed(n_processes: int) -> Program:
    """The paper's final Section 6 listing: ``C3`` with the aggressive
    ``W2'`` merged into the interior actions as if-then-else cascades.

    The aggressive wrapper also deletes ``ut.j`` when ``ut.(j+1)``
    holds and ``dt.j`` when ``dt.(j-1)`` holds.  Merged::

        c.(j-1) = c.j (+) 1 --> if c.(j-1) = c.(j+1) then c.j := c.(j-1)
                                 elif c.j = c.(j+1) (+) 1 then c.j := c.(j-1)
                                 else c.j := c.(j+1) (+) 1
        c.(j+1) = c.j (+) 1 --> if c.(j-1) = c.(j+1) then c.j := c.(j+1)
                                 elif c.j = c.(j-1) (+) 1 then c.j := c.(j+1)
                                 else c.j := c.(j-1) (+) 1

    Because the counters live in Z_3, every branch coincides with
    Dijkstra's simple write (the paper's closing observation); the
    reproduction asserts the compiled automata are *equal*.
    """
    ring = Ring(n_processes)
    top = ring.top
    actions: List[GuardedAction] = [
        GuardedAction(
            "top",
            And(
                Eq(Var(Ring.c(top - 1)), Var(Ring.c(0))),
                Ne(AddMod(Var(Ring.c(top - 1)), Const(1), 3), Var(Ring.c(top))),
            ),
            {Ring.c(top): AddMod(Var(Ring.c(top - 1)), Const(1), 3)},
        ),
        GuardedAction(
            "bottom",
            Eq(Var(Ring.c(1)), _plus_one(0)),
            {Ring.c(0): AddMod(Var(Ring.c(1)), Const(1), 3)},
        ),
    ]
    for j in ring.middles():
        up_value = Ite(
            Eq(Var(Ring.c(j - 1)), Var(Ring.c(j + 1))),
            Var(Ring.c(j - 1)),
            Ite(
                Eq(Var(Ring.c(j)), _plus_one(j + 1)),
                Var(Ring.c(j - 1)),
                AddMod(Var(Ring.c(j + 1)), Const(1), 3),
            ),
        )
        actions.append(
            GuardedAction(
                f"up.{j}",
                Eq(Var(Ring.c(j - 1)), _plus_one(j)),
                {Ring.c(j): up_value},
            )
        )
        down_value = Ite(
            Eq(Var(Ring.c(j - 1)), Var(Ring.c(j + 1))),
            Var(Ring.c(j + 1)),
            Ite(
                Eq(Var(Ring.c(j)), _plus_one(j - 1)),
                Var(Ring.c(j + 1)),
                AddMod(Var(Ring.c(j - 1)), Const(1), 3),
            ),
        )
        actions.append(
            GuardedAction(
                f"down.{j}",
                Eq(Var(Ring.c(j + 1)), _plus_one(j)),
                {Ring.c(j): down_value},
            )
        )
    return Program(
        "C3-aggressive",
        btr3_variables(ring),
        actions,
        init=three_state_initial(ring),
    )
