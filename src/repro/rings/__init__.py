"""The token-ring protocol family of the paper (Sections 3-6 + K-state).

* :mod:`repro.rings.btr` — the abstract bidirectional ring ``BTR``;
* :mod:`repro.rings.wrappers_abstract` — ``W1`` and ``W2``;
* :mod:`repro.rings.btr4` — ``BTR4``, ``C1``, Dijkstra's 4-state;
* :mod:`repro.rings.btr3` — ``BTR3``, ``C2``, the refined wrappers
  ``W1'``/``W1''``/``W2'``, Dijkstra's 3-state;
* :mod:`repro.rings.c3` — the paper's new 3-state system and its
  aggressive composite;
* :mod:`repro.rings.kstate` — ``UTR`` and Dijkstra's K-state;
* :mod:`repro.rings.mappings` — the abstraction functions;
* :mod:`repro.rings.tokens` / :mod:`repro.rings.legitimate` — token
  calculus and the invariant ``I``.
"""

from .btr import btr_actions, btr_processes, btr_program, btr_variables
from .btr3 import (
    btr3_program,
    btr3_variables,
    c2_program,
    dijkstra_three_state,
    dijkstra_three_state_modk,
    three_state_initial,
    w1_global_program,
    w1_local_program,
    w2_refined_program,
)
from .btr4 import (
    btr4_program,
    btr4_variables,
    c1_program,
    dijkstra_four_state,
    four_state_initial,
)
from .c3 import c3_aggressive_composed, c3_composed, c3_program
from .kstate import (
    kstate_initial,
    kstate_program,
    utr_program,
    utr_token_creation_wrapper,
    utr_variables,
)
from .legitimate import (
    exactly_one_token,
    i1_holds,
    i2_i3_hold,
    legitimate_btr_states,
)
from .mappings import (
    btr3_abstraction,
    btr4_abstraction,
    btrk_abstraction,
    utr_abstraction,
)
from .tokens import (
    all_single_token_states,
    count_tokens,
    state_with_tokens,
    token_flags,
    tokens_in_state,
)
from .topology import Ring
from .wrappers_abstract import w1_guard, w1_program, w2_program

__all__ = [
    "btr_actions",
    "btr_processes",
    "btr_program",
    "btr_variables",
    "btr3_program",
    "btr3_variables",
    "c2_program",
    "dijkstra_three_state",
    "dijkstra_three_state_modk",
    "three_state_initial",
    "w1_global_program",
    "w1_local_program",
    "w2_refined_program",
    "btr4_program",
    "btr4_variables",
    "c1_program",
    "dijkstra_four_state",
    "four_state_initial",
    "c3_aggressive_composed",
    "c3_composed",
    "c3_program",
    "kstate_initial",
    "kstate_program",
    "utr_program",
    "utr_token_creation_wrapper",
    "utr_variables",
    "exactly_one_token",
    "i1_holds",
    "i2_i3_hold",
    "legitimate_btr_states",
    "btr3_abstraction",
    "btr4_abstraction",
    "btrk_abstraction",
    "utr_abstraction",
    "all_single_token_states",
    "count_tokens",
    "state_with_tokens",
    "token_flags",
    "tokens_in_state",
    "Ring",
    "w1_guard",
    "w1_program",
    "w2_program",
]
