"""Adaptive verification-tier selection.

A convergence-refinement verdict costs wildly different amounts
depending on how it is computed: a full exhaustive check with
refinement witnesses (the THOROUGH tier) is exact but scales with the
state space; a budgeted exhaustive check (STANDARD) trades the
worst-case convergence metric and unbounded exploration for a hard
state cap; a seeded Monte-Carlo convergence estimate (LIGHT,
:mod:`repro.tiering.montecarlo`) samples trajectories instead of
enumerating states — the principled stand-in that *Weak vs. Self vs.
Probabilistic Stabilization* (PAPERS.md) motivates when exhaustive
fixpoints are out of budget.

:func:`select_tier` picks the tier for one spec from three signals:

* **size** — the packed-cell count of the spec (state-space size times
  actions-plus-variables, the same footprint formula the vector
  engine's lowerability analysis uses): small specs are cheap enough
  to always verify THOROUGH, huge ones only afford LIGHT.  Because the
  units agree, a ``REPRO_MAX_VECTOR_CELLS`` override retunes the LIGHT
  floor along with the engine ceiling (see
  :func:`_light_floor_in_force`);
* **verdict history** — a persisted :class:`~repro.tiering.ledger.
  RiskLedger` of recent outcomes: a spec that failed, flapped, or cut
  PARTIAL recently is *promoted* to THOROUGH regardless of size (risk
  demands a witness), while a long clean streak *demotes* one tier
  (stability earns speed);
* **an explicit override** — a forced ``--tier`` wins over everything
  (modulo feasibility: the LIGHT sampler needs a packable schema).

Every decision is explained: a reasoned ``tier.select`` event (and a
``tier.select.<tier>`` counter) goes to the instrumentation sink, so
``repro report`` answers "why did this spec run LIGHT?".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping, Optional, Sequence, Tuple

from ..gcl.program import Program
from ..obs import NULL_INSTRUMENTATION, Instrumentation

__all__ = [
    "Tier",
    "TierThresholds",
    "DEFAULT_THRESHOLDS",
    "TierDecision",
    "spec_cells",
    "select_tier",
]


class Tier(Enum):
    """The three verification depths, cheapest first."""

    LIGHT = "light"
    STANDARD = "standard"
    THOROUGH = "thorough"

    @property
    def rank(self) -> int:
        """Position in the cheap-to-exact order (LIGHT=0 .. THOROUGH=2)."""
        return _RANKS[self]


_RANKS = {Tier.LIGHT: 0, Tier.STANDARD: 1, Tier.THOROUGH: 2}
_BY_RANK = (Tier.LIGHT, Tier.STANDARD, Tier.THOROUGH)


@dataclass(frozen=True)
class TierThresholds:
    """The tunable boundaries of :func:`select_tier`.

    Attributes:
        thorough_max_cells: specs at or below this packed-cell count
            always afford the THOROUGH tier.
        light_min_cells: specs at or above this cell count only afford
            the LIGHT (simulated) tier; between the two bounds the
            base tier is STANDARD.
        standard_state_budget: the state cap a STANDARD-tier exhaustive
            check runs under (past it the verdict is PARTIAL).
        risk_window: how many most-recent ledger outcomes the risk
            rules examine.
        demote_streak: consecutive clean passes (held, not partial)
            required before a spec is demoted one tier below its
            size-based choice.
    """

    thorough_max_cells: int = 1 << 18
    light_min_cells: int = 1 << 22
    standard_state_budget: int = 250_000
    risk_window: int = 5
    demote_streak: int = 8

    def __post_init__(self) -> None:
        if self.thorough_max_cells < 1 or self.light_min_cells < 1:
            raise ValueError("tier cell thresholds must be positive")
        if self.thorough_max_cells >= self.light_min_cells:
            raise ValueError(
                f"thorough_max_cells ({self.thorough_max_cells}) must lie "
                f"below light_min_cells ({self.light_min_cells})"
            )
        if self.standard_state_budget < 1:
            raise ValueError("standard_state_budget must be positive")
        if self.risk_window < 1 or self.demote_streak < 1:
            raise ValueError("risk_window and demote_streak must be positive")


DEFAULT_THRESHOLDS = TierThresholds()


@dataclass(frozen=True)
class TierDecision:
    """One reasoned tier choice.

    Attributes:
        tier: the tier the spec will be verified at.
        base: the purely size-based tier, before history overrides.
        reason: one human-readable sentence explaining the choice.
        cells: the packed-cell count the size rule judged.
        states: the spec's state-space size.
    """

    tier: Tier
    base: Tier
    reason: str
    cells: int
    states: int


def spec_cells(program: Program) -> int:
    """The packed-cell footprint of a spec.

    ``|Sigma| * (actions + variables)`` — the same formula the vector
    engine's lowerability ceiling uses
    (:data:`repro.kernel.vector.analyze.MAX_VECTOR_CELLS`), so the
    size axis of tier selection and the engine-selection ceiling speak
    the same unit.
    """
    schema = program.schema()
    return schema.size() * (len(program.actions) + len(schema.names))


def _packable_reason(program: Program) -> Optional[str]:
    """Why the LIGHT sampler cannot run on this spec (``None`` = it can)."""
    from ..kernel import unpackable_reason

    return unpackable_reason(program.schema())


def _light_floor_in_force(thresholds: TierThresholds) -> Tuple[int, bool]:
    """The LIGHT floor the size rule judges against, and whether the
    ``REPRO_MAX_VECTOR_CELLS`` override retuned it.

    Tier selection and the vector engine's lowerability ceiling speak
    the same cell unit (:func:`spec_cells`), so an operator who retunes
    the engine ceiling has also moved the exhaustive-affordability
    boundary: the floor in force becomes the overridden ceiling itself
    (clamped above the THOROUGH ceiling) — specs the retuned engine can
    lower are judged affordable for exhaustive checking, and specs it
    refuses are not.  Without an override the configured
    ``light_min_cells`` stands.
    """
    from ..kernel.vector.analyze import (
        MAX_VECTOR_CELLS,
        effective_max_vector_cells,
    )

    ceiling = effective_max_vector_cells()
    if ceiling == MAX_VECTOR_CELLS:
        return thresholds.light_min_cells, False
    return max(ceiling, thresholds.thorough_max_cells + 1), True


def _clean_streak(history: Sequence[Mapping[str, object]]) -> int:
    """Trailing run of held-and-complete outcomes, newest last."""
    streak = 0
    for outcome in reversed(history):
        if outcome.get("holds") and not outcome.get("partial"):
            streak += 1
        else:
            break
    return streak


def _risk_reason(
    history: Sequence[Mapping[str, object]], window: int
) -> Optional[str]:
    """Why recent history demands the THOROUGH tier (``None`` = it doesn't)."""
    recent: Tuple[Mapping[str, object], ...] = tuple(history[-window:])
    if any(o.get("partial") for o in recent):
        return "a recent verdict was PARTIAL (budget too small for this spec)"
    if any(not o.get("holds") for o in recent):
        return "the spec failed verification recently"
    verdicts = [bool(o.get("holds")) for o in recent]
    if any(a != b for a, b in zip(verdicts, verdicts[1:])):
        return "the verdict flapped across recent runs"
    return None


def select_tier(
    program: Program,
    *,
    label: str = "",
    history: Sequence[Mapping[str, object]] = (),
    forced: Optional[Tier] = None,
    thresholds: TierThresholds = DEFAULT_THRESHOLDS,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> TierDecision:
    """Pick the verification tier for one spec (see the module docstring).

    Args:
        program: the parsed spec.
        label: how the spec is named in the ``tier.select`` event
            (typically its path).
        history: recent ledger outcomes, oldest first — mappings with
            ``holds``/``partial``/``tier`` keys
            (:meth:`repro.tiering.ledger.RiskLedger.history`).
        forced: an explicit tier override (the ``--tier`` flag); wins
            over size and history, except that a forced LIGHT on an
            unpackable schema degrades to STANDARD (the sampler cannot
            intern its states).
        thresholds: the boundary tunables.
        instrumentation: observability sink for the reasoned
            ``tier.select`` event and ``tier.select.<tier>`` counter.

    Returns:
        A :class:`TierDecision`.
    """
    schema = program.schema()
    states = schema.size()
    cells = spec_cells(program)
    light_floor, retuned = _light_floor_in_force(thresholds)
    retuned_note = " (floor retuned by REPRO_MAX_VECTOR_CELLS)" if retuned else ""

    if cells <= thresholds.thorough_max_cells:
        base = Tier.THOROUGH
        base_reason = (
            f"{cells} cells fit the THOROUGH ceiling "
            f"({thresholds.thorough_max_cells})"
        )
    elif cells >= light_floor:
        base = Tier.LIGHT
        base_reason = (
            f"{cells} cells exceed the LIGHT floor "
            f"({light_floor}); exhaustive fixpoints are "
            f"out of budget{retuned_note}"
        )
    else:
        base = Tier.STANDARD
        base_reason = (
            f"{cells} cells sit between the THOROUGH ceiling and the "
            f"LIGHT floor{retuned_note}"
        )

    tier = base
    reason = base_reason
    if forced is not None:
        tier = forced
        reason = f"forced by --tier {forced.value}"
    else:
        risk = _risk_reason(history, thresholds.risk_window)
        if risk is not None and base is not Tier.THOROUGH:
            tier = Tier.THOROUGH
            reason = f"promoted from {base.value}: {risk}"
        elif (
            _clean_streak(history) >= thresholds.demote_streak
            and base.rank > Tier.LIGHT.rank
        ):
            tier = _BY_RANK[base.rank - 1]
            reason = (
                f"demoted from {base.value}: "
                f"{_clean_streak(history)} consecutive clean passes"
            )

    if tier is Tier.LIGHT:
        unpackable = _packable_reason(program)
        if unpackable is not None:
            tier = Tier.STANDARD
            reason = (
                f"LIGHT sampler unavailable ({unpackable}); running "
                f"STANDARD instead"
            )

    decision = TierDecision(
        tier=tier, base=base, reason=reason, cells=cells, states=states
    )
    instrumentation.count(f"tier.select.{tier.value}")
    instrumentation.event(
        "tier.select",
        spec=label or program.name,
        tier=tier.value,
        base=base.value,
        reason=reason,
        cells=cells,
        states=states,
        light_floor=light_floor,
        history=len(history),
        forced=forced.value if forced is not None else None,
    )
    return decision
