"""The LIGHT tier: a seeded Monte-Carlo convergence estimate.

When a spec is too large for exhaustive fixpoints, the principled
budget-bounded stand-in (per *Weak vs. Self vs. Probabilistic
Stabilization*, PAPERS.md) is statistical: sample random states,
run the random daemon, and measure how many trajectories re-enter
legitimate behaviour within a step horizon.

The estimate runs entirely on the packed kernel — states are dense int
codes, so sampling a random state is one ``randrange`` over the
interner range (never an enumeration of the space), and stepping is
one successor-closure call.  The procedure:

1. **Empirical legitimate set.**  From a bounded sample of the spec's
   initial codes, run the seeded random daemon ``warmup`` steps (the
   burn-in), then keep walking ``collect`` further steps recording
   every state visited.  For a stabilizing system this tail is inside
   the legitimate behaviour almost surely once the burn-in exceeds the
   convergence time.
2. **Trajectory sampling.**  Draw ``samples`` uniform random codes and
   walk each under the same daemon for up to ``horizon`` steps; a
   trajectory *converges* when it enters the empirical legitimate set
   (a deadlock outside it, or horizon exhaustion, is a non-converged
   trajectory).

The verdict is an **estimate**, never a proof — its formatted text
says so loudly — and it is fully deterministic for a given seed: every
random draw comes from one ``random.Random`` stream.

Trajectory sampling is round-synchronous: each round draws one uniform
float per live trajectory (in trajectory order), then steps every
trajectory to the ``floor(u * k)``-th of its ``k`` distinct ascending
successors.  The round itself has two interchangeable executors — a
batch NumPy one that evaluates all live trajectories in a single
:meth:`~repro.kernel.shared.SharedKernel.action_matrix` call, and a
pure-Python one stepping each code through the packed kernel.  Both
consume the identical draw sequence and implement the identical
selection rule, so the verdict is the same object either way; the
scalar executor is the fallback when NumPy is missing or the program
has no array lowering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from ..gcl.program import Program
from ..obs import NULL_INSTRUMENTATION, Instrumentation

__all__ = [
    "LightVerdict",
    "batch_sampler_unavailable_reason",
    "light_convergence_estimate",
]


@dataclass(frozen=True)
class LightVerdict:
    """Outcome of a LIGHT-tier Monte-Carlo convergence estimate.

    Attributes:
        name: the checked program's name.
        samples: trajectories sampled.
        converged: how many entered the empirical legitimate set.
        horizon: per-trajectory step budget.
        seed: the RNG seed (the estimate is a pure function of it).
        legitimate_size: size of the empirical legitimate set.
        states: the full state-space size the samples were drawn from.
    """

    name: str
    samples: int
    converged: int
    horizon: int
    seed: int
    legitimate_size: int
    states: int

    @property
    def holds(self) -> bool:
        """Every sampled trajectory converged (statistical evidence only)."""
        return self.samples > 0 and self.converged == self.samples

    @property
    def is_partial(self) -> bool:
        """Sampling never decides; kept for result-shape compatibility."""
        return False

    def format(self) -> str:
        """Render the estimate, clearly marked as simulated."""
        verdict = "LIKELY HOLDS" if self.holds else "NOT CONFIRMED"
        return (
            f"{self.name} self-stabilization estimate (LIGHT tier, "
            f"simulated): {verdict}\n"
            f"  {self.converged}/{self.samples} sampled trajectories "
            f"converged within {self.horizon} steps "
            f"(seed {self.seed}, empirical legitimate set "
            f"{self.legitimate_size} of {self.states} states)"
        )


#: One sampling round: live codes (all outside the legitimate set) and
#: their per-trajectory uniform draws in, the codes still live after
#: the step and the number that converged this round out.
_RoundFn = Callable[[List[int], List[float]], Tuple[List[int], int]]


def batch_sampler_unavailable_reason(program: Program) -> Optional[str]:
    """Why trajectory rounds cannot run batched (``None`` = they can).

    The batch executor needs NumPy and an array lowering of the
    program's guards and assignments; when either is missing the
    estimate silently uses the scalar executor (same verdict, more
    Python-loop time per round).
    """
    from ..kernel.vector import NUMPY_MISSING_REASON, numpy_available

    if not numpy_available():
        return NUMPY_MISSING_REASON
    if not isinstance(program, Program):
        return "batch stepping lowers guards directly from a Program"
    from ..kernel.vector.analyze import structural_unlowerable_reason

    return structural_unlowerable_reason(program)


def _scalar_round(kernel, legitimate: Set[int]) -> _RoundFn:
    """The pure-Python round executor: one packed successor-closure
    call per live trajectory (successors arrive sorted-unique)."""

    def step(codes: List[int], draws: List[float]) -> Tuple[List[int], int]:
        converged = 0
        live: List[int] = []
        for code, draw in zip(codes, draws):
            successors = kernel.successors(code)
            if not successors:
                continue
            target = successors[
                min(int(draw * len(successors)), len(successors) - 1)
            ]
            if target in legitimate:
                converged += 1
            else:
                live.append(target)
        return live, converged

    return step


def _batch_round(program: Program, legitimate: Set[int]) -> _RoundFn:
    """The NumPy round executor: all live trajectories in one
    ``action_matrix`` call, per-column distinct-ascending selection.

    Implements the identical rule as :func:`_scalar_round` — the
    packed kernel's ``sorted(set(...))`` successor view — by sorting
    each column's enabled successors with a ``size`` sentinel on the
    disabled slots and ranking the distinct values.
    """
    import numpy as np

    from ..kernel.shared.kernel import SharedKernel

    # validate=False skips the eager full-space out-of-domain sweep —
    # the sampler must never enumerate the space; the scalar warm-up
    # walks still raise on any out-of-domain write they reach.
    kernel = SharedKernel(program, validate=False)
    size = np.int64(kernel.size)
    legit_sorted = np.asarray(sorted(legitimate), dtype=np.int64)

    def step(codes: List[int], draws: List[float]) -> Tuple[List[int], int]:
        columns = np.asarray(codes, dtype=np.int64)
        uniforms = np.asarray(draws, dtype=np.float64)
        enabled, successors = kernel.action_matrix(columns)
        ordered = np.sort(np.where(enabled, successors, size), axis=0)
        distinct = np.ones(ordered.shape, dtype=bool)
        distinct[1:] = ordered[1:] != ordered[:-1]
        distinct &= ordered < size
        counts = distinct.sum(axis=0)
        choice = np.minimum(
            (uniforms * counts).astype(np.int64),
            np.maximum(counts - 1, 0),
        )
        rank = np.cumsum(distinct, axis=0) - 1
        row = (distinct & (rank == choice[None, :])).argmax(axis=0)
        targets = ordered[row, np.arange(columns.shape[0])]
        alive = counts > 0
        if legit_sorted.size:
            slots = np.minimum(
                np.searchsorted(legit_sorted, targets),
                legit_sorted.size - 1,
            )
            entered = legit_sorted[slots] == targets
        else:
            entered = np.zeros(columns.shape, dtype=bool)
        converged = int(np.count_nonzero(alive & entered))
        return [int(code) for code in targets[alive & ~entered]], converged

    return step


def light_convergence_estimate(
    program: Program,
    *,
    samples: int = 64,
    horizon: int = 1024,
    warmup: int = 256,
    collect: int = 128,
    warmup_starts: int = 8,
    seed: int = 0,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> LightVerdict:
    """Estimate self-stabilization of ``program`` by seeded simulation.

    Args:
        program: the spec (must have a packable schema — tier
            selection guarantees this before routing a spec here).
        samples: trajectories to sample.
        horizon: step budget per sampled trajectory.
        warmup: burn-in steps before the legitimate tail is recorded.
        collect: steps of tail recorded per warm-up walk.
        warmup_starts: how many initial codes seed the warm-up walks.
        seed: the single RNG seed behind every draw.
        instrumentation: observability sink (``tier.light.*``
            counters and the summary event).

    Returns:
        A deterministic :class:`LightVerdict`.

    Raises:
        ValueError: on non-positive sampling parameters.
    """
    if samples < 1 or horizon < 1 or warmup < 0 or collect < 1:
        raise ValueError("sampling parameters must be positive")
    from ..kernel import as_kernel

    kernel = as_kernel(program, instrumentation=instrumentation)
    rng = random.Random(seed)

    with instrumentation.span("tier.light.legitimate"):
        legitimate: Set[int] = set()
        starts = kernel.initial_codes[: max(1, warmup_starts)]
        for code in starts:
            for _ in range(warmup):
                successors = kernel.successors(code)
                if not successors:
                    break
                code = successors[rng.randrange(len(successors))]
            legitimate.add(code)
            for _ in range(collect):
                successors = kernel.successors(code)
                if not successors:
                    break
                code = successors[rng.randrange(len(successors))]
                legitimate.add(code)

    batch_reason = batch_sampler_unavailable_reason(program)
    mode = "scalar" if batch_reason is not None else "batch"
    with instrumentation.span("tier.light.sample", mode=mode):
        if batch_reason is None:
            step_round = _batch_round(program, legitimate)
        else:
            step_round = _scalar_round(kernel, legitimate)
            instrumentation.event(
                "tier.light.scalar_fallback", reason=batch_reason
            )
        starts = [rng.randrange(kernel.size) for _ in range(samples)]
        live = [code for code in starts if code not in legitimate]
        converged = samples - len(live)
        rounds = 0
        for _ in range(horizon):
            if not live:
                break
            draws = [rng.random() for _ in live]
            live, entered = step_round(live, draws)
            converged += entered
            rounds += 1

    instrumentation.count("tier.light.samples", samples)
    instrumentation.count("tier.light.converged", converged)
    instrumentation.count(f"tier.light.rounds.{mode}", rounds)
    instrumentation.event(
        "tier.light.estimate",
        program=program.name,
        samples=samples,
        converged=converged,
        horizon=horizon,
        seed=seed,
        legitimate=len(legitimate),
        mode=mode,
        rounds=rounds,
    )
    return LightVerdict(
        name=program.name,
        samples=samples,
        converged=converged,
        horizon=horizon,
        seed=seed,
        legitimate_size=len(legitimate),
        states=kernel.size,
    )
