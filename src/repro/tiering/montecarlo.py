"""The LIGHT tier: a seeded Monte-Carlo convergence estimate.

When a spec is too large for exhaustive fixpoints, the principled
budget-bounded stand-in (per *Weak vs. Self vs. Probabilistic
Stabilization*, PAPERS.md) is statistical: sample random states,
run the random daemon, and measure how many trajectories re-enter
legitimate behaviour within a step horizon.

The estimate runs entirely on the packed kernel — states are dense int
codes, so sampling a random state is one ``randrange`` over the
interner range (never an enumeration of the space), and stepping is
one successor-closure call.  The procedure:

1. **Empirical legitimate set.**  From a bounded sample of the spec's
   initial codes, run the seeded random daemon ``warmup`` steps (the
   burn-in), then keep walking ``collect`` further steps recording
   every state visited.  For a stabilizing system this tail is inside
   the legitimate behaviour almost surely once the burn-in exceeds the
   convergence time.
2. **Trajectory sampling.**  Draw ``samples`` uniform random codes and
   walk each under the same daemon for up to ``horizon`` steps; a
   trajectory *converges* when it enters the empirical legitimate set
   (a deadlock outside it, or horizon exhaustion, is a non-converged
   trajectory).

The verdict is an **estimate**, never a proof — its formatted text
says so loudly — and it is fully deterministic for a given seed: every
random draw comes from one ``random.Random`` stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Set

from ..gcl.program import Program
from ..obs import NULL_INSTRUMENTATION, Instrumentation

__all__ = ["LightVerdict", "light_convergence_estimate"]


@dataclass(frozen=True)
class LightVerdict:
    """Outcome of a LIGHT-tier Monte-Carlo convergence estimate.

    Attributes:
        name: the checked program's name.
        samples: trajectories sampled.
        converged: how many entered the empirical legitimate set.
        horizon: per-trajectory step budget.
        seed: the RNG seed (the estimate is a pure function of it).
        legitimate_size: size of the empirical legitimate set.
        states: the full state-space size the samples were drawn from.
    """

    name: str
    samples: int
    converged: int
    horizon: int
    seed: int
    legitimate_size: int
    states: int

    @property
    def holds(self) -> bool:
        """Every sampled trajectory converged (statistical evidence only)."""
        return self.samples > 0 and self.converged == self.samples

    @property
    def is_partial(self) -> bool:
        """Sampling never decides; kept for result-shape compatibility."""
        return False

    def format(self) -> str:
        """Render the estimate, clearly marked as simulated."""
        verdict = "LIKELY HOLDS" if self.holds else "NOT CONFIRMED"
        return (
            f"{self.name} self-stabilization estimate (LIGHT tier, "
            f"simulated): {verdict}\n"
            f"  {self.converged}/{self.samples} sampled trajectories "
            f"converged within {self.horizon} steps "
            f"(seed {self.seed}, empirical legitimate set "
            f"{self.legitimate_size} of {self.states} states)"
        )


def light_convergence_estimate(
    program: Program,
    *,
    samples: int = 64,
    horizon: int = 1024,
    warmup: int = 256,
    collect: int = 128,
    warmup_starts: int = 8,
    seed: int = 0,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> LightVerdict:
    """Estimate self-stabilization of ``program`` by seeded simulation.

    Args:
        program: the spec (must have a packable schema — tier
            selection guarantees this before routing a spec here).
        samples: trajectories to sample.
        horizon: step budget per sampled trajectory.
        warmup: burn-in steps before the legitimate tail is recorded.
        collect: steps of tail recorded per warm-up walk.
        warmup_starts: how many initial codes seed the warm-up walks.
        seed: the single RNG seed behind every draw.
        instrumentation: observability sink (``tier.light.*``
            counters and the summary event).

    Returns:
        A deterministic :class:`LightVerdict`.

    Raises:
        ValueError: on non-positive sampling parameters.
    """
    if samples < 1 or horizon < 1 or warmup < 0 or collect < 1:
        raise ValueError("sampling parameters must be positive")
    from ..kernel import as_kernel

    kernel = as_kernel(program, instrumentation=instrumentation)
    rng = random.Random(seed)

    with instrumentation.span("tier.light.legitimate"):
        legitimate: Set[int] = set()
        starts = kernel.initial_codes[: max(1, warmup_starts)]
        for code in starts:
            for _ in range(warmup):
                successors = kernel.successors(code)
                if not successors:
                    break
                code = successors[rng.randrange(len(successors))]
            legitimate.add(code)
            for _ in range(collect):
                successors = kernel.successors(code)
                if not successors:
                    break
                code = successors[rng.randrange(len(successors))]
                legitimate.add(code)

    converged = 0
    with instrumentation.span("tier.light.sample"):
        for _ in range(samples):
            code = rng.randrange(kernel.size)
            if code in legitimate:
                converged += 1
                continue
            for _ in range(horizon):
                successors = kernel.successors(code)
                if not successors:
                    break
                code = successors[rng.randrange(len(successors))]
                if code in legitimate:
                    converged += 1
                    break

    instrumentation.count("tier.light.samples", samples)
    instrumentation.count("tier.light.converged", converged)
    instrumentation.event(
        "tier.light.estimate",
        program=program.name,
        samples=samples,
        converged=converged,
        horizon=horizon,
        seed=seed,
        legitimate=len(legitimate),
    )
    return LightVerdict(
        name=program.name,
        samples=samples,
        converged=converged,
        horizon=horizon,
        seed=seed,
        legitimate_size=len(legitimate),
        states=kernel.size,
    )
