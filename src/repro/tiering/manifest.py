"""The verification manifest behind ``repro verify-tree``.

A manifest is the durable record of one spec tree's last verified
state: for every spec file, the canonical program fingerprint
(:func:`repro.parallel.program_fingerprint` — whitespace- and
comment-insensitive, semantics-flag-aware), the tier the verdict was
computed at, and the verdict itself (held/failed plus the exact
formatted text).  The next run diffs fresh fingerprints against the
manifest and re-verifies *only* what changed:

* **unchanged** — same path, same fingerprint, same check parameters:
  the stored verdict is replayed byte for byte (no engine fixpoint
  runs at all);
* **changed** — the fingerprint moved: the spec is re-verified;
* **added** — a path the manifest has never seen;
* **removed** — a manifest path no longer on disk: the entry (and its
  ledger history) is dropped.

Invalidation rules, in order of precedence: a manifest schema bump
discards the whole file; a change to the verdict-relevant check
parameters (fairness mode, the LIGHT sampler seed) invalidates every
entry; a fingerprint change invalidates its own entry.  PARTIAL
verdicts are never stored — a budget cut is not a decision, so the
spec re-verifies on every run until a tier decides it.

The file is JSON, written atomically; losing it costs one cold run,
never a wrong verdict.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

__all__ = ["MANIFEST_SCHEMA_VERSION", "ManifestEntry", "ManifestDiff", "Manifest"]

#: Bumped whenever the stored layout or replay semantics change; a
#: mismatched manifest is discarded wholesale (one cold run re-fills).
MANIFEST_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ManifestEntry:
    """One spec's last verified state.

    Attributes:
        fingerprint: canonical program fingerprint the verdict is for.
        tier: tier the verdict was computed at (``light`` /
            ``standard`` / ``thorough``).
        holds: the verdict.
        text: the exact formatted verdict text, replayed byte for byte
            on a manifest hit.
    """

    fingerprint: str
    tier: str
    holds: bool
    text: str

    def to_payload(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "tier": self.tier,
            "holds": self.holds,
            "text": self.text,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ManifestEntry":
        return cls(
            fingerprint=str(payload["fingerprint"]),
            tier=str(payload["tier"]),
            holds=bool(payload["holds"]),
            text=str(payload["text"]),
        )


@dataclass
class ManifestDiff:
    """How a spec tree moved relative to its manifest.

    Attributes:
        unchanged: paths whose fingerprints (and parameters) match —
            replayable.
        changed: paths present in the manifest under a different
            fingerprint.
        added: paths the manifest has never seen.
        removed: manifest paths no longer present on disk.
        params_changed: the check parameters moved, so every
            present path was forced into ``changed``/``added``.
    """

    unchanged: List[str] = field(default_factory=list)
    changed: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    params_changed: bool = False


class Manifest:
    """The fingerprint manifest of one spec tree.

    Args:
        path: the manifest file; read eagerly (missing, damaged, or
            schema-mismatched files start empty), written only on
            :meth:`save`.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._entries: Dict[str, ManifestEntry] = {}
        self._params: Dict[str, object] = {}
        self.stale = False
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except FileNotFoundError:
            return
        except (OSError, ValueError):
            self.stale = True
            return
        if (
            not isinstance(raw, dict)
            or raw.get("v") != MANIFEST_SCHEMA_VERSION
            or not isinstance(raw.get("specs"), dict)
        ):
            self.stale = True
            return
        params = raw.get("params")
        self._params = dict(params) if isinstance(params, dict) else {}
        for key, payload in raw["specs"].items():
            if not isinstance(payload, dict):
                continue
            try:
                self._entries[str(key)] = ManifestEntry.from_payload(payload)
            except (KeyError, TypeError, ValueError):
                continue  # one bad entry costs one re-verify, nothing more

    @property
    def params(self) -> Mapping[str, object]:
        """The check parameters the stored verdicts were computed under."""
        return dict(self._params)

    def entry(self, key: str) -> Optional[ManifestEntry]:
        """The stored entry for ``key``, or ``None``."""
        return self._entries.get(key)

    def diff(
        self,
        fingerprints: Mapping[str, str],
        params: Mapping[str, object],
    ) -> ManifestDiff:
        """Classify every present path and spot removals.

        Args:
            fingerprints: fresh ``path -> fingerprint`` for every spec
                on disk, in report order.
            params: the verdict-relevant parameters of *this* run; when
                they differ from the stored ones every entry is
                invalidated (``params_changed``).
        """
        diff = ManifestDiff()
        stored_params = self._params
        diff.params_changed = bool(self._entries) and dict(params) != dict(
            stored_params
        )
        for key, fingerprint in fingerprints.items():
            entry = self._entries.get(key)
            if entry is None:
                diff.added.append(key)
            elif diff.params_changed or entry.fingerprint != fingerprint:
                diff.changed.append(key)
            else:
                diff.unchanged.append(key)
        diff.removed = sorted(
            key for key in self._entries if key not in fingerprints
        )
        return diff

    def store(
        self, key: str, entry: ManifestEntry, params: Mapping[str, object]
    ) -> None:
        """Record one verified spec (and pin the run parameters)."""
        self._entries[key] = entry
        self._params = dict(params)

    def remove(self, key: str) -> None:
        """Drop the entry of a spec that left the tree."""
        self._entries.pop(key, None)

    def save(self) -> None:
        """Persist atomically (temp file + rename)."""
        payload = {
            "v": MANIFEST_SCHEMA_VERSION,
            "params": self._params,
            "specs": {
                key: entry.to_payload()
                for key, entry in sorted(self._entries.items())
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(self.path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, indent=1)
            os.replace(temp_name, self.path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return len(self._entries)
