"""The persisted risk ledger feeding tier selection.

One small JSON file records, per spec *path*, the recent verification
outcomes — whether the verdict held, whether it was cut PARTIAL, the
tier it ran at, and the fingerprint it was computed for.  The ledger
is keyed by path (not fingerprint) deliberately: a spec that failed
last week and was edited since is exactly the spec that deserves a
THOROUGH re-check, and a fingerprint key would forget its history the
moment the content changed.

The file is written atomically (temp file + ``os.replace``), tolerates
a missing or damaged file by starting empty (the ledger is advisory —
losing it only costs tier optimality, never correctness), and keeps a
bounded number of outcomes per spec.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

__all__ = ["LEDGER_SCHEMA_VERSION", "MAX_OUTCOMES", "RiskLedger"]

#: Bumped when the on-disk layout changes; an unknown version is
#: discarded (advisory data, see the module docstring).
LEDGER_SCHEMA_VERSION = 1

#: Outcomes retained per spec — enough for every history rule in
#: :mod:`repro.tiering.select` with room to spare.
MAX_OUTCOMES = 10


class RiskLedger:
    """Per-spec verdict history, persisted as one JSON file.

    Args:
        path: where the ledger lives; read eagerly, written only on
            :meth:`save`.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._specs: Dict[str, List[Dict[str, object]]] = {}
        self.stale = False
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except FileNotFoundError:
            return
        except (OSError, ValueError):
            self.stale = True
            return
        if (
            not isinstance(raw, dict)
            or raw.get("v") != LEDGER_SCHEMA_VERSION
            or not isinstance(raw.get("specs"), dict)
        ):
            self.stale = True
            return
        for key, outcomes in raw["specs"].items():
            if not isinstance(outcomes, list):
                continue
            kept = [
                dict(outcome)
                for outcome in outcomes
                if isinstance(outcome, dict)
            ]
            if kept:
                self._specs[str(key)] = kept[-MAX_OUTCOMES:]

    def history(self, key: str) -> Tuple[Mapping[str, object], ...]:
        """Recent outcomes for ``key``, oldest first (empty when unknown)."""
        return tuple(self._specs.get(key, ()))

    def record(
        self,
        key: str,
        *,
        holds: bool,
        partial: bool,
        tier: str,
        fingerprint: str,
    ) -> None:
        """Append one outcome for ``key``, trimming to the retention cap."""
        outcomes = self._specs.setdefault(key, [])
        outcomes.append(
            {
                "holds": bool(holds),
                "partial": bool(partial),
                "tier": tier,
                "fingerprint": fingerprint,
            }
        )
        del outcomes[:-MAX_OUTCOMES]

    def forget(self, key: str) -> None:
        """Drop the history of a spec that no longer exists."""
        self._specs.pop(key, None)

    def save(self) -> None:
        """Persist atomically (temp file + rename)."""
        payload = {"v": LEDGER_SCHEMA_VERSION, "specs": self._specs}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(self.path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_name, self.path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        """Number of specs with recorded history."""
        return len(self._specs)
