"""The ``repro verify-tree`` driver: incremental tiered verification.

:func:`verify_tree` walks a directory of ``.gcl`` spec files and
brings the whole tree to a verified state with as little work as the
manifest allows:

1. every spec is parsed and fingerprinted
   (:func:`repro.parallel.program_fingerprint`, canonical text plus
   semantics flags);
2. the fingerprints are diffed against the
   :class:`~repro.tiering.manifest.Manifest` of the previous run —
   unchanged specs replay their stored verdict byte for byte (zero
   engine fixpoints), changed/new specs are re-verified;
3. each spec to verify gets a tier from
   :func:`~repro.tiering.select.select_tier` (size, ledger history,
   or the forced ``--tier``) and runs the corresponding check —
   THOROUGH is exactly ``repro check`` (full exhaustive plus the
   worst-case convergence metric), STANDARD is the budgeted exhaustive
   check, LIGHT is the seeded Monte-Carlo estimate;
4. verified specs fan out through the existing
   :class:`~repro.parallel.pool.WorkerPool` when ``--workers`` asks
   for it (``map`` preserves order, so stdout is identical at every
   worker count);
5. the manifest and the risk ledger are updated and saved.

Output contract: **stdout carries only the verdict texts**, one block
per spec in sorted path order — so a warm run's stdout is byte-
identical to the cold run's, and a THOROUGH-tier block is byte-
identical to ``repro check`` on that file.  Markers (``[cached]`` /
``[verified]`` with the tier) and the summary line go to stderr.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, TextIO, Tuple

from ..gcl.parser import parse_program
from ..gcl.program import Program
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from ..parallel import program_fingerprint, resolve_workers
from ..parallel.pool import (
    WorkerPool,
    worker_context,
    worker_instrumentation,
)
from .ledger import RiskLedger
from .manifest import Manifest, ManifestEntry
from .montecarlo import light_convergence_estimate
from .select import (
    DEFAULT_THRESHOLDS,
    Tier,
    TierThresholds,
    select_tier,
)

__all__ = ["SpecOutcome", "TreeReport", "verify_tree"]

#: Where the manifest and ledger live relative to the tree root when
#: the caller does not say otherwise.
DEFAULT_STATE_DIR = ".repro-verify"


@dataclass(frozen=True)
class SpecOutcome:
    """One spec's verdict in a tree run.

    Attributes:
        path: spec path relative to the tree root (the manifest key).
        tier: the tier the verdict came from.
        replayed: the verdict came from the manifest, not an engine.
        holds: the verdict.
        partial: the check was cut at its state budget (never stored).
        text: the formatted verdict block.
    """

    path: str
    tier: str
    replayed: bool
    holds: bool
    partial: bool
    text: str


@dataclass
class TreeReport:
    """Everything one :func:`verify_tree` run decided.

    Attributes:
        outcomes: per-spec verdicts in sorted path order.
        removed: manifest entries dropped because their spec left the
            tree.
        params_changed: the check parameters moved, so the whole
            manifest was invalidated.
    """

    outcomes: List[SpecOutcome] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    params_changed: bool = False

    @property
    def verified(self) -> int:
        return sum(1 for o in self.outcomes if not o.replayed)

    @property
    def replayed(self) -> int:
        return sum(1 for o in self.outcomes if o.replayed)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.holds)

    @property
    def ok(self) -> bool:
        """Every spec in the tree holds."""
        return self.failed == 0


def _check_spec(
    program: Program,
    tier: Tier,
    *,
    fairness: str,
    engine: str,
    seed: int,
    thresholds: TierThresholds,
    instrumentation: Instrumentation,
) -> Tuple[bool, bool, str]:
    """Run one spec at its tier; returns ``(holds, partial, text)``.

    The THOROUGH branch is parameter-for-parameter ``repro check``
    (full exhaustive, worst-case convergence metric included), which is
    what makes THOROUGH ``verify-tree`` blocks byte-identical to the
    direct command.
    """
    from ..checker import check_self_stabilization

    if tier is Tier.LIGHT:
        estimate = light_convergence_estimate(
            program, seed=seed, instrumentation=instrumentation
        )
        return estimate.holds, estimate.is_partial, estimate.format()
    if tier is Tier.STANDARD:
        result = check_self_stabilization(
            program,
            fairness=fairness,
            compute_steps=False,
            state_budget=thresholds.standard_state_budget,
            instrumentation=instrumentation,
            engine=engine,
        )
    else:
        result = check_self_stabilization(
            program,
            fairness=fairness,
            instrumentation=instrumentation,
            engine=engine,
        )
    return result.holds, result.is_partial, result.format()


def _verify_spec_task(relpath: str) -> Tuple[str, bool, bool, str]:
    """Pool task: verify the staged spec named ``relpath``.

    Runs in a forked worker; the parsed programs, tier decisions, and
    check parameters arrive copy-on-write through the pool context
    (:func:`repro.parallel.pool.worker_context`), only this path string
    and the small result tuple cross the pipe.
    """
    context = worker_context()
    jobs: Mapping[str, Tuple[Program, Tier]] = context["verify_jobs"]  # type: ignore[assignment]
    params: Mapping[str, object] = context["verify_params"]  # type: ignore[assignment]
    program, tier = jobs[relpath]
    holds, partial, text = _check_spec(
        program,
        tier,
        fairness=str(params["fairness"]),
        engine=str(params["engine"]),
        seed=int(params["seed"]),  # type: ignore[call-overload]
        thresholds=params["thresholds"],  # type: ignore[arg-type]
        instrumentation=worker_instrumentation(),
    )
    return relpath, holds, partial, text


def verify_tree(
    root: str,
    *,
    manifest_path: Optional[str] = None,
    ledger_path: Optional[str] = None,
    forced_tier: Optional[Tier] = None,
    fairness: str = "none",
    engine: str = "packed",
    seed: int = 0,
    workers: int = 1,
    thresholds: TierThresholds = DEFAULT_THRESHOLDS,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    out: Optional[TextIO] = None,
    err: Optional[TextIO] = None,
) -> TreeReport:
    """Verify every ``.gcl`` spec under ``root``, incrementally.

    Args:
        root: the spec tree; walked recursively, specs processed in
            sorted relative-path order.
        manifest_path: the fingerprint manifest (default
            ``<root>/.repro-verify/manifest.json``).
        ledger_path: the risk ledger (default next to the manifest).
        forced_tier: pin every re-verified spec to one tier; an
            unchanged manifest entry verified at a *different* tier is
            treated as changed (the stored verdict does not answer the
            question being asked).
        fairness: daemon fairness for the exhaustive tiers; part of
            the fingerprint semantics, so flipping it invalidates the
            manifest.
        engine: checker engine for the exhaustive tiers (excluded from
            fingerprints — verdicts are engine-identical).
        seed: the LIGHT sampler seed; a manifest parameter.
        workers: fan re-verified specs across this many forked workers
            (the verdict stream is order-preserved and identical at
            every count).
        thresholds: tier-selection tunables.
        instrumentation: observability sink (``tier.select`` events,
            ``verify.*`` counters, worker telemetry).
        out: verdict stream (stdout contract in the module docstring);
            the *current* ``sys.stdout`` when omitted.
        err: marker/summary stream (``sys.stderr`` when omitted).

    Returns:
        A :class:`TreeReport`; callers map ``report.ok`` to the exit
        status.

    Raises:
        FileNotFoundError: when ``root`` is not a directory.
    """
    # Resolved here, not in the defaults: binding the streams at
    # definition time would pin whatever sys.stdout was at import.
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    tree = Path(root)
    if not tree.is_dir():
        raise FileNotFoundError(f"spec tree {root!r} is not a directory")
    state_dir = tree / DEFAULT_STATE_DIR
    manifest = Manifest(manifest_path or state_dir / "manifest.json")
    ledger = RiskLedger(ledger_path or state_dir / "ledger.json")

    semantics = {"keep_stutter": True, "fairness": fairness}
    params: Dict[str, object] = {"fairness": fairness, "seed": seed}

    programs: Dict[str, Program] = {}
    fingerprints: Dict[str, str] = {}
    for path in sorted(tree.rglob("*.gcl")):
        relpath = path.relative_to(tree).as_posix()
        with open(path, "r", encoding="utf-8") as handle:
            program = parse_program(handle.read())
        programs[relpath] = program
        fingerprints[relpath] = program_fingerprint(
            program, semantics=semantics
        )

    diff = manifest.diff(fingerprints, params)
    replayable = []
    pending = sorted(diff.changed + diff.added)
    for relpath in diff.unchanged:
        entry = manifest.entry(relpath)
        if forced_tier is not None and entry is not None and (
            entry.tier != forced_tier.value
        ):
            pending.append(relpath)  # stored verdict answers another tier
        else:
            replayable.append(relpath)
    pending.sort()

    jobs: Dict[str, Tuple[Program, Tier]] = {}
    for relpath in pending:
        decision = select_tier(
            programs[relpath],
            label=relpath,
            history=ledger.history(relpath),
            forced=forced_tier,
            thresholds=thresholds,
            instrumentation=instrumentation,
        )
        jobs[relpath] = (programs[relpath], decision.tier)

    verified: Dict[str, Tuple[bool, bool, str]] = {}
    pool_workers = resolve_workers(workers) if pending else 1
    if pool_workers > 1:
        pool_params = dict(params, engine=engine, thresholds=thresholds)
        with WorkerPool(
            pool_workers, verify_jobs=jobs, verify_params=pool_params
        ) as pool:
            results = pool.map_observed(
                _verify_spec_task, pending, instrumentation
            )
        for relpath, holds, partial, text in results:
            verified[relpath] = (holds, partial, text)
    else:
        for relpath in pending:
            program, tier = jobs[relpath]
            verified[relpath] = _check_spec(
                program,
                tier,
                fairness=fairness,
                engine=engine,
                seed=seed,
                thresholds=thresholds,
                instrumentation=instrumentation,
            )

    report = TreeReport(params_changed=diff.params_changed)
    for relpath in sorted(fingerprints):
        if relpath in verified:
            holds, partial, text = verified[relpath]
            tier = jobs[relpath][1].value
            report.outcomes.append(
                SpecOutcome(relpath, tier, False, holds, partial, text)
            )
            ledger.record(
                relpath,
                holds=holds,
                partial=partial,
                tier=tier,
                fingerprint=fingerprints[relpath],
            )
            if not partial:
                manifest.store(
                    relpath,
                    ManifestEntry(
                        fingerprint=fingerprints[relpath],
                        tier=tier,
                        holds=holds,
                        text=text,
                    ),
                    params,
                )
            print(f"[verified] {relpath} tier={tier}", file=err)
        else:
            entry = manifest.entry(relpath)
            assert entry is not None  # replayable came from the manifest
            report.outcomes.append(
                SpecOutcome(
                    relpath, entry.tier, True, entry.holds, False, entry.text
                )
            )
            print(f"[cached] {relpath} tier={entry.tier}", file=err)
        print(report.outcomes[-1].text, file=out)

    for relpath in diff.removed:
        manifest.remove(relpath)
        ledger.forget(relpath)
        report.removed.append(relpath)
        print(f"[removed] {relpath}", file=err)

    manifest.save()
    ledger.save()

    instrumentation.count("verify.specs", len(report.outcomes))
    instrumentation.count("verify.verified", report.verified)
    instrumentation.count("verify.replayed", report.replayed)
    instrumentation.count("verify.removed", len(report.removed))
    instrumentation.count("verify.failed", report.failed)
    instrumentation.event(
        "verify.summary",
        root=str(tree),
        specs=len(report.outcomes),
        verified=report.verified,
        replayed=report.replayed,
        removed=len(report.removed),
        failed=report.failed,
        params_changed=diff.params_changed,
    )
    print(
        f"verify-tree: specs={len(report.outcomes)} "
        f"verified={report.verified} replayed={report.replayed} "
        f"removed={len(report.removed)} failed={report.failed}",
        file=err,
    )
    return report
