"""Adaptive tiered verification and fingerprint-incremental re-verification.

The checks of :mod:`repro.checker` are compositional: a verdict for a
spec does not change unless the program, the abstraction, or the check
semantics change.  This package exploits that twice over:

* :mod:`repro.tiering.select` — the **tier selector**: LIGHT (seeded
  Monte-Carlo estimate, :mod:`repro.tiering.montecarlo`), STANDARD
  (budgeted exhaustive), or THOROUGH (full exhaustive plus refinement
  witnesses), chosen per spec from its size, its verdict history
  (:mod:`repro.tiering.ledger`), or an explicit override — every
  decision explained by a ``tier.select`` event;
* :mod:`repro.tiering.manifest` + :mod:`repro.tiering.runner` — the
  **incremental layer**: ``repro verify-tree <dir>`` diffs canonical
  program fingerprints against the previous run's manifest and
  re-verifies only what changed, replaying unchanged verdicts byte
  for byte with zero engine fixpoints.

See ``docs/PERFORMANCE.md`` ("Tiered and incremental verification")
for the selection matrix, the manifest format, and the invalidation
rules.
"""

from .ledger import LEDGER_SCHEMA_VERSION, MAX_OUTCOMES, RiskLedger
from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    Manifest,
    ManifestDiff,
    ManifestEntry,
)
from .montecarlo import LightVerdict, light_convergence_estimate
from .runner import SpecOutcome, TreeReport, verify_tree
from .select import (
    DEFAULT_THRESHOLDS,
    Tier,
    TierDecision,
    TierThresholds,
    select_tier,
    spec_cells,
)

__all__ = [
    "Tier",
    "TierThresholds",
    "DEFAULT_THRESHOLDS",
    "TierDecision",
    "select_tier",
    "spec_cells",
    "RiskLedger",
    "LEDGER_SCHEMA_VERSION",
    "MAX_OUTCOMES",
    "Manifest",
    "ManifestDiff",
    "ManifestEntry",
    "MANIFEST_SCHEMA_VERSION",
    "LightVerdict",
    "light_convergence_estimate",
    "SpecOutcome",
    "TreeReport",
    "verify_tree",
]
