"""Mixed-radix state interning: dense integer codes for schema states.

The packed engine replaces tuple states with dense ``int`` codes.  A
:class:`StateInterner` fixes the bijection: the code of a state is its
index in the schema's lexicographic enumeration order (the order of
``StateSchema.states()``), with the *first* schema variable most
significant.  ``encode`` and ``decode`` are exact inverses, and the
ordering invariant::

    interner.encode(state) == list(schema.states()).index(state)

is what lets the bitset fixpoints iterate codes in ascending order and
still decode back to the same schema-order sets the tuple engine
produces.

Packing is refused (``unpackable_reason``) when the state space is too
large for a byte-per-state flag array; callers fall back to the tuple
engine in that case.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.errors import StateSpaceError
from ..core.state import State, StateSchema

__all__ = [
    "MAX_PACKED_STATES",
    "StateInterner",
    "can_pack",
    "unpackable_reason",
]

#: Ceiling on packable state-space sizes: the fixpoints allocate a
#: byte-per-state flag array, so 2**22 states is a 4 MiB bound.
MAX_PACKED_STATES: int = 1 << 22


def unpackable_reason(schema: StateSchema) -> Optional[str]:
    """Why ``schema`` cannot be packed, or ``None`` if it can.

    The only structural obstruction is size: every finite schema has a
    mixed-radix encoding, but the packed fixpoints allocate flag
    arrays proportional to the state count.
    """
    size = schema.size()
    if size > MAX_PACKED_STATES:
        return (
            f"state space has {size} states, above the packed-engine "
            f"ceiling of {MAX_PACKED_STATES}"
        )
    return None


def can_pack(schema: StateSchema) -> bool:
    """Boolean form of :func:`unpackable_reason`."""
    return unpackable_reason(schema) is None


class StateInterner:
    """The mixed-radix bijection between schema states and dense ints.

    Codes run from ``0`` to ``schema.size() - 1`` and enumerate the
    state space in exactly the order of ``schema.states()``.

    Args:
        schema: the state schema to intern.
        enforce_ceiling: when ``False`` the :data:`MAX_PACKED_STATES`
            size check is skipped — the shared-memory engine streams
            code chunks and bit-packed flags instead of byte-per-state
            arrays, so the ceiling's rationale does not apply to it.
            The arithmetic itself is exact at any size.

    Raises:
        ValueError: if the schema is unpackable (see
            :func:`unpackable_reason`) and the ceiling is enforced.
    """

    __slots__ = ("_schema", "_names", "_domains", "_places", "_digit_maps", "size")

    def __init__(self, schema: StateSchema, enforce_ceiling: bool = True):
        reason = unpackable_reason(schema) if enforce_ceiling else None
        if reason is not None:
            raise ValueError(f"schema is not packable: {reason}")
        self._schema = schema
        self._names: Tuple[str, ...] = schema.names
        self._domains: Tuple[Tuple[object, ...], ...] = schema.domains
        # First variable most significant: place value of position i is
        # the product of the radices to its right.
        places: List[int] = [1] * len(self._domains)
        for i in range(len(self._domains) - 2, -1, -1):
            places[i] = places[i + 1] * len(self._domains[i + 1])
        self._places: Tuple[int, ...] = tuple(places)
        self._digit_maps: Tuple[Dict[object, int], ...] = tuple(
            {value: digit for digit, value in enumerate(domain)}
            for domain in self._domains
        )
        self.size: int = schema.size()

    @property
    def schema(self) -> StateSchema:
        """The schema this interner encodes."""
        return self._schema

    def places_by_name(self) -> Dict[str, int]:
        """Per-variable place values, keyed by name (for kernels)."""
        return dict(zip(self._names, self._places))

    def digit_maps_by_name(self) -> Dict[str, Dict[object, int]]:
        """Per-variable value->digit maps, keyed by name (for kernels)."""
        return dict(zip(self._names, self._digit_maps))

    def encode(self, state: State) -> int:
        """The dense code of ``state``.

        Raises:
            StateSpaceError: if ``state`` is not a member of the schema
                (wrong arity or an out-of-domain component) — the same
                error ``schema.validate`` raises.
        """
        if not isinstance(state, tuple) or len(state) != len(self._names):
            self._schema.validate(state)  # raises the canonical arity error
        code = 0
        try:
            for value, digit_map, place in zip(state, self._digit_maps, self._places):
                code += digit_map[value] * place
        except (KeyError, TypeError):
            self._schema.validate(state)  # raises the canonical domain error
            raise StateSpaceError(
                f"state {state!r} has an unencodable component"
            )  # pragma: no cover - validate always raises first
        return code

    def decode(self, code: int) -> State:
        """The state tuple of ``code`` (exact inverse of :meth:`encode`).

        Raises:
            ValueError: if ``code`` is outside ``[0, size)``.
        """
        if not 0 <= code < self.size:
            raise ValueError(
                f"packed code {code} is outside the state space [0, {self.size})"
            )
        values: List[object] = [None] * len(self._domains)
        remaining = code
        for i in range(len(self._domains) - 1, -1, -1):
            remaining, digit = divmod(remaining, len(self._domains[i]))
            values[i] = self._domains[i][digit]
        return tuple(values)

    def decode_env(self, code: int) -> Dict[str, object]:
        """The name->value environment of ``code`` (for guard evaluation)."""
        return dict(zip(self._names, self.decode(code)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateInterner({self._schema.describe()})"
