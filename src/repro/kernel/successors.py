"""Compiled successor kernels: packed transitions generated on the fly.

A :class:`PackedKernel` is the packed engine's replacement for an
eagerly compiled :class:`~repro.core.system.System`: a successor
*function* over dense int codes, memoized per state, with no global
transition table.  Two constructors:

* :meth:`PackedKernel.from_program` lowers a guarded-command program
  directly.  Under the plain central daemon each action's parallel
  assignment becomes a **digit-delta** update on the mixed-radix code
  (no pack/unpack of the successor tuple at all); other daemons route
  through the daemon's ``steps`` and pack once per move.  Out-of-domain
  writes raise exactly the :class:`~repro.core.errors.GCLError` that
  ``compile_program`` raises.
* :meth:`PackedKernel.from_system` wraps an existing ``System``
  (encode/decode at the edges) so every checker entry point accepts
  both representations.

``materialize()`` produces — and caches — the tuple ``System`` for the
rare phases that need one (witness reconstruction under strong
fairness); for program-built kernels it is byte-identical to
``program.compile()`` because it *is* ``compile_program`` on the same
inputs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import GCLError
from ..core.state import StateSchema
from ..core.system import System
from ..gcl.daemon import CentralDaemon, Daemon
from ..gcl.program import Program
from ..gcl.semantics import compile_program
from .interner import StateInterner

__all__ = ["PackedKernel"]


class PackedKernel:
    """A packed transition relation: codes in, successor codes out.

    Successor tuples are deduplicated, sorted ascending, and memoized
    per source code — the fixpoints revisit states freely.
    """

    __slots__ = (
        "interner",
        "name",
        "size",
        "initial_codes",
        "_successors_of",
        "_memo",
        "_materializer",
        "_materialized",
    )

    def __init__(
        self,
        interner: StateInterner,
        successors_of: Callable[[int], Tuple[int, ...]],
        initial_codes: Tuple[int, ...],
        name: str,
        materializer: Callable[[], System],
    ):
        self.interner = interner
        self.name = name
        self.size = interner.size
        self.initial_codes = initial_codes
        self._successors_of = successors_of
        self._memo: List[Optional[Tuple[int, ...]]] = [None] * interner.size
        self._materializer = materializer
        self._materialized: Optional[System] = None

    @property
    def schema(self) -> StateSchema:
        """The schema of the packed state space."""
        return self.interner.schema

    def successors(self, code: int) -> Tuple[int, ...]:
        """Successor codes of ``code``, ascending, memoized."""
        cached = self._memo[code]
        if cached is None:
            cached = self._successors_of(code)
            self._memo[code] = cached
        return cached

    def clear_memo(self) -> int:
        """Drop every memoized successor tuple; returns the count dropped.

        The checkers call this between phases once a kernel's successor
        function is no longer needed (e.g. the abstraction kernel after
        the core fixpoint) so the memo table — which otherwise grows
        unboundedly across phases — is released eagerly.
        """
        evicted = sum(1 for entry in self._memo if entry is not None)
        self._memo = [None] * self.size
        return evicted

    def materialize(self) -> System:
        """The equivalent tuple-state ``System`` (cached on first call)."""
        if self._materialized is None:
            self._materialized = self._materializer()
        return self._materialized

    @classmethod
    def from_program(
        cls,
        program: Program,
        daemon: Optional[Daemon] = None,
        keep_stutter: bool = True,
        name: Optional[str] = None,
    ) -> "PackedKernel":
        """Lower ``program`` to a packed kernel (no transition table).

        Mirrors :func:`~repro.gcl.semantics.compile_program` exactly:
        same daemon default, same stutter handling, same system name,
        and the same :class:`GCLError` on out-of-domain writes.
        """
        chosen = daemon or CentralDaemon()
        schema = program.schema()
        interner = StateInterner(schema)
        system_name = name or (
            program.name
            if chosen.name == "central"
            else f"{program.name}@{chosen.name}"
        )
        actions = tuple(program.actions)
        if type(chosen) is CentralDaemon:
            places = interner.places_by_name()
            digit_maps = interner.digit_maps_by_name()

            def central_successors(code: int) -> Tuple[int, ...]:
                env = interner.decode_env(code)
                found: List[int] = []
                for action in actions:
                    if not action.enabled(env):
                        continue
                    # Parallel assignment: all right-hand sides read the
                    # pre-state.  Evaluation errors propagate raw, as
                    # they do from ``daemon.steps`` in compile_program.
                    updates = [
                        (target, expr.eval(env))
                        for target, expr in action.assignments.items()
                    ]
                    try:
                        new_code = code
                        for target, value in updates:
                            new_code += (
                                digit_maps[target][value]
                                - digit_maps[target][env[target]]
                            ) * places[target]
                    except (KeyError, TypeError):
                        # Unknown variable or out-of-domain value: take
                        # the tuple path to raise compile_program's error.
                        new_code = _pack_move(
                            interner, program, action.execute(env),
                            (action.name,), code,
                        )
                    if not keep_stutter and new_code == code:
                        continue
                    found.append(new_code)
                return tuple(sorted(set(found)))

            successors_of = central_successors
        else:

            def daemon_successors(code: int) -> Tuple[int, ...]:
                env = interner.decode_env(code)
                found: List[int] = []
                for new_env, action_labels in chosen.steps(actions, env):
                    new_code = _pack_move(
                        interner, program, new_env, action_labels, code
                    )
                    if not keep_stutter and new_code == code:
                        continue
                    found.append(new_code)
                return tuple(sorted(set(found)))

            successors_of = daemon_successors

        initial_codes = tuple(
            sorted(interner.encode(state) for state in program.initial_states())
        )

        def materializer() -> System:
            return compile_program(program, chosen, keep_stutter, system_name)

        return cls(interner, successors_of, initial_codes, system_name, materializer)

    @classmethod
    def from_system(cls, system: System) -> "PackedKernel":
        """Wrap an already-compiled ``System`` as a packed kernel."""
        interner = StateInterner(system.schema)

        def successors_of(code: int) -> Tuple[int, ...]:
            state = interner.decode(code)
            return tuple(
                sorted(interner.encode(target) for target in system.successors(state))
            )

        initial_codes = tuple(
            sorted(interner.encode(state) for state in system.initial)
        )
        return cls(
            interner, successors_of, initial_codes, system.name, lambda: system
        )


def _pack_move(
    interner: StateInterner,
    program: Program,
    new_env: Dict[str, object],
    action_labels: Tuple[str, ...],
    source_code: int,
) -> int:
    """Pack one daemon move, raising compile_program's exact error."""
    schema = interner.schema
    try:
        successor = schema.pack(new_env)
    except Exception as exc:
        state = interner.decode(source_code)
        raise GCLError(
            f"program {program.name!r}: action(s) {action_labels} drive "
            f"the state out of domain from {schema.format_state(state)}: {exc}"
        )
    return interner.encode(successor)
