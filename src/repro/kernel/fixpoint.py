"""Bitset fixpoints over packed state codes.

Packed re-implementations of the checker's hot set computations —
reachability, the behavioural-core greatest fixpoint, cycle/terminal
detection, and the worst-case convergence metric — operating on flag
arrays indexed by interner codes instead of Python sets of tuples.

Every function here computes exactly the set its tuple counterpart in
:mod:`repro.checker.convergence` / :mod:`repro.checker.graph`
computes (the eviction operator is monotone, so iteration order is
free), and emits the same observability counters.  The one documented
divergence is ``check.fixpoint.iterations`` and the per-iteration
events: the sequential packed sweep visits codes in ascending order
while the tuple sweep visits set order, so Gauss–Seidel round *counts*
may differ even though the fixpoint — and the total
``check.states.evicted`` — are identical (the same caveat PR 3
documents for Jacobi rounds at ``workers > 1``).

Parallelism mirrors :mod:`repro.parallel.sharding`, but shards on the
packed int itself (``code % batches``) — no ``repr`` hashing.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from ..obs import NULL_INSTRUMENTATION, Instrumentation, ProgressEmitter
from ..parallel.pool import (
    WorkerPool,
    contiguous_chunks,
    worker_context,
    worker_instrumentation,
)
from ..resilience import chaos

#: Sequential loops report progress once per this many expansions —
#: frequent enough for a live ticker, cheap enough to disappear in the
#: noise (the emitter itself throttles on wall time on top of this).
_HEARTBEAT_EVERY = 4096
from .bitset import make_flags

__all__ = [
    "SuccessorFn",
    "packed_reachable",
    "packed_core",
    "packed_has_cycle",
    "packed_terminals",
    "packed_longest_path",
]

#: A packed successor function: code in, ascending successor codes out.
SuccessorFn = Callable[[int], Tuple[int, ...]]

#: Shard batches per worker per round (mirrors ``repro.parallel.sharding``).
_BATCHES_PER_WORKER = 4


def _expand_batch(batch: List[int]) -> List[int]:
    """Worker task: expand one batch of frontier codes."""
    succ_of: SuccessorFn = worker_context()["packed_succ"]
    obs = worker_instrumentation()
    found: List[int] = []
    with obs.span("parallel.worker.expand", batch=len(batch)):
        for code in batch:
            successors = succ_of(code)
            obs.observe("parallel.worker.fan_out", len(successors))
            found.extend(successors)
    obs.count("parallel.worker.batches")
    obs.count("parallel.worker.states.expanded", len(batch))
    return found


def _filter_chunk(chunk: List[int]) -> List[int]:
    """Worker task: keep the codes satisfying the staged predicate."""
    predicate: Callable[[int], bool] = worker_context()["packed_predicate"]
    obs = worker_instrumentation()
    with obs.span("parallel.worker.filter", batch=len(chunk)):
        kept = [code for code in chunk if predicate(code)]
    obs.count("parallel.worker.batches")
    obs.count("parallel.worker.states.scanned", len(chunk))
    return kept


def packed_reachable(
    succ_of: SuccessorFn,
    sources: Iterable[int],
    size: int,
    workers: int = 1,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> bytearray:
    """Flags of the codes reachable from ``sources`` (inclusive).

    Sequentially a plain stack search; above one worker a round-based
    sharded BFS where frontier codes are routed to the shard
    ``code % batches`` — the packed analogue of the tuple engine's
    ``stable_state_hash`` routing, with the same ``parallel.*``
    counters.
    """
    seen = make_flags(size)
    initial: List[int] = []
    for code in sources:
        if not seen[code]:
            seen[code] = 1
            initial.append(code)
    progress = ProgressEmitter(instrumentation, "packed.reachable")
    # Resolved once per call: with no active fault plan the hook is a
    # single ``is not None`` test per expansion, free in the hot loop.
    chaos_hook = (
        chaos.engine_states if chaos.active_plan() is not None else None
    )
    if workers <= 1:
        stack = initial
        expanded = 0
        while stack:
            code = stack.pop()
            expanded += 1
            if chaos_hook is not None:
                chaos_hook("packed", expanded)
            if progress.enabled and expanded % _HEARTBEAT_EVERY == 0:
                progress.tick(0, len(stack), expanded)
            for successor in succ_of(code):
                if not seen[successor]:
                    seen[successor] = 1
                    stack.append(successor)
        return seen
    n_batches = workers * _BATCHES_PER_WORKER
    frontier = sorted(initial)
    rounds = 0
    expanded = 0
    with WorkerPool(workers, packed_succ=succ_of) as pool:
        while frontier:
            instrumentation.count("parallel.rounds", 1)
            instrumentation.count("parallel.states.expanded", len(frontier))
            instrumentation.observe("parallel.frontier.size", len(frontier))
            rounds += 1
            expanded += len(frontier)
            if chaos_hook is not None:
                chaos_hook("packed", expanded)
            progress.tick(rounds, len(frontier), expanded)
            sharded: List[List[int]] = [[] for _ in range(n_batches)]
            for code in frontier:
                sharded[code % n_batches].append(code)
            batches = [batch for batch in sharded if batch]
            instrumentation.count("parallel.batches", len(batches))
            next_frontier: List[int] = []
            for found in pool.map_observed(
                _expand_batch, batches, instrumentation
            ):
                for code in found:
                    if not seen[code]:
                        seen[code] = 1
                        next_frontier.append(code)
            frontier = sorted(next_frontier)
    return seen


def _must_evict_packed(
    code: int,
    concrete_succ: SuccessorFn,
    abstract_succ: SuccessorFn,
    image_of: Sequence[int],
    member_flags: Sequence[int],
    stutter_insensitive: bool,
    fairness_ignores_stutter: bool,
) -> bool:
    """Packed transliteration of ``checker.convergence._must_evict``."""
    image = image_of[code]
    image_successors = abstract_succ(image)
    progress = False
    for successor in concrete_succ(code):
        target_image = image_of[successor]
        if successor == code:
            if image in image_successors:
                progress = True
                continue
            if stutter_insensitive or fairness_ignores_stutter:
                continue  # ignorable stutter, no progress
            return True
        if not member_flags[successor]:
            return True
        if target_image == image and stutter_insensitive:
            progress = True
            continue
        if target_image not in image_successors:
            return True
        progress = True
    if not progress:
        # Effectively terminal: must match a terminal abstract state.
        return bool(image_successors)
    return False


def packed_core(
    concrete_succ: SuccessorFn,
    abstract_succ: SuccessorFn,
    image_of: Sequence[int],
    legitimate: bytearray,
    size: int,
    stutter_insensitive: bool,
    fairness_ignores_stutter: bool,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    workers: int = 1,
) -> bytearray:
    """The behavioural core as flags over concrete codes.

    Same greatest fixpoint as ``checker.convergence.behavioural_core``:
    candidates are the codes whose image is legitimate, then states
    with escaping transitions or premature deadlocks are evicted until
    stable.  ``image_of[code]`` may be ``-1`` for states whose image
    is not a valid abstract state; they are simply never candidates.
    """
    flags = make_flags(size)
    remaining = 0
    if workers > 1:
        chunks = contiguous_chunks(list(range(size)), workers)
        instrumentation.count("parallel.batches", len(chunks))
        instrumentation.count("parallel.states.expanded", size)

        def is_candidate(code: int) -> bool:
            image = image_of[code]
            return image >= 0 and bool(legitimate[image])

        with WorkerPool(workers, packed_predicate=is_candidate) as pool:
            for kept in pool.map_observed(
                _filter_chunk, chunks, instrumentation
            ):
                for code in kept:
                    flags[code] = 1
                    remaining += 1
    else:
        for code in range(size):
            image = image_of[code]
            if image >= 0 and legitimate[image]:
                flags[code] = 1
                remaining += 1
    instrumentation.count("check.states.enumerated", size)
    instrumentation.count("check.candidates.initial", remaining)
    progress = ProgressEmitter(instrumentation, "packed.core")
    chaos_hook = (
        chaos.engine_states if chaos.active_plan() is not None else None
    )
    if chaos_hook is not None:
        chaos_hook("packed", size)
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        if chaos_hook is not None:
            # Cumulative enumeration: the candidate scan plus one full
            # membership sweep per fixpoint round.
            chaos_hook("packed", size * (iterations + 1))
        evicted = 0
        if workers > 1:
            members = [code for code in range(size) if flags[code]]
            snapshot = bytes(flags)

            def evicts(code: int) -> bool:
                return _must_evict_packed(
                    code, concrete_succ, abstract_succ, image_of, snapshot,
                    stutter_insensitive, fairness_ignores_stutter,
                )

            chunks = contiguous_chunks(members, workers)
            instrumentation.count("parallel.batches", len(chunks))
            instrumentation.count("parallel.states.expanded", len(members))
            with WorkerPool(workers, packed_predicate=evicts) as pool:
                for kicked in pool.map_observed(
                    _filter_chunk, chunks, instrumentation
                ):
                    for code in kicked:
                        flags[code] = 0
                        evicted += 1
        else:
            for code in range(size):
                if flags[code] and _must_evict_packed(
                    code, concrete_succ, abstract_succ, image_of, flags,
                    stutter_insensitive, fairness_ignores_stutter,
                ):
                    flags[code] = 0
                    evicted += 1
        changed = evicted > 0
        remaining -= evicted
        instrumentation.event(
            "check.fixpoint.iteration",
            index=iterations,
            evicted=evicted,
            remaining=remaining,
        )
        instrumentation.count("check.states.evicted", evicted)
        instrumentation.observe("check.round.evicted", evicted)
        progress.tick(iterations, remaining, size * iterations)
    instrumentation.count("check.fixpoint.iterations", iterations)
    return flags


def packed_has_cycle(succ_of: SuccessorFn, region: bytearray) -> bool:
    """Whether a cycle (including a self-loop) lies within ``region``.

    ``succ_of`` must already reflect the analysis semantics (callers
    filter self-loops for weak/strong fairness before passing it in).
    """
    size = len(region)
    color = bytearray(size)  # 0 white, 1 gray, 2 black
    for root in range(size):
        if not region[root] or color[root]:
            continue
        color[root] = 1
        stack: List[Tuple[int, Iterable[int]]] = [(root, iter(succ_of(root)))]
        while stack:
            code, pending = stack[-1]
            descended = False
            for successor in pending:
                if not region[successor]:
                    continue
                if color[successor] == 1:
                    return True
                if color[successor] == 0:
                    color[successor] = 1
                    stack.append((successor, iter(succ_of(successor))))
                    descended = True
                    break
            if not descended:
                color[code] = 2
                stack.pop()
    return False


def packed_terminals(succ_of: SuccessorFn, region: bytearray) -> List[int]:
    """Codes in ``region`` with no successors at all, ascending."""
    return [
        code
        for code in range(len(region))
        if region[code] and not succ_of(code)
    ]


def packed_longest_path(succ_of: SuccessorFn, outside: bytearray) -> int:
    """Longest transition path staying within the ``outside`` region.

    Packed transliteration of
    ``checker.convergence.worst_case_convergence_steps``: memoized
    longest-path DFS over the (assumed acyclic) region, where a step
    landing outside the region (i.e. into the core) still counts as
    one step.

    Raises:
        ValueError: if a cycle is found after all, with the tuple
            engine's exact message.
    """
    depth: Dict[int, int] = {}
    in_progress: Set[int] = set()
    for root in range(len(outside)):
        if not outside[root] or root in depth:
            continue
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            code, expanded = stack.pop()
            if expanded:
                best = 0
                for successor in succ_of(code):
                    if outside[successor]:
                        best = max(best, 1 + depth[successor])
                    else:
                        best = max(best, 1)
                depth[code] = best
                in_progress.discard(code)
                continue
            if code in depth:
                continue
            if code in in_progress:
                raise ValueError("cycle outside the core; check stabilization first")
            in_progress.add(code)
            stack.append((code, True))
            for successor in succ_of(code):
                if outside[successor] and successor not in depth:
                    if successor in in_progress:
                        raise ValueError(
                            "cycle outside the core; check stabilization first"
                        )
                    stack.append((successor, False))
    return max(depth.values(), default=0)
