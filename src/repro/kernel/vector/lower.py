"""Expression lowering: GCL ASTs to NumPy array evaluators.

``lower_expr`` turns an expression that passed the static analysis of
:mod:`.analyze` into a closure over an *array environment* — a mapping
from variable name to an int64 array of that variable's value in each
state of a batch.  Boolean-typed nodes return boolean arrays, integer
nodes int64 arrays; scalars (from constants) are left to NumPy
broadcasting.

The semantics match per-state evaluation exactly on statically typed
programs: comparisons between bools and ints agree because bool is an
int subtype in Python and bools are carried as 0/1 in int64 arrays;
``%`` follows the divisor's sign in both Python and NumPy; ``&&`` /
``||`` evaluate both operands, which is observationally identical to
the evaluator's short-circuit because the language is effect-free and
analysis guarantees neither operand can raise.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ...gcl import expr as ast
from .analyze import BOOL, expr_type

__all__ = ["ArrayEnv", "ArrayFn", "lower_expr"]

#: A batch environment: variable name -> int64 value array (one entry
#: per state in the batch; bools are carried as 0/1).
ArrayEnv = Dict[str, np.ndarray]

#: A lowered expression: array environment in, value array (or NumPy
#: scalar, for constant subtrees) out.
ArrayFn = Callable[[ArrayEnv], np.ndarray]


def lower_expr(node: ast.Expr, var_types: Dict[str, str]) -> ArrayFn:
    """Lower one statically typed expression to an array evaluator.

    Raises:
        ValueError: if the expression does not type under
            :func:`.analyze.expr_type` (callers are expected to have
            gated on :func:`.analyze.unlowerable_reason` already).
    """
    if expr_type(node, var_types) is None:
        raise ValueError(f"expression {node.render()} is not lowerable")
    return _lower(node, var_types)


def _lower(node: ast.Expr, var_types: Dict[str, str]) -> ArrayFn:
    if isinstance(node, ast.Var):
        name = node.name
        if var_types[name] == BOOL:
            return lambda env: env[name] != 0
        return lambda env: env[name]
    if isinstance(node, ast.Const):
        if isinstance(node.value, bool):
            constant_bool = np.bool_(node.value)
            return lambda env: constant_bool
        constant_int = np.int64(node.value)
        return lambda env: constant_int
    if isinstance(node, ast.Not):
        operand = _lower(node.operand, var_types)
        return lambda env: ~operand(env)
    if isinstance(node, ast.And):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: left(env) & right(env)
    if isinstance(node, ast.Or):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: left(env) | right(env)
    if isinstance(node, ast.Implies):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: ~left(env) | right(env)
    if isinstance(node, ast.Eq):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: left(env) == right(env)
    if isinstance(node, ast.Ne):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: left(env) != right(env)
    if isinstance(node, ast.Lt):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: left(env) < right(env)
    if isinstance(node, ast.Le):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: left(env) <= right(env)
    if isinstance(node, ast.Gt):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: left(env) > right(env)
    if isinstance(node, ast.Ge):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: left(env) >= right(env)
    if isinstance(node, ast.Add):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: left(env) + right(env)
    if isinstance(node, ast.Sub):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: left(env) - right(env)
    if isinstance(node, ast.Mul):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: left(env) * right(env)
    if isinstance(node, ast.Mod):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        return lambda env: left(env) % right(env)
    if isinstance(node, ast.AddMod):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        modulus = np.int64(node.modulus)
        return lambda env: (left(env) + right(env)) % modulus
    if isinstance(node, ast.SubMod):
        left, right = _lower(node.left, var_types), _lower(node.right, var_types)
        modulus = np.int64(node.modulus)
        return lambda env: (left(env) - right(env)) % modulus
    if isinstance(node, ast.Ite):
        condition = _lower(node.condition, var_types)
        then = _lower(node.then, var_types)
        otherwise = _lower(node.otherwise, var_types)
        return lambda env: np.where(condition(env), then(env), otherwise(env))
    raise ValueError(
        f"no lowering for expression node {type(node).__name__}"
    )  # pragma: no cover - expr_type rejects unknown nodes first
