"""Static lowerability analysis for the vector engine (NumPy-free).

The vector engine lowers guard predicates and assignment right-hand
sides to whole-array NumPy operations.  Array evaluation cannot raise
the per-state :class:`~repro.core.errors.GCLEvalError` a dynamically
ill-typed expression would raise on the tuple engine, so lowering is
only attempted for programs this module can *statically* type: every
domain is made of plain ints or bools, every expression type-checks
under the simple int/bool discipline the evaluator enforces at
runtime, and every modulus is a provably non-zero constant.  Anything
else falls back to the packed engine, whose per-state evaluation
reproduces the tuple engine's errors exactly.

Nothing here imports NumPy: the analysis (and so the engine-selection
fallback path) must run on a pure-Python install.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from ...gcl import expr as ast
from ...gcl.daemon import CentralDaemon, Daemon
from ...gcl.program import Program

__all__ = [
    "BOOL",
    "INT",
    "MAX_VECTOR_CELLS",
    "MAX_VECTOR_CELLS_ENV",
    "domain_type",
    "effective_max_vector_cells",
    "expr_type",
    "structural_unlowerable_reason",
    "unlowerable_reason",
]

#: Expression/domain types of the static discipline.
BOOL = "bool"
INT = "int"

#: Default ceiling on ``|Sigma| * (actions + variables)``: the vector
#: kernel materializes one full-space int64/bool array per action and
#: per variable, so this caps its resident footprint at a few hundred
#: MiB (the packed engine, which stays lazy, picks up anything larger).
#: Override per process with :data:`MAX_VECTOR_CELLS_ENV` or per call
#: with the ``max_cells`` keyword of :func:`unlowerable_reason`.
MAX_VECTOR_CELLS: int = 1 << 25

#: Environment variable overriding :data:`MAX_VECTOR_CELLS`.
MAX_VECTOR_CELLS_ENV = "REPRO_MAX_VECTOR_CELLS"


def effective_max_vector_cells() -> int:
    """The vector-cell ceiling in force: env override or the default.

    Read at call time (not import time) so tests and long-lived
    processes can retune it.  Unparsable or non-positive values fall
    back to the default — a misconfigured environment must degrade a
    check to the packed engine, never crash it.
    """
    raw = os.environ.get(MAX_VECTOR_CELLS_ENV)
    if raw is None:
        return MAX_VECTOR_CELLS
    try:
        value = int(raw, 0)
    except ValueError:
        return MAX_VECTOR_CELLS
    return value if value > 0 else MAX_VECTOR_CELLS


def domain_type(values: Sequence[object]) -> Optional[str]:
    """The static type of a domain, or ``None`` when not lowerable.

    A domain lowers when its values are all bools or all non-bool ints
    (an int64 lookup table then maps digits to values) and are
    pairwise distinct (the value->digit inverse must be a function).
    """
    if len(set(values)) != len(values):
        return None
    if all(isinstance(value, bool) for value in values):
        return BOOL
    if all(
        isinstance(value, int) and not isinstance(value, bool) for value in values
    ):
        return INT
    return None


def expr_type(node: ast.Expr, var_types: Dict[str, str]) -> Optional[str]:
    """The static type of an expression, or ``None`` when not lowerable.

    Mirrors the evaluator's runtime checks (``_require_bool`` /
    ``_require_int``) conservatively: an expression types only when no
    reachable evaluation could raise, so the lowered array semantics
    agree with per-state evaluation on every state.
    """
    if isinstance(node, ast.Var):
        return var_types.get(node.name)
    if isinstance(node, ast.Const):
        if isinstance(node.value, bool):
            return BOOL
        if isinstance(node.value, int):
            return INT
        return None
    if isinstance(node, ast.Not):
        return BOOL if expr_type(node.operand, var_types) == BOOL else None
    if isinstance(node, (ast.And, ast.Or, ast.Implies)):
        if (
            expr_type(node.left, var_types) == BOOL
            and expr_type(node.right, var_types) == BOOL
        ):
            return BOOL
        return None
    if isinstance(node, (ast.Eq, ast.Ne)):
        # Equality is untyped at runtime; both sides merely need to
        # lower.  Bool-vs-int comparisons agree between Python and
        # int64 arrays because bool is an int subtype on both sides.
        if (
            expr_type(node.left, var_types) is not None
            and expr_type(node.right, var_types) is not None
        ):
            return BOOL
        return None
    if isinstance(node, (ast.Lt, ast.Le, ast.Gt, ast.Ge)):
        if (
            expr_type(node.left, var_types) == INT
            and expr_type(node.right, var_types) == INT
        ):
            return BOOL
        return None
    if isinstance(node, ast.Mod):
        # The evaluator raises on modulus zero; only a provably
        # non-zero constant divisor is statically safe.
        if not isinstance(node.right, ast.Const):
            return None
        if not isinstance(node.right.value, int) or isinstance(node.right.value, bool):
            return None
        if node.right.value == 0:
            return None
        return INT if expr_type(node.left, var_types) == INT else None
    if isinstance(node, (ast.Add, ast.Sub, ast.Mul)):
        if (
            expr_type(node.left, var_types) == INT
            and expr_type(node.right, var_types) == INT
        ):
            return INT
        return None
    if isinstance(node, (ast.AddMod, ast.SubMod)):
        # The modulus is a constructor-validated positive int.
        if (
            expr_type(node.left, var_types) == INT
            and expr_type(node.right, var_types) == INT
        ):
            return INT
        return None
    if isinstance(node, ast.Ite):
        if expr_type(node.condition, var_types) != BOOL:
            return None
        then_type = expr_type(node.then, var_types)
        if then_type is None or then_type != expr_type(node.otherwise, var_types):
            return None
        return then_type
    return None  # unknown node kind: never guess


def structural_unlowerable_reason(
    program: Program, daemon: Optional[Daemon] = None
) -> Optional[str]:
    """The size-independent half of :func:`unlowerable_reason`.

    Checks the daemon, the domains, every guard, and every assignment
    — everything except the full-space footprint ceiling.  Consumers
    that never materialize full-space tables (the shared-memory
    streamed kernel, the batch Monte-Carlo sampler) use this form: the
    cell ceiling is a RAM bound on table materialization, not a limit
    of the lowering itself.
    """
    if daemon is not None and type(daemon) is not CentralDaemon:
        return (
            f"daemon {daemon.name!r} has no batch form; only the central "
            f"daemon lowers to array kernels"
        )
    schema = program.schema()
    var_types: Dict[str, str] = {}
    for name, domain in zip(schema.names, schema.domains):
        kind = domain_type(domain)
        if kind is None:
            return (
                f"variable {name!r} has a domain that is not all-int or "
                f"all-bool; no int64 lookup table exists"
            )
        var_types[name] = kind
    for action in program.actions:
        if expr_type(action.guard, var_types) != BOOL:
            return (
                f"guard of action {action.name!r} does not lower to a "
                f"boolean array expression"
            )
        for target, rhs in action.assignments.items():
            if target not in var_types:
                return (
                    f"action {action.name!r} writes {target!r}, which is "
                    f"not a schema variable"
                )
            if expr_type(rhs, var_types) is None:
                return (
                    f"assignment to {target!r} in action {action.name!r} "
                    f"does not lower to an array expression"
                )
    return None


def unlowerable_reason(
    program: Program,
    daemon: Optional[Daemon] = None,
    max_cells: Optional[int] = None,
) -> Optional[str]:
    """Why ``program`` cannot lower to array kernels (``None`` = it can).

    Checks, in order: the daemon (only the plain central daemon has a
    digit-delta batch form), the domains, every guard, every
    assignment, and the full-space array footprint.

    Args:
        program: the program to analyze.
        daemon: the execution daemon, when not the plain central one.
        max_cells: the footprint ceiling to judge against; defaults to
            :func:`effective_max_vector_cells` (the
            ``REPRO_MAX_VECTOR_CELLS`` override or the built-in
            default).
    """
    reason = structural_unlowerable_reason(program, daemon)
    if reason is not None:
        return reason
    ceiling = max_cells if max_cells is not None else effective_max_vector_cells()
    schema = program.schema()
    cells = schema.size() * (len(program.actions) + len(schema.names))
    if cells > ceiling:
        return (
            f"full-space action tables need {cells} cells, above the "
            f"vector-engine ceiling of {ceiling}"
        )
    return None
