"""The vectorized frontier engine (``engine="vector"``).

Batch NumPy successor kernels and frontier-array fixpoints over packed
codes: guards lower to boolean masks over int64 code arrays, parallel
assignments to vectorized digit-deltas, and the checker's hot set
computations to whole-frontier array operations.  Selected with
``engine="vector"``; verdicts, witnesses, and observability counters
match the tuple and packed engines byte for byte.

NumPy is optional (the ``repro[vector]`` extra).  This package stays
importable without it: :mod:`.availability` and :mod:`.analyze` are
NumPy-free, and the array modules load only when NumPy is present —
engine selection consults :func:`vector_fallback_reason` first and
falls back to the packed engine otherwise.
"""

from __future__ import annotations

from typing import Optional

from ...core.system import System
from ..engine import CheckSource
from .analyze import (
    BOOL,
    INT,
    MAX_VECTOR_CELLS,
    MAX_VECTOR_CELLS_ENV,
    domain_type,
    effective_max_vector_cells,
    expr_type,
    structural_unlowerable_reason,
    unlowerable_reason,
)
from .availability import (
    HAVE_NUMPY,
    NUMPY_MISSING_REASON,
    numpy_available,
    numpy_version,
)

__all__ = [
    "BOOL",
    "INT",
    "HAVE_NUMPY",
    "MAX_VECTOR_CELLS",
    "MAX_VECTOR_CELLS_ENV",
    "NUMPY_MISSING_REASON",
    "domain_type",
    "effective_max_vector_cells",
    "expr_type",
    "numpy_available",
    "numpy_version",
    "structural_unlowerable_reason",
    "unlowerable_reason",
    "vector_fallback_reason",
]


def vector_fallback_reason(*sources: CheckSource) -> Optional[str]:
    """Why the vector engine cannot run on these sources (``None`` = it can).

    NumPy-free by construction: on a pure-Python install the first
    check already returns :data:`NUMPY_MISSING_REASON` without touching
    the array modules.  Compiled systems always lower (the CSR edge
    form never evaluates expressions); programs must pass the static
    analysis of :func:`.analyze.unlowerable_reason`.
    """
    if not numpy_available():
        return NUMPY_MISSING_REASON
    for source in sources:
        if isinstance(source, System):
            continue
        reason = unlowerable_reason(source)
        if reason is not None:
            return reason
    return None


if numpy_available():
    from .fixpoint import (
        region_edges,
        vector_core,
        vector_has_cycle,
        vector_longest_path,
        vector_reachable,
        vector_terminals,
    )
    from .image import vector_image_codes
    from .kernel import VectorKernel, VectorLoweringError, as_vector_kernel
    from .lower import ArrayEnv, ArrayFn, lower_expr

    __all__ += [
        "ArrayEnv",
        "ArrayFn",
        "VectorKernel",
        "VectorLoweringError",
        "as_vector_kernel",
        "lower_expr",
        "vector_image_codes",
        "region_edges",
        "vector_core",
        "vector_has_cycle",
        "vector_longest_path",
        "vector_reachable",
        "vector_terminals",
    ]
