"""Frontier-array fixpoints over packed codes.

Array re-implementations of the packed engine's bitset fixpoints
(:mod:`repro.kernel.fixpoint`): reachability as a ``np.unique``-deduped
frontier iteration, the behavioural-core greatest fixpoint as Jacobi
rounds over whole member batches, and cycle/terminal/longest-path
analysis as Kahn peels over in-region edge arrays.

Every function computes exactly the set (or verdict) of its packed and
tuple counterparts and emits the same observability counters.  The one
documented divergence — shared with the packed engine's parallel mode
— is ``check.fixpoint.iterations`` and the per-iteration events: the
core fixpoint here runs whole-batch Jacobi rounds while the sequential
sweeps are Gauss–Seidel, so round *counts* may differ even though the
greatest fixpoint (the operator is monotone) and the total
``check.states.evicted`` are identical.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...obs import NULL_INSTRUMENTATION, Instrumentation, ProgressEmitter
from ...resilience import chaos
from .kernel import VectorKernel, _ranges, _unique_sorted

__all__ = [
    "region_edges",
    "vector_reachable",
    "vector_core",
    "vector_has_cycle",
    "vector_terminals",
    "vector_longest_path",
]


def vector_reachable(
    kernel: VectorKernel,
    sources: np.ndarray,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> np.ndarray:
    """Boolean flags of the codes reachable from ``sources`` (inclusive)."""
    seen = np.zeros(kernel.size, dtype=bool)
    frontier = _unique_sorted(np.asarray(sources, dtype=np.int64))
    if frontier.size:
        seen[frontier] = True
    progress = ProgressEmitter(instrumentation, "vector.reachable")
    chaos_hook = (
        chaos.engine_states if chaos.active_plan() is not None else None
    )
    rounds = 0
    expanded = 0
    while frontier.size:
        rounds += 1
        expanded += int(frontier.size)
        if chaos_hook is not None:
            chaos_hook("vector", expanded)
        if progress.enabled:
            instrumentation.observe("vector.frontier.size", int(frontier.size))
            progress.tick(rounds, int(frontier.size), expanded)
        _, targets = kernel.succ_pairs(frontier)
        fresh = _unique_sorted(targets)
        fresh = fresh[~seen[fresh]]
        seen[fresh] = True
        frontier = fresh
    return seen


def vector_core(
    kernel: VectorKernel,
    abstract_kernel: VectorKernel,
    image_of: np.ndarray,
    legitimate: np.ndarray,
    stutter_insensitive: bool,
    fairness_ignores_stutter: bool,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> np.ndarray:
    """The behavioural core as boolean flags over concrete codes.

    The same greatest fixpoint as ``packed_core`` /
    ``behavioural_core``, evaluated as whole-batch Jacobi rounds: each
    round classifies every remaining member's outgoing edges at once
    against a snapshot of the membership flags, then evicts.  Eviction
    per edge transliterates ``_must_evict_packed``:

    * a self-loop whose image step is not an abstract edge evicts
      unless stuttering is ignorable, and counts as progress exactly
      when the image step *is* an abstract edge;
    * a non-self edge evicts when its target left the membership, or
      when it is neither an insensitive image-stutter nor an abstract
      edge; it counts as progress otherwise;
    * a member with no progress at all evicts unless its image is
      terminal in the abstraction (premature deadlock).
    """
    size = kernel.size
    image_of = np.asarray(image_of, dtype=np.int64)
    legitimate = np.asarray(legitimate, dtype=bool)
    valid = image_of >= 0
    flags = valid & legitimate[np.where(valid, image_of, 0)]
    remaining = int(flags.sum())
    instrumentation.count("check.states.enumerated", size)
    instrumentation.count("check.candidates.initial", remaining)
    abs_has_successor = ~abstract_kernel.terminal_flags()
    ignorable_stutter = stutter_insensitive or fairness_ignores_stutter
    progress = ProgressEmitter(instrumentation, "vector.core")
    chaos_hook = (
        chaos.engine_states if chaos.active_plan() is not None else None
    )
    if chaos_hook is not None:
        chaos_hook("vector", size)
    iterations = 0
    changed = True
    while changed:
        iterations += 1
        if chaos_hook is not None:
            chaos_hook("vector", size * (iterations + 1))
        members = np.nonzero(flags)[0]
        origins, targets = kernel.succ_pairs(members)
        sources = members[origins]
        image_source = image_of[sources]
        image_target = image_of[targets]
        abstract_edge = abstract_kernel.has_edge(image_source, image_target)
        self_loop = targets == sources
        if stutter_insensitive:
            stutter_progress = image_target == image_source
        else:
            stutter_progress = np.zeros(targets.shape, dtype=bool)
        member_target = flags[targets]
        if ignorable_stutter:
            evict_self = np.zeros(targets.shape, dtype=bool)
        else:
            evict_self = ~abstract_edge
        evict_edge = np.where(
            self_loop,
            evict_self,
            ~member_target | (~stutter_progress & ~abstract_edge),
        )
        progress_edge = np.where(
            self_loop,
            abstract_edge,
            member_target & (stutter_progress | abstract_edge),
        )
        count = members.size
        evict = np.bincount(origins[evict_edge], minlength=count) > 0
        progressed = np.bincount(origins[progress_edge], minlength=count) > 0
        evict |= ~progressed & abs_has_successor[image_of[members]]
        evicted = int(evict.sum())
        flags[members[evict]] = False
        changed = evicted > 0
        remaining -= evicted
        instrumentation.event(
            "check.fixpoint.iteration",
            index=iterations,
            evicted=evicted,
            remaining=remaining,
        )
        instrumentation.count("check.states.evicted", evicted)
        instrumentation.observe("check.round.evicted", evicted)
        progress.tick(iterations, remaining, size * iterations)
    instrumentation.count("check.fixpoint.iterations", iterations)
    return flags


def region_edges(
    kernel: VectorKernel,
    region: np.ndarray,
    drop_self: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The transition edges staying inside ``region``, plus exit flags.

    Returns ``(sources, targets, has_exit)``: parallel arrays of
    in-region edges (sorted by source, then target) and a per-code
    full-space mask of region members with at least one transition
    *leaving* the region — the "one last step into the core" the
    worst-case metric counts.
    """
    codes = np.nonzero(region)[0]
    origins, targets = kernel.succ_pairs(codes)
    sources = codes[origins]
    if drop_self:
        live = targets != sources
        sources, targets = sources[live], targets[live]
    inside = region[targets]
    has_exit = np.zeros(kernel.size, dtype=bool)
    has_exit[sources[~inside]] = True
    return sources[inside], targets[inside], has_exit


def _peel_order(
    count: int, sources: np.ndarray, targets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Shared Kahn peel state for the cycle and longest-path analyses.

    ``sources``/``targets`` are *relabelled* node indices in
    ``[0, count)``.  Returns the reverse-CSR arrays (in-edge sources
    sorted by target, with ``indptr``), the per-node out-degrees, the
    initial zero-out-degree queue, and its size.
    """
    out_degree = np.bincount(sources, minlength=count)
    order = np.argsort(targets, kind="stable")
    in_sources = sources[order]
    in_indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(np.bincount(targets, minlength=count), out=in_indptr[1:])
    queue = np.nonzero(out_degree == 0)[0]
    return in_sources, in_indptr, out_degree, queue, int(queue.size)


def vector_has_cycle(
    kernel: VectorKernel,
    region: np.ndarray,
    drop_self: bool = False,
    image_of: Optional[np.ndarray] = None,
) -> bool:
    """Whether a cycle (including a self-loop) lies within ``region``.

    Kahn-style trim: repeatedly peel region nodes whose every in-region
    edge leads to an already-peeled node; a cycle exists iff the peel
    does not exhaust the region.  With ``image_of`` the relation is
    first restricted to image-invisible edges (``image_of[source] ==
    image_of[target]``) — the invisible-cycles analysis inside the
    core.
    """
    codes = np.nonzero(region)[0]
    count = codes.size
    if count == 0:
        return False
    sources, targets, _ = region_edges(kernel, region, drop_self)
    if image_of is not None:
        image_of = np.asarray(image_of, dtype=np.int64)
        invisible = image_of[sources] == image_of[targets]
        sources, targets = sources[invisible], targets[invisible]
    sources = np.searchsorted(codes, sources)
    targets = np.searchsorted(codes, targets)
    in_sources, in_indptr, out_degree, queue, processed = _peel_order(
        count, sources, targets
    )
    while queue.size:
        counts = in_indptr[queue + 1] - in_indptr[queue]
        in_edges = in_sources[_ranges(in_indptr[queue], counts)]
        out_degree -= np.bincount(in_edges, minlength=count)
        queue = _unique_sorted(in_edges)
        queue = queue[out_degree[queue] == 0]
        processed += int(queue.size)
    return processed < count


def vector_terminals(
    kernel: VectorKernel, region: np.ndarray, drop_self: bool = False
) -> np.ndarray:
    """Codes in ``region`` with no successors at all, ascending."""
    return np.nonzero(region & kernel.terminal_flags(drop_self))[0]


def vector_longest_path(
    kernel: VectorKernel,
    region: np.ndarray,
    drop_self: bool = False,
) -> int:
    """Longest transition path staying within ``region``.

    The worst-case convergence metric: a step landing outside the
    region (into the core) still counts as one step.  Kahn peel in
    reverse topological order, finalizing a node's depth once all of
    its in-region out-edges are finalized, with
    ``depth[v] = max(exit ? 1 : 0, max over in-region v->u of
    1 + depth[u])`` accumulated through ``np.maximum.at``.

    Raises:
        ValueError: if a cycle is found after all, with the tuple
            engine's exact message.
    """
    codes = np.nonzero(region)[0]
    count = codes.size
    if count == 0:
        return 0
    sources, targets, has_exit = region_edges(kernel, region, drop_self)
    sources = np.searchsorted(codes, sources)
    targets = np.searchsorted(codes, targets)
    in_sources, in_indptr, out_degree, queue, processed = _peel_order(
        count, sources, targets
    )
    depth = np.where(has_exit[codes], np.int64(1), np.int64(0))
    while queue.size:
        counts = in_indptr[queue + 1] - in_indptr[queue]
        gathered = _ranges(in_indptr[queue], counts)
        in_edges = in_sources[gathered]
        finalized = np.repeat(queue, counts)
        np.maximum.at(depth, in_edges, 1 + depth[finalized])
        out_degree -= np.bincount(in_edges, minlength=count)
        queue = _unique_sorted(in_edges)
        queue = queue[out_degree[queue] == 0]
        processed += int(queue.size)
    if processed < count:
        raise ValueError("cycle outside the core; check stabilization first")
    return int(depth.max())
