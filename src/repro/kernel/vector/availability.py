"""NumPy availability probing for the vector engine.

NumPy is an *optional* dependency (the ``repro[vector]`` extra): the
pure-Python install must keep working, so nothing in this module — or
in :func:`vector_fallback_reason` — imports NumPy at module load.
``HAVE_NUMPY`` is re-read on every check, which lets tests simulate a
NumPy-less install by monkeypatching it.
"""

from __future__ import annotations

import importlib.util
from typing import Optional

__all__ = ["HAVE_NUMPY", "numpy_available", "numpy_version", "NUMPY_MISSING_REASON"]


def _probe() -> bool:
    try:
        return importlib.util.find_spec("numpy") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic loaders
        return False


#: Whether NumPy is importable.  Module-level so tests can monkeypatch
#: it to exercise the vector->packed fallback without uninstalling.
HAVE_NUMPY: bool = _probe()

NUMPY_MISSING_REASON = (
    "NumPy is not installed; the vector engine needs the repro[vector] "
    "extra (pip install 'repro[vector]')"
)


def numpy_available() -> bool:
    """Whether the vector engine's array backend can load (patchable)."""
    return HAVE_NUMPY


def numpy_version() -> Optional[str]:
    """The installed NumPy version string, or ``None`` without NumPy."""
    if not numpy_available():
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - HAVE_NUMPY raced the env
        return None
    return str(numpy.__version__)
