"""Batch abstraction-image tables for the vector engine.

:func:`repro.kernel.engine.image_codes` builds the dense
concrete-code → abstract-code table by applying the abstraction to
every enumerated state in Python — at a million states that single
loop costs more than every array fixpoint combined.  When the
abstraction carries a batch form
(:attr:`~repro.core.abstraction.AbstractionFunction.array_mapping`),
:func:`vector_image_codes` instead extracts one value column per
concrete variable by mixed-radix digit arithmetic, applies the batch
mapping once, and re-encodes the abstract columns with the same
digit-delta arithmetic — the whole table in a handful of array
operations.

The table is *identical* to the scalar one: images whose values fall
outside the abstract interner's domains encode as ``-1``, exactly the
scalar path's ``StateSpaceError`` convention, and any structural
mismatch (no batch form, un-lowerable concrete domains, image columns
that do not cover the abstract schema) falls back to the scalar loop
rather than guessing.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...core.abstraction import AbstractionFunction
from ..engine import image_codes
from ..interner import StateInterner
from .analyze import BOOL, domain_type

__all__ = ["vector_image_codes"]


def _value_columns(interner: StateInterner) -> Optional[Dict[str, np.ndarray]]:
    """One domain-value column per variable, or ``None`` if not int/bool."""
    schema = interner.schema
    places = interner.places_by_name()
    codes = np.arange(interner.size, dtype=np.int64)
    columns: Dict[str, np.ndarray] = {}
    for name, domain in zip(schema.names, schema.domains):
        kind = domain_type(domain)
        if kind is None:
            return None
        digit = (codes // places[name]) % len(domain)
        values = np.asarray([int(value) for value in domain], dtype=np.int64)
        column = values[digit]
        columns[name] = column.astype(bool) if kind == BOOL else column
    return columns


def vector_image_codes(
    concrete: StateInterner,
    abstract: StateInterner,
    alpha: Optional[AbstractionFunction],
) -> np.ndarray:
    """The abstraction as a dense int64 table: concrete → abstract code.

    The batch analogue of :func:`repro.kernel.engine.image_codes`,
    entry for entry identical (``-1`` marks images outside the abstract
    schema).  Fast paths, in order: the identity (``alpha is None`` on
    compatible schemas) is an ``arange``; an ``array_mapping``-carrying
    abstraction is evaluated column-wise; anything else delegates to
    the scalar loop.
    """
    if alpha is None and concrete.schema.compatible_with(abstract.schema):
        return np.arange(concrete.size, dtype=np.int64)
    array_mapping = getattr(alpha, "array_mapping", None)
    if array_mapping is not None and all(
        domain_type(domain) is not None for domain in abstract.schema.domains
    ):
        columns = _value_columns(concrete)
        if columns is not None:
            image_columns = array_mapping(columns)
            if set(image_columns) == set(abstract.schema.names):
                return _encode_columns(abstract, image_columns, concrete.size)
    return np.asarray(image_codes(concrete, abstract, alpha), dtype=np.int64)


def _encode_columns(
    abstract: StateInterner,
    image_columns: Dict[str, np.ndarray],
    count: int,
) -> np.ndarray:
    """Mixed-radix encode of per-variable value columns (``-1`` invalid)."""
    places = abstract.places_by_name()
    table = np.zeros(count, dtype=np.int64)
    valid = np.ones(count, dtype=bool)
    for name, domain in zip(abstract.schema.names, abstract.schema.domains):
        values = np.asarray([int(value) for value in domain], dtype=np.int64)
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_digits = order.astype(np.int64)
        column = np.asarray(image_columns[name]).astype(np.int64, copy=False)
        if column.ndim == 0:
            column = np.broadcast_to(column, (count,))
        slots = np.searchsorted(sorted_values, column)
        clipped = np.minimum(slots, sorted_values.size - 1)
        valid &= (slots < sorted_values.size) & (
            sorted_values[clipped] == column
        )
        table += sorted_digits[clipped] * np.int64(places[name])
    table[~valid] = -1
    return table
