"""Batch successor kernels: whole-frontier transitions in NumPy calls.

A :class:`VectorKernel` is the vector engine's replacement for the
packed engine's per-code successor closure: the transition relation as
*arrays*.  Two constructions:

* :meth:`VectorKernel.from_program` lowers a guarded-command program
  under the plain central daemon.  Each action's guard becomes a
  boolean mask over the full int64 code space (mixed-radix digit
  extraction with the interner's precomputed divisors and moduli), and
  its parallel assignment becomes a vectorized digit-delta, yielding
  one ``(enabled, successor)`` table pair per action.  Successors of
  an entire frontier are then a handful of gathers — no Python loop
  per state.  Out-of-domain writes raise exactly the
  :class:`~repro.core.errors.GCLError` that ``compile_program``
  raises, reconstructed through the packed engine's ``_pack_move``.
* :meth:`VectorKernel.from_system` wraps an already-compiled
  :class:`~repro.core.system.System` as sorted CSR edge arrays.

Both forms expose the same batch API (:meth:`succ_pairs`,
:meth:`has_edge`, :meth:`terminal_flags`) consumed by the array
fixpoints in :mod:`.fixpoint`, plus the scalar :meth:`successors` and
:meth:`materialize` bridges the witness phases need.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ...core.system import System
from ...gcl.daemon import CentralDaemon, Daemon
from ...gcl.program import Program
from ...gcl.semantics import compile_program
from ..engine import CheckSource
from ..interner import StateInterner
from ..successors import _pack_move
from .analyze import domain_type, unlowerable_reason
from .lower import ArrayEnv, lower_expr

__all__ = ["VectorKernel", "VectorLoweringError", "as_vector_kernel"]


class VectorLoweringError(ValueError):
    """A program (or daemon) has no array lowering.

    Engine selection consults :func:`.analyze.unlowerable_reason`
    before constructing a kernel, so checker paths never see this;
    it guards direct construction.
    """


def as_vector_kernel(source: CheckSource) -> "VectorKernel":
    """The vector-engine view of a check source (mirrors ``as_kernel``)."""
    if isinstance(source, System):
        return VectorKernel.from_system(source)
    return VectorKernel.from_program(source)


class VectorKernel:
    """The transition relation as arrays: code batches in, edges out.

    Edge batches are deduplicated per ``(origin, target)`` pair and
    sorted by origin position then target code — the array analogue of
    the packed kernel's deduplicated, ascending successor tuples, which
    is what keeps transition *counts* (and so the refinement checkers'
    ``checked`` counters) identical across engines.
    """

    __slots__ = (
        "interner",
        "name",
        "size",
        "initial_codes",
        "initial_array",
        "_keep_stutter",
        "_tables",
        "_indptr",
        "_targets",
        "_edge_keys",
        "_terminal_cache",
        "_materializer",
        "_materialized",
    )

    def __init__(
        self,
        interner: StateInterner,
        initial_codes: Tuple[int, ...],
        name: str,
        keep_stutter: bool,
        tables: Optional[List[Tuple[np.ndarray, np.ndarray]]],
        indptr: Optional[np.ndarray],
        targets: Optional[np.ndarray],
        edge_keys: Optional[np.ndarray],
        materializer: Callable[[], System],
    ):
        self.interner = interner
        self.name = name
        self.size = interner.size
        self.initial_codes = initial_codes
        self.initial_array = np.asarray(initial_codes, dtype=np.int64)
        self._keep_stutter = keep_stutter
        self._tables = tables
        self._indptr = indptr
        self._targets = targets
        self._edge_keys = edge_keys
        self._terminal_cache: Dict[bool, np.ndarray] = {}
        self._materializer = materializer
        self._materialized: Optional[System] = None

    @property
    def schema(self):
        """The schema of the packed state space."""
        return self.interner.schema

    def materialize(self) -> System:
        """The equivalent tuple-state ``System`` (cached on first call)."""
        if self._materialized is None:
            self._materialized = self._materializer()
        return self._materialized

    # ------------------------------------------------------------------
    # The batch API consumed by the array fixpoints.
    # ------------------------------------------------------------------

    def succ_pairs(self, codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """All transitions out of a batch of codes, as parallel arrays.

        Returns ``(origins, targets)`` where ``origins`` indexes into
        ``codes`` (positions, not codes) and ``targets`` holds
        successor codes.  Pairs are unique and sorted by
        ``(origin, target)``.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if self._tables is not None:
            origin_parts: List[np.ndarray] = []
            target_parts: List[np.ndarray] = []
            for enabled, succ in self._tables:
                mask = enabled[codes]
                if not self._keep_stutter:
                    mask = mask & (succ[codes] != codes)
                positions = np.nonzero(mask)[0]
                if positions.size:
                    origin_parts.append(positions)
                    target_parts.append(succ[codes[positions]])
            if not origin_parts:
                empty = np.empty(0, dtype=np.int64)
                return empty, empty
            origins = np.concatenate(origin_parts)
            targets = np.concatenate(target_parts)
            keys = _unique_sorted(origins * np.int64(self.size) + targets)
            return keys // self.size, keys % self.size
        counts = self._indptr[codes + 1] - self._indptr[codes]
        origins = np.repeat(np.arange(codes.size, dtype=np.int64), counts)
        gathered = _ranges(self._indptr[codes], counts)
        return origins, self._targets[gathered]

    def has_edge(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Element-wise transition membership for parallel code arrays."""
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if self._tables is not None:
            hit = np.zeros(sources.shape, dtype=bool)
            for enabled, succ in self._tables:
                found = enabled[sources] & (succ[sources] == targets)
                if not self._keep_stutter:
                    found &= targets != sources
                hit |= found
            return hit
        if self._edge_keys.size == 0:
            return np.zeros(sources.shape, dtype=bool)
        keys = sources * np.int64(self.size) + targets
        slots = np.searchsorted(self._edge_keys, keys)
        slots_clipped = np.minimum(slots, self._edge_keys.size - 1)
        return (slots < self._edge_keys.size) & (
            self._edge_keys[slots_clipped] == keys
        )

    def terminal_flags(self, drop_self: bool = False) -> np.ndarray:
        """Full-space mask of codes with no successors (cached).

        With ``drop_self`` the relation is first stripped of self-loops
        — the analysis view under weak/strong fairness.
        """
        cached = self._terminal_cache.get(drop_self)
        if cached is not None:
            return cached
        if self._tables is not None:
            codes = np.arange(self.size, dtype=np.int64)
            has_successor = np.zeros(self.size, dtype=bool)
            for enabled, succ in self._tables:
                if drop_self or not self._keep_stutter:
                    has_successor |= enabled & (succ != codes)
                else:
                    has_successor |= enabled
            terminal = ~has_successor
        else:
            counts = self._indptr[1:] - self._indptr[:-1]
            if drop_self:
                edge_sources = np.repeat(
                    np.arange(self.size, dtype=np.int64), counts
                )
                self_loops = np.bincount(
                    edge_sources[self._targets == edge_sources],
                    minlength=self.size,
                )
                counts = counts - self_loops
            terminal = counts == 0
        self._terminal_cache[drop_self] = terminal
        return terminal

    def successors(self, code: int) -> Tuple[int, ...]:
        """Scalar bridge: successor codes of one code, ascending."""
        _, targets = self.succ_pairs(np.asarray([code], dtype=np.int64))
        return tuple(int(target) for target in targets)

    # ------------------------------------------------------------------
    # Constructions.
    # ------------------------------------------------------------------

    @classmethod
    def from_program(
        cls,
        program: Program,
        daemon: Optional[Daemon] = None,
        keep_stutter: bool = True,
        name: Optional[str] = None,
    ) -> "VectorKernel":
        """Lower ``program`` to full-space per-action successor tables.

        Raises:
            VectorLoweringError: for non-central daemons or programs
                outside the statically lowerable fragment (see
                :func:`.analyze.unlowerable_reason`).
            GCLError: when some action drives a state out of its
                domain — the exact error ``compile_program`` raises.
        """
        chosen = daemon or CentralDaemon()
        reason = unlowerable_reason(program, chosen)
        if reason is not None:
            raise VectorLoweringError(
                f"program {program.name!r} has no array lowering: {reason}"
            )
        schema = program.schema()
        interner = StateInterner(schema)
        size = interner.size
        system_name = name or (
            program.name
            if chosen.name == "central"
            else f"{program.name}@{chosen.name}"
        )
        var_types = {
            var_name: domain_type(domain)
            for var_name, domain in zip(schema.names, schema.domains)
        }
        places = interner.places_by_name()
        radixes = dict(zip(schema.names, (len(domain) for domain in schema.domains)))
        codes = np.arange(size, dtype=np.int64)
        # Digit extraction once per variable; values via int64 lookup
        # tables (bools become 0/1, consistently with Python's bool-int
        # coercion).
        digits: Dict[str, np.ndarray] = {}
        env: ArrayEnv = {}
        value_tables: Dict[str, np.ndarray] = {}
        inverse_tables: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for var_name, domain in zip(schema.names, schema.domains):
            digit = (codes // places[var_name]) % radixes[var_name]
            values = np.asarray([int(value) for value in domain], dtype=np.int64)
            order = np.argsort(values, kind="stable")
            digits[var_name] = digit
            value_tables[var_name] = values
            env[var_name] = values[digit]
            inverse_tables[var_name] = (values[order], order.astype(np.int64))
        tables: List[Tuple[np.ndarray, np.ndarray]] = []
        for action in program.actions:
            guard = lower_expr(action.guard, var_types)
            mask = np.broadcast_to(
                np.asarray(guard(env), dtype=bool), (size,)
            )
            enabled = np.nonzero(mask)[0]
            successor_table = codes.copy()
            if enabled.size:
                action_env: ArrayEnv = {
                    free: env[free][enabled]
                    for rhs in action.assignments.values()
                    for free in rhs.free_variables()
                }
                delta = np.zeros(enabled.shape, dtype=np.int64)
                for target, rhs in action.assignments.items():
                    lowered = lower_expr(rhs, var_types)
                    values = np.asarray(lowered(action_env)).astype(
                        np.int64, copy=False
                    )
                    if values.ndim == 0:
                        values = np.broadcast_to(values, enabled.shape)
                    sorted_values, sorted_digits = inverse_tables[target]
                    slots = np.searchsorted(sorted_values, values)
                    slots_clipped = np.minimum(slots, sorted_values.size - 1)
                    valid = (slots < sorted_values.size) & (
                        sorted_values[slots_clipped] == values
                    )
                    if not bool(valid.all()):
                        _raise_out_of_domain(
                            interner, program, action,
                            int(enabled[int(np.argmax(~valid))]),
                        )
                    new_digits = sorted_digits[slots_clipped]
                    delta += (new_digits - digits[target][enabled]) * np.int64(
                        places[target]
                    )
                successor_table[enabled] = enabled + delta
            tables.append((np.asarray(mask), successor_table))
        initial_codes = tuple(
            sorted(interner.encode(state) for state in program.initial_states())
        )

        def materializer() -> System:
            return compile_program(program, chosen, keep_stutter, system_name)

        return cls(
            interner, initial_codes, system_name, keep_stutter,
            tables, None, None, None, materializer,
        )

    @classmethod
    def from_system(cls, system: System) -> "VectorKernel":
        """Wrap an already-compiled ``System`` as sorted CSR edge arrays."""
        interner = StateInterner(system.schema)
        size = interner.size
        edge_keys = np.fromiter(
            (
                interner.encode(source) * size + interner.encode(target)
                for source, target in system.transitions()
            ),
            dtype=np.int64,
            count=system.transition_count(),
        )
        edge_keys.sort()
        sources = edge_keys // size
        targets = edge_keys % size
        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(np.bincount(sources, minlength=size), out=indptr[1:])
        initial_codes = tuple(
            sorted(interner.encode(state) for state in system.initial)
        )
        return cls(
            interner, initial_codes, system.name, True,
            None, indptr, targets, edge_keys, lambda: system,
        )


def _raise_out_of_domain(
    interner: StateInterner, program: Program, action, code: int
) -> None:
    """Raise ``compile_program``'s exact out-of-domain ``GCLError``.

    Routes the offending state through the packed engine's
    ``_pack_move`` so the message — program name, action label,
    formatted source state, packing error — is byte-identical.
    """
    env = interner.decode_env(code)
    _pack_move(interner, program, action.execute(env), (action.name,), code)
    raise AssertionError(  # pragma: no cover - _pack_move always raises here
        "out-of-domain write did not reproduce on the scalar path"
    )


def _unique_sorted(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values — ``np.unique`` as an explicit sort+mask.

    ``np.unique`` routes some integer inputs through a hash table that
    is an order of magnitude slower than sorting on multi-million-
    element edge batches; the engine's dedup is always over int64 keys,
    where sort-and-compare-adjacent is the fast path.
    """
    if values.size == 0:
        return values
    values = np.sort(values)
    keep = np.empty(values.shape, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def _ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[start, start+count)`` index ranges, vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    offsets = np.repeat(starts - (ends - counts), counts)
    return np.arange(total, dtype=np.int64) + offsets
