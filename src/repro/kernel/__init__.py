"""The packed-state kernel engine.

Dense integer state codes (mixed-radix interning), on-the-fly
successor generation compiled straight from guarded-command programs,
and bitset fixpoints for the checker's hot set computations.  The
checkers select it with ``engine="packed"``; verdicts, witnesses, and
observability counters match the tuple engine byte for byte (see
``docs/PERFORMANCE.md`` for the architecture and the one documented
fixpoint-iteration caveat).
"""

from .bitset import (
    codes_of_flags,
    count_flags,
    flags_from_mask,
    iter_ones,
    make_flags,
    mask_from_codes,
    mask_from_flags,
    popcount,
)
from .engine import (
    CheckSource,
    as_kernel,
    as_system,
    drop_self_loops,
    image_codes,
    packed_fallback_reason,
    source_schema,
)
from .fixpoint import (
    SuccessorFn,
    packed_core,
    packed_has_cycle,
    packed_longest_path,
    packed_reachable,
    packed_terminals,
)
from .interner import MAX_PACKED_STATES, StateInterner, can_pack, unpackable_reason
from .successors import PackedKernel

__all__ = [
    "MAX_PACKED_STATES",
    "StateInterner",
    "can_pack",
    "unpackable_reason",
    "PackedKernel",
    "CheckSource",
    "as_kernel",
    "as_system",
    "source_schema",
    "packed_fallback_reason",
    "image_codes",
    "drop_self_loops",
    "SuccessorFn",
    "packed_reachable",
    "packed_core",
    "packed_has_cycle",
    "packed_terminals",
    "packed_longest_path",
    "make_flags",
    "count_flags",
    "codes_of_flags",
    "mask_from_flags",
    "mask_from_codes",
    "flags_from_mask",
    "iter_ones",
    "popcount",
]
