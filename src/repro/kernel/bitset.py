"""Flag arrays and integer bitmasks over packed state codes.

Two complementary representations of a set of packed states:

* a **flag array** (``bytearray``, one byte per state) — O(1) mutable
  membership, the working representation of the sequential fixpoints;
* an **int mask** (one bit per state) — compact, picklable, and
  mergeable with ``|``/``&``, the representation that crosses process
  boundaries in the parallel fixpoints.

Both index by the dense codes of a :class:`~repro.kernel.interner.
StateInterner`, so conversions are pure reshapes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

__all__ = [
    "make_flags",
    "count_flags",
    "codes_of_flags",
    "mask_from_flags",
    "mask_from_codes",
    "flags_from_mask",
    "iter_ones",
    "popcount",
]

#: Bit offsets of the set bits of each byte value, precomputed once.
_BYTE_ONES: List[List[int]] = [
    [bit for bit in range(8) if value >> bit & 1] for value in range(256)
]


def make_flags(size: int, codes: Optional[Iterable[int]] = None) -> bytearray:
    """A zeroed flag array of ``size`` states, optionally pre-setting ``codes``."""
    flags = bytearray(size)
    if codes is not None:
        for code in codes:
            flags[code] = 1
    return flags


def count_flags(flags: bytearray) -> int:
    """Number of set flags (membership count)."""
    return sum(flags)


def codes_of_flags(flags: bytearray) -> Iterator[int]:
    """The set codes of a flag array, in ascending order."""
    return (code for code, flag in enumerate(flags) if flag)


def mask_from_flags(flags: bytearray) -> int:
    """The int mask with bit ``code`` set iff ``flags[code]``."""
    mask = 0
    for code, flag in enumerate(flags):
        if flag:
            mask |= 1 << code
    return mask


def mask_from_codes(codes: Iterable[int]) -> int:
    """The int mask of an iterable of codes."""
    mask = 0
    for code in codes:
        mask |= 1 << code
    return mask


def flags_from_mask(mask: int, size: int) -> bytearray:
    """The flag array of an int mask (inverse of :func:`mask_from_flags`)."""
    flags = bytearray(size)
    for code in iter_ones(mask):
        flags[code] = 1
    return flags


def iter_ones(mask: int) -> Iterator[int]:
    """The set bit positions of ``mask``, in ascending order."""
    raw = mask.to_bytes((mask.bit_length() + 7) // 8 or 1, "little")
    for byte_index, byte in enumerate(raw):
        if byte:
            base = byte_index * 8
            for bit in _BYTE_ONES[byte]:
                yield base + bit


def popcount(mask: int) -> int:
    """Number of set bits of an int mask (Python 3.9-safe)."""
    return bin(mask).count("1")
