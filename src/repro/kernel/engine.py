"""Engine plumbing: kernels from checker inputs, image tables, fallback.

The checkers accept either a compiled :class:`~repro.core.system.
System` or a still-uncompiled :class:`~repro.gcl.program.Program`.
The helpers here normalize both into the representation each engine
needs — a :class:`PackedKernel` for the packed engine (a ``Program``
lowers *directly*, skipping the transition table entirely), a
``System`` for the tuple engine — and decide when packing must be
refused (:func:`packed_fallback_reason`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

from ..core.abstraction import AbstractionFunction
from ..core.errors import StateSpaceError
from ..core.state import State, StateSchema
from ..core.system import System
from ..gcl.program import Program
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from .interner import StateInterner, unpackable_reason
from .successors import PackedKernel

__all__ = [
    "CheckSource",
    "as_kernel",
    "as_system",
    "source_schema",
    "packed_fallback_reason",
    "image_codes",
    "drop_self_loops",
]

#: What the checker entry points accept for either side of a check.
CheckSource = Union[System, Program]


def as_system(source: CheckSource) -> System:
    """The tuple-engine view of a check source (compiles programs)."""
    return source if isinstance(source, System) else source.compile()


def as_kernel(
    source: CheckSource,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> PackedKernel:
    """The packed-engine view of a check source.

    Programs lower straight to a successor kernel — no transition
    table; compiled systems are wrapped with encode/decode at the
    edges.  The lowering is timed as an ``engine.lower`` span whose
    attributes name the source flavour and the resulting packed
    state-space size.
    """
    lowering = "system" if isinstance(source, System) else "program"
    with instrumentation.span("engine.lower", source=lowering):
        if isinstance(source, System):
            kernel = PackedKernel.from_system(source)
        else:
            kernel = PackedKernel.from_program(source)
    instrumentation.gauge("engine.packed.size", kernel.size)
    return kernel


def source_schema(source: CheckSource) -> StateSchema:
    """The state schema of a check source, without compiling it."""
    return source.schema if isinstance(source, System) else source.schema()


def packed_fallback_reason(*sources: CheckSource) -> Optional[str]:
    """Why the packed engine cannot run on these sources (``None`` = it can)."""
    for source in sources:
        reason = unpackable_reason(source_schema(source))
        if reason is not None:
            return reason
    return None


def image_codes(
    concrete: StateInterner,
    abstract: StateInterner,
    alpha: Optional[AbstractionFunction],
) -> List[int]:
    """The abstraction as a dense table: concrete code -> abstract code.

    Entry ``-1`` marks a concrete state whose image is not a valid
    abstract state (it can never be a core candidate) — mirroring the
    tuple engine, where such an image simply fails the legitimacy
    membership test.
    """
    if alpha is None and concrete.schema.compatible_with(abstract.schema):
        return list(range(concrete.size))
    mapping: Callable[[State], State] = (
        alpha if alpha is not None else (lambda state: state)
    )
    table: List[int] = []
    for state in concrete.schema.states():
        try:
            table.append(abstract.encode(mapping(state)))
        except StateSpaceError:
            table.append(-1)
    return table


def drop_self_loops(
    succ_of: Callable[[int], Tuple[int, ...]],
) -> Callable[[int], Tuple[int, ...]]:
    """The analysis view of a successor function under weak/strong
    fairness: same relation minus self-loops (the packed analogue of
    ``System.without_self_loops``)."""

    def filtered(code: int) -> Tuple[int, ...]:
        return tuple(successor for successor in succ_of(code) if successor != code)

    return filtered
