"""Out-of-core spill: delta-encoded code runs and edge bucket files.

When a frontier (or any code collection) outgrows its slice of the
memory budget, the shared engine moves it to disk under a run-scoped
spill directory and streams it back one run at a time.  Two on-disk
forms:

* **Sorted runs** (:meth:`SpillStore.save_sorted`): a sorted-unique
  code array stored as *sorted diffs* — the first code verbatim, then
  successive differences.  Frontier codes are dense and locally
  clustered, so the diffs are tiny; they are packed with a variable
  width (1/2/4/8 bytes per diff, chosen per run), which compresses a
  typical frontier run 4–8x against raw codes while keeping decode a
  single ``cumsum``.
* **Edge buckets** (:meth:`SpillStore.bucket_writer`): append-only
  raw ``(target, source)`` pair files — at the store's code width
  (:mod:`.width`) — partitioned by target code range, used by the
  out-of-core cycle/longest-path peel.  Buckets are rewritten
  sorted-by-target on first load; later loads return **views of a
  read-only memory map** of the sorted file, so a bucket the peel
  revisits hundreds of times costs page-cache hits instead of a full
  ``fromfile`` re-read each round (the dominant cost of the PR 9
  peel: ~78% of a 20 s cycle check was bucket re-reads).

The directory is created lazily, scoped to the run
(``repro-spill-<pid>-*``), and removed whole by :meth:`close` — the
runtime guarantees that via ``finally`` even when a check faults, and
the chaos lifecycle tests assert nothing survives a worker kill.
:meth:`reserve_path` hands out extra run-scoped file paths (the
mmap-backed visited set) that ride the same unconditional removal.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ...obs import NULL_INSTRUMENTATION, Instrumentation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import DTypeLike

__all__ = ["SpillHandle", "SpillStore"]

_DIFF_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.int64}


@dataclass(frozen=True)
class SpillHandle:
    """One spilled sorted run: enough metadata to stream it back."""

    path: str
    count: int
    first: int
    diff_width: int


class SpillStore:
    """The run-scoped spill directory and its encoders.

    Args:
        root: parent directory (``--spill-dir``); ``None`` = system
            temp dir.  The store creates its own subdirectory and only
            ever deletes that.
        code_dtype: storage dtype for codes in runs and bucket pairs
            (:func:`~.width.code_dtype`); loads return this dtype and
            callers widen at the arithmetic boundary.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        instrumentation: Instrumentation = NULL_INSTRUMENTATION,
        code_dtype: "DTypeLike" = np.int64,
    ):
        self._root = root
        self._obs = instrumentation
        self._dir: Optional[str] = None
        self._seq = 0
        self._code_dtype = np.dtype(code_dtype)
        self._buckets: Dict[str, IO[bytes]] = {}
        self._sorted_buckets: Dict[str, Tuple[str, int]] = {}
        self._bucket_maps: Dict[str, np.ndarray] = {}

    @property
    def code_dtype(self) -> np.dtype:
        """The storage dtype codes round-trip through."""
        return self._code_dtype

    @property
    def directory(self) -> Optional[str]:
        """The spill directory, if anything spilled yet."""
        return self._dir

    def _ensure_dir(self) -> str:
        if self._dir is None:
            if self._root is not None:
                os.makedirs(self._root, exist_ok=True)
            self._dir = tempfile.mkdtemp(
                prefix=f"repro-spill-{os.getpid()}-", dir=self._root
            )
        return self._dir

    def _next_path(self, tag: str) -> str:
        self._seq += 1
        return os.path.join(self._ensure_dir(), f"{tag}-{self._seq:06d}.bin")

    def reserve_path(self, name: str) -> str:
        """A run-scoped path (mmap visited files) removed by :meth:`close`."""
        return os.path.join(self._ensure_dir(), name)

    # -- sorted runs ---------------------------------------------------

    def save_sorted(self, codes: np.ndarray) -> SpillHandle:
        """Spill a sorted-unique code array as packed diffs."""
        count = int(codes.shape[0])
        path = self._next_path("run")
        if count == 0:
            open(path, "wb").close()
            self._obs.count("shm.spill.files")
            return SpillHandle(path=path, count=0, first=0, diff_width=8)
        first = int(codes[0])
        diffs = np.diff(codes)
        peak = int(diffs.max()) if diffs.shape[0] else 0
        if peak < (1 << 8):
            width = 1
        elif peak < (1 << 16):
            width = 2
        elif peak < (1 << 32):
            width = 4
        else:
            width = 8
        packed = diffs.astype(_DIFF_DTYPES[width])
        with open(path, "wb") as sink:
            packed.tofile(sink)
        self._obs.count("shm.spill.files")
        self._obs.count("shm.spill.bytes", packed.nbytes)
        return SpillHandle(path=path, count=count, first=first, diff_width=width)

    def load(self, handle: SpillHandle) -> np.ndarray:
        """Stream a sorted run back into RAM (exact inverse of save).

        Decodes through int64 (cumsum headroom), then narrows to the
        store's code dtype — lossless, the codes fit it by
        construction.
        """
        if handle.count == 0:
            return np.empty(0, dtype=self._code_dtype)
        diffs = np.fromfile(handle.path, dtype=_DIFF_DTYPES[handle.diff_width])
        codes = np.empty(handle.count, dtype=np.int64)
        codes[0] = handle.first
        np.cumsum(diffs, out=codes[1:], dtype=np.int64)
        codes[1:] += handle.first
        return codes.astype(self._code_dtype, copy=False)

    def drop(self, handle: SpillHandle) -> None:
        """Delete one consumed run file."""
        try:
            os.unlink(handle.path)
        except OSError:
            pass

    # -- edge buckets --------------------------------------------------

    def bucket_writer(self, tag: str) -> "_BucketWriter":
        """An appender for raw ``(target, source)`` pairs in bucket ``tag``."""
        if tag not in self._buckets:
            path = os.path.join(self._ensure_dir(), f"bucket-{tag}.bin")
            self._buckets[tag] = open(path, "ab")
            self._obs.count("shm.spill.files")
        return _BucketWriter(self, self._buckets[tag])

    def _empty_pair(self) -> Tuple[np.ndarray, np.ndarray]:
        empty = np.empty(0, dtype=self._code_dtype)
        return empty, empty

    def _bucket_views(self, tag: str) -> Tuple[np.ndarray, np.ndarray]:
        """Read-only memmap views of a sorted bucket (cached mapping)."""
        path, pairs = self._sorted_buckets[tag]
        if pairs == 0:
            return self._empty_pair()
        flat = self._bucket_maps.get(tag)
        if flat is None:
            flat = np.memmap(path, dtype=self._code_dtype, mode="r")
            self._bucket_maps[tag] = flat
        return flat[:pairs], flat[pairs:]

    def load_bucket_sorted(self, tag: str) -> Tuple[np.ndarray, np.ndarray]:
        """The bucket's ``(targets, sources)`` columns, sorted by target.

        The first load sorts and caches the sorted form back to disk;
        later loads return read-only views of one shared memory map of
        the sorted file — revisiting a bucket touches the page cache,
        not the filesystem.  Views are only valid until the next
        :meth:`drop_buckets`/:meth:`close`.  Missing bucket = empty.
        """
        writer = self._buckets.pop(tag, None)
        if writer is not None:
            writer.close()
        if tag in self._sorted_buckets:
            return self._bucket_views(tag)
        if self._dir is None:
            return self._empty_pair()
        path = os.path.join(self._dir, f"bucket-{tag}.bin")
        if not os.path.exists(path):
            return self._empty_pair()
        flat = np.fromfile(path, dtype=self._code_dtype)
        targets = flat[0::2].copy()
        sources = flat[1::2].copy()
        order = np.argsort(targets, kind="stable")
        targets = targets[order]
        sources = sources[order]
        sorted_path = os.path.join(self._dir, f"bucket-{tag}.sorted.bin")
        with open(sorted_path, "wb") as sink:
            targets.tofile(sink)
            sources.tofile(sink)
        os.unlink(path)
        self._sorted_buckets[tag] = (sorted_path, int(targets.shape[0]))
        return self._bucket_views(tag)

    def _release_bucket_maps(self) -> None:
        for flat in self._bucket_maps.values():
            mapping = getattr(flat, "_mmap", None)
            if mapping is not None:
                try:
                    mapping.close()
                except (BufferError, OSError):  # pragma: no cover - live views
                    pass
        self._bucket_maps.clear()

    def drop_buckets(self) -> None:
        """Delete all bucket files (between peels over the same store)."""
        for writer in self._buckets.values():
            writer.close()
        self._buckets.clear()
        self._release_bucket_maps()
        for path, _ in self._sorted_buckets.values():
            try:
                os.unlink(path)
            except OSError:
                pass
        self._sorted_buckets.clear()
        if self._dir is not None:
            for entry in os.listdir(self._dir):
                if entry.startswith("bucket-"):
                    try:
                        os.unlink(os.path.join(self._dir, entry))
                    except OSError:
                        pass

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Remove the whole spill directory.  Idempotent."""
        for writer in self._buckets.values():
            try:
                writer.close()
            except OSError:  # pragma: no cover - platform noise
                pass
        self._buckets.clear()
        self._release_bucket_maps()
        self._sorted_buckets.clear()
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None

    def __enter__(self) -> "SpillStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _BucketWriter:
    """Thin append handle returned by :meth:`SpillStore.bucket_writer`."""

    def __init__(self, store: SpillStore, sink: IO[bytes]):
        self._store = store
        self._sink = sink

    def append(self, targets: np.ndarray, sources: np.ndarray) -> None:
        if targets.shape[0] == 0:
            return
        pairs = np.empty(
            (targets.shape[0], 2), dtype=self._store._code_dtype
        )
        pairs[:, 0] = targets
        pairs[:, 1] = sources
        pairs.tofile(self._sink)
        self._store._obs.count("shm.spill.bytes", pairs.nbytes)
