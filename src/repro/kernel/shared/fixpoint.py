"""Streamed fixpoints: vector verdicts in bounded RSS.

Re-implementations of the vector engine's fixpoints
(:mod:`repro.kernel.vector.fixpoint`) over the shared substrate:

* flags live in bit-packed :class:`~.frontier.BitField`\\ s (in a
  shared-memory segment when workers shard the rounds);
* member/frontier batches are evaluated one code chunk at a time
  through the table-free :class:`~.kernel.SharedKernel`;
* frontier rounds and eviction lists that outgrow their RAM cap spill
  delta-encoded to the run's :class:`~.spill.SpillStore`;
* the cycle and longest-path analyses run as an **out-of-core Kahn
  peel**: one streamed sweep writes in-edges to bucket files
  partitioned by target code range, then the peel loads one bucket at
  a time — each edge is touched O(1) times and resident cost is one
  bucket plus the per-code degree array, never the edge set.

Verdict- and counter-compatibility with the vector fixpoints is exact:
the chunked core rounds evaluate the same Jacobi operator against the
same round-start snapshot (a member's eviction depends only on its own
out-edges and the snapshot, so chunk boundaries cannot change any
round's eviction set), and the peel computes the same
processed-versus-member count as the in-RAM Kahn trim.

Worker sharding follows the repo's fork protocol: the driver stages
kernel and round parameters in the :class:`~repro.parallel.pool.WorkerPool`
context (inherited copy-on-write — lowered closures need no pickling
and no re-derivation), workers attach to the flags segment by name and
scan their byte-range partition, and each returns its results through
a run-prefixed output segment the driver attaches, consumes, and
unlinks.  Supervision (timeouts, kills, quarantine-to-inline) comes
from the resilience supervisor; the registry's prefix sweep reclaims
any segment a killed worker left behind.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ...obs import NULL_INSTRUMENTATION, Instrumentation, ProgressEmitter
from ...parallel.pool import (
    WorkerPool,
    using_worker_instrumentation,
    worker_context,
)
from ...resilience import chaos
from ..vector.kernel import VectorKernel, _ranges, _unique_sorted
from .frontier import BitField, CodeRuns
from .image import SharedImage
from .kernel import SharedKernel
from .runtime import SharedRuntime
from .segments import attach_segment, create_worker_segment
from .visited import attach_visited, open_visited

__all__ = [
    "shared_reachable",
    "shared_core",
    "shared_terminals",
    "shared_has_cycle",
    "shared_longest_path",
]

#: Cap on peel buckets; above this the per-bucket bookkeeping
#: outweighs the RAM saving.
_MAX_BUCKETS = 512


def _partition_bounds(nbytes: int, parts: int) -> List[Tuple[int, int]]:
    """Byte-range partition of a bitfield across ``parts`` workers."""
    return [
        (part * nbytes // parts, (part + 1) * nbytes // parts)
        for part in range(parts)
    ]


def _consume_outputs(
    runtime: SharedRuntime, results: List[Tuple[Optional[str], int]]
) -> List[np.ndarray]:
    """Attach, copy out, and unlink every worker output segment.

    Outputs travel at the run's storage width; consumers widen at the
    arithmetic boundary.
    """
    arrays: List[np.ndarray] = []
    for name, count in results:
        if not name or count == 0:
            continue
        segment = runtime.registry.attach(name)
        try:
            codes = np.frombuffer(
                segment.buf, dtype=runtime.code_dtype, count=count
            ).copy()
        finally:
            runtime.registry.release(segment)
        arrays.append(codes)
    return arrays


# ----------------------------------------------------------------------
# Reachability.
# ----------------------------------------------------------------------


def _expand_task(payload: Tuple[int, int, int]) -> Tuple[Optional[str], int]:
    """Worker: expand one code-range partition of the staged frontier.

    Reads the frontier run (at the run's storage width) and the shared
    visited backing — shm segment or mmap file — zero-copy, expands
    its partition chunk-wise, and writes the deduplicated unvisited
    targets to an output segment.
    """
    part, parts, round_index = payload
    ctx = worker_context()["shared_reachable"]
    kernel: SharedKernel = ctx["kernel"]
    code_dtype: np.dtype = ctx["code_dtype"]
    frontier_segment = attach_segment(ctx["frontier_name"])
    attached = attach_visited(ctx["visited_ref"])
    frontier = None
    try:
        frontier = np.frombuffer(
            frontier_segment.buf, dtype=code_dtype, count=ctx["frontier_count"]
        )
        visited = attached.field
        lo = part * kernel.size // parts
        hi = (part + 1) * kernel.size // parts
        # Probe at the frontier's storage width: ``hi`` can equal
        # ``size`` (one past the largest code), which may not fit a
        # narrow dtype — but then every frontier code is below it.
        begin = int(np.searchsorted(frontier, np.asarray(lo, dtype=code_dtype)))
        if hi >= kernel.size:
            end = int(frontier.shape[0])
        else:
            end = int(
                np.searchsorted(frontier, np.asarray(hi, dtype=code_dtype))
            )
        fresh_parts: List[np.ndarray] = []
        for start in range(begin, end, ctx["chunk"]):
            codes = frontier[start : min(start + ctx["chunk"], end)]
            _, targets = kernel.succ_pairs(codes)
            fresh = _unique_sorted(targets)
            fresh = fresh[~visited.test(fresh)]
            if fresh.size:
                fresh_parts.append(fresh)
        if not fresh_parts:
            return None, 0
        fresh_all = _unique_sorted(np.concatenate(fresh_parts))
        return _write_output(
            ctx["prefix"], f"x{round_index}p{part}", fresh_all, code_dtype
        )
    finally:
        frontier = None  # noqa: F841 - drops the exported buffer view
        attached.close()
        frontier_segment.close()


def _write_output(
    prefix: str, tag: str, codes: np.ndarray, dtype: np.dtype
) -> Tuple[str, int]:
    """Write a worker result array into a fresh run-prefixed segment."""
    stored = np.ascontiguousarray(codes, dtype=dtype)
    out = create_worker_segment(prefix, tag, stored.nbytes)
    view = np.frombuffer(out.buf, dtype=dtype, count=stored.size)
    view[:] = stored
    del view  # release the exported buffer before unmapping
    name = out.name
    out.close()
    return name, int(stored.size)


def shared_reachable(
    kernel: SharedKernel,
    sources: np.ndarray,
    runtime: SharedRuntime,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> BitField:
    """Codes reachable from ``sources`` as a bit-packed field.

    The vector BFS with three substitutions: visited flags are one bit
    per code (in a shm segment when sharded, an mmap file when the
    field outgrows its budget slice — :func:`~.visited.open_visited`),
    each frontier round is a :class:`CodeRuns` that spills past its
    RAM cap, and rounds larger than the sharding threshold fan out
    over code-range partitions.  The visited *set* per round is
    identical to the vector engine's.
    """
    size = kernel.size
    handle = open_visited(runtime, size, "visited", instrumentation)
    visited = handle.field
    frontier = CodeRuns(
        runtime.spill, runtime.run_cap_bytes, dtype=runtime.code_dtype
    )
    start = _unique_sorted(np.asarray(sources, dtype=np.int64))
    visited.set_codes(start)
    frontier.append(start)
    progress = ProgressEmitter(instrumentation, "shared.reachable")
    chaos_hook = (
        chaos.engine_states if chaos.active_plan() is not None else None
    )
    rounds = 0
    expanded = 0
    while frontier.count:
        rounds += 1
        expanded += frontier.count
        if chaos_hook is not None:
            chaos_hook("shared", expanded)
        if progress.enabled:
            instrumentation.observe("shm.frontier.size", frontier.count)
            progress.tick(rounds, frontier.count, expanded)
        next_frontier = CodeRuns(
            runtime.spill, runtime.run_cap_bytes, dtype=runtime.code_dtype
        )
        for run_index, run in enumerate(frontier.chunks()):
            if runtime.parallel(run.size) and handle.sharable:
                run_segment = runtime.registry.create(
                    run.nbytes, f"f{rounds}r{run_index}"
                )
                staged = np.frombuffer(
                    run_segment.buf, dtype=run.dtype, count=run.size
                )
                staged[:] = run
                del staged
                handle.flush()
                with WorkerPool(
                    runtime.workers,
                    shared_reachable={
                        "kernel": kernel,
                        "frontier_name": run_segment.name,
                        "frontier_count": int(run.size),
                        "code_dtype": runtime.code_dtype,
                        "visited_ref": handle.ref,
                        "prefix": runtime.registry.prefix,
                        "chunk": runtime.chunk,
                    },
                ) as pool:
                    # Route supervision recoveries (worker death,
                    # retries, quarantine) to the engine's sink.
                    with using_worker_instrumentation(instrumentation):
                        results = pool.map(
                            _expand_task,
                            [
                                (part, runtime.workers, rounds)
                                for part in range(runtime.workers)
                            ],
                        )
                runtime.registry.release(run_segment)
                for codes in _consume_outputs(runtime, results):
                    mask = ~visited.test(codes)
                    fresh = codes[mask]
                    visited.set_codes(fresh)
                    next_frontier.append(fresh)
            else:
                for offset in range(0, run.size, runtime.chunk):
                    codes = run[offset : offset + runtime.chunk]
                    _, targets = kernel.succ_pairs(codes)
                    fresh = _unique_sorted(targets)
                    fresh = fresh[~visited.test(fresh)]
                    visited.set_codes(fresh)
                    next_frontier.append(fresh)
        frontier.clear()
        frontier = next_frontier
        if frontier.spilled_runs:
            instrumentation.count("shm.spill.rounds")
    frontier.clear()
    # The caller owns a private bitfield either way; the shared
    # backing (segment or mmap file) is released here.
    return handle.detach_private()


# ----------------------------------------------------------------------
# The behavioural core.
# ----------------------------------------------------------------------


def _evict_chunk(
    members: np.ndarray,
    kernel: SharedKernel,
    abstract_kernel: VectorKernel,
    image: SharedImage,
    flags: BitField,
    abs_has_successor: np.ndarray,
    stutter_insensitive: bool,
    ignorable_stutter: bool,
) -> np.ndarray:
    """Members of one chunk the current Jacobi round evicts.

    A transliteration of one ``vector_core`` round restricted to
    ``members`` — exact, because a member's eviction depends only on
    its own out-edges and the round-start snapshot in ``flags``.
    """
    origins, targets = kernel.succ_pairs(members)
    image_members = image.of(members)
    sources = members[origins]
    image_source = image_members[origins]
    image_target = image.of(targets)
    abstract_edge = abstract_kernel.has_edge(image_source, image_target)
    self_loop = targets == sources
    if stutter_insensitive:
        stutter_progress = image_target == image_source
    else:
        stutter_progress = np.zeros(targets.shape, dtype=bool)
    member_target = flags.test(targets)
    if ignorable_stutter:
        evict_self = np.zeros(targets.shape, dtype=bool)
    else:
        evict_self = ~abstract_edge
    evict_edge = np.where(
        self_loop,
        evict_self,
        ~member_target | (~stutter_progress & ~abstract_edge),
    )
    progress_edge = np.where(
        self_loop,
        abstract_edge,
        member_target & (stutter_progress | abstract_edge),
    )
    count = members.size
    evict = np.bincount(origins[evict_edge], minlength=count) > 0
    progressed = np.bincount(origins[progress_edge], minlength=count) > 0
    evict |= ~progressed & abs_has_successor[image_members]
    return members[evict]


def _core_round_task(
    payload: Tuple[int, int, int]
) -> Tuple[Optional[str], int]:
    """Worker: evaluate one Jacobi round over a flags partition."""
    part, parts, round_index = payload
    ctx = worker_context()["shared_core"]
    kernel: SharedKernel = ctx["kernel"]
    attached = attach_visited(ctx["flags_ref"])
    try:
        flags = attached.field
        start_byte, end_byte = _partition_bounds(flags.nbytes, parts)[part]
        evicted_parts: List[np.ndarray] = []
        for members in flags.member_chunks(ctx["chunk"], start_byte, end_byte):
            evicted = _evict_chunk(
                members,
                kernel,
                ctx["abstract_kernel"],
                ctx["image"],
                flags,
                ctx["abs_has_successor"],
                ctx["stutter_insensitive"],
                ctx["ignorable_stutter"],
            )
            if evicted.size:
                evicted_parts.append(evicted)
        if not evicted_parts:
            return None, 0
        evicted_all = np.concatenate(evicted_parts)
        return _write_output(
            ctx["prefix"], f"c{round_index}p{part}", evicted_all,
            ctx["code_dtype"],
        )
    finally:
        attached.close()


def shared_core(
    kernel: SharedKernel,
    abstract_kernel: VectorKernel,
    image: SharedImage,
    legitimate: np.ndarray,
    stutter_insensitive: bool,
    fairness_ignores_stutter: bool,
    runtime: SharedRuntime,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> BitField:
    """The behavioural core as a bit-packed field over concrete codes.

    ``vector_core``'s Jacobi fixpoint with streamed init and rounds.
    Counters and per-iteration events are emitted with the vector
    engine's names and values — the rounds evaluate the identical
    operator, so ``check.fixpoint.iteration`` sequences agree.
    """
    size = kernel.size
    legitimate = np.asarray(legitimate, dtype=bool)
    handle = open_visited(runtime, size, "core", instrumentation)
    flags = handle.field
    remaining = 0
    for start in range(0, size, runtime.chunk):
        codes = np.arange(
            start, min(start + runtime.chunk, size), dtype=np.int64
        )
        images = image.of(codes)
        valid = images >= 0
        member = valid & legitimate[np.where(valid, images, 0)]
        hits = codes[member]
        flags.set_codes(hits)
        remaining += int(hits.size)
    instrumentation.count("check.states.enumerated", size)
    instrumentation.count("check.candidates.initial", remaining)
    abs_has_successor = ~abstract_kernel.terminal_flags()
    ignorable_stutter = stutter_insensitive or fairness_ignores_stutter
    progress = ProgressEmitter(instrumentation, "shared.core")
    chaos_hook = (
        chaos.engine_states if chaos.active_plan() is not None else None
    )
    if chaos_hook is not None:
        chaos_hook("shared", size)
    iterations = 0
    changed = True
    while changed:
        iterations += 1
        if chaos_hook is not None:
            chaos_hook("shared", size * (iterations + 1))
        evicted_runs = CodeRuns(
            runtime.spill, runtime.run_cap_bytes, dtype=runtime.code_dtype
        )
        if runtime.parallel(remaining) and handle.sharable:
            handle.flush()
            with WorkerPool(
                runtime.workers,
                shared_core={
                    "kernel": kernel,
                    "abstract_kernel": abstract_kernel,
                    "image": image,
                    "flags_ref": handle.ref,
                    "code_dtype": runtime.code_dtype,
                    "abs_has_successor": abs_has_successor,
                    "stutter_insensitive": stutter_insensitive,
                    "ignorable_stutter": ignorable_stutter,
                    "prefix": runtime.registry.prefix,
                    "chunk": runtime.chunk,
                },
            ) as pool:
                # Route supervision recoveries to the engine's sink.
                with using_worker_instrumentation(instrumentation):
                    results = pool.map(
                        _core_round_task,
                        [
                            (part, runtime.workers, iterations)
                            for part in range(runtime.workers)
                        ],
                    )
            for codes in _consume_outputs(runtime, results):
                evicted_runs.append(codes)
        else:
            for members in flags.member_chunks(runtime.chunk):
                evicted = _evict_chunk(
                    members,
                    kernel,
                    abstract_kernel,
                    image,
                    flags,
                    abs_has_successor,
                    stutter_insensitive,
                    ignorable_stutter,
                )
                evicted_runs.append(evicted)
        evicted_total = evicted_runs.count
        for codes in evicted_runs.chunks():
            flags.clear_codes(codes)
        if evicted_runs.spilled_runs:
            instrumentation.count("shm.spill.rounds")
        evicted_runs.clear()
        changed = evicted_total > 0
        remaining -= evicted_total
        instrumentation.event(
            "check.fixpoint.iteration",
            index=iterations,
            evicted=evicted_total,
            remaining=remaining,
        )
        instrumentation.count("check.states.evicted", evicted_total)
        instrumentation.observe("check.round.evicted", evicted_total)
        progress.tick(iterations, remaining, size * iterations)
    instrumentation.count("check.fixpoint.iterations", iterations)
    return handle.detach_private()


# ----------------------------------------------------------------------
# Terminals, cycles, longest path (out-of-core Kahn peel).
# ----------------------------------------------------------------------


def shared_terminals(
    kernel: SharedKernel,
    region: BitField,
    runtime: SharedRuntime,
    drop_self: bool = False,
) -> np.ndarray:
    """Codes in ``region`` with no successors at all, ascending."""
    found: List[np.ndarray] = []
    for codes in region.member_chunks(runtime.chunk):
        terminal = kernel.terminal_chunk(codes, drop_self)
        if terminal.any():
            found.append(codes[terminal])
    if not found:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(found)


class _PeelGraph:
    """Phase A of the out-of-core peel: degrees and bucketed in-edges.

    One streamed sweep over the region computes the per-code in-region
    out-degree (the only full-space array the peel keeps) and appends
    each in-region edge, as a ``(target, source)`` pair, to the spill
    bucket owning the target's code range.
    """

    def __init__(
        self,
        kernel: SharedKernel,
        region: BitField,
        runtime: SharedRuntime,
        drop_self: bool,
        image: Optional[SharedImage],
        track_exits: bool,
    ):
        size = kernel.size
        self.runtime = runtime
        pair_bytes = 2 * runtime.code_dtype.itemsize
        edge_estimate = size * max(1, len(kernel.actions)) * pair_bytes
        self.buckets = max(
            1,
            min(_MAX_BUCKETS, -(-edge_estimate // runtime.run_cap_bytes)),
        )
        self.span = -(-size // self.buckets)
        self.out_degree = np.zeros(size, dtype=np.uint16)
        self.member_count = 0
        self.exit_bits = BitField(size) if track_exits else None
        writers = [
            runtime.spill.bucket_writer(str(bucket))
            for bucket in range(self.buckets)
        ]
        for codes in region.member_chunks(runtime.chunk):
            self.member_count += int(codes.size)
            origins, targets = kernel.succ_pairs(codes)
            sources = codes[origins]
            if drop_self:
                live = targets != sources
                sources, targets = sources[live], targets[live]
            inside = region.test(targets)
            if self.exit_bits is not None:
                self.exit_bits.set_codes(sources[~inside])
            sources, targets = sources[inside], targets[inside]
            if image is not None and sources.size:
                invisible = image.of(sources) == image.of(targets)
                sources, targets = sources[invisible], targets[invisible]
            if not sources.size:
                continue
            # ``sources`` is nondecreasing (succ_pairs sorts by origin
            # and the filters preserve order), so the out-degree bump
            # is a boundary count, not a scalar ``ufunc.at`` loop.
            grouped = sources
            if np.any(grouped[1:] < grouped[:-1]):
                grouped = np.sort(grouped)
            starts = np.flatnonzero(
                np.concatenate(([True], grouped[1:] != grouped[:-1]))
            )
            per_source = np.diff(np.append(starts, grouped.shape[0]))
            self.out_degree[grouped[starts]] += per_source.astype(np.uint16)
            bucket_of = targets // self.span
            order = np.argsort(bucket_of, kind="stable")
            targets, sources, bucket_of = (
                targets[order],
                sources[order],
                bucket_of[order],
            )
            edges = np.searchsorted(
                bucket_of, np.arange(self.buckets + 1, dtype=np.int64)
            )
            for bucket in range(self.buckets):
                lo, hi = edges[bucket], edges[bucket + 1]
                if hi > lo:
                    writers[bucket].append(
                        targets[lo:hi], sources[lo:hi]
                    )

    def initial_pending(
        self, region: BitField
    ) -> Tuple[List[List[np.ndarray]], int]:
        """Zero-out-degree members, routed to their owning buckets."""
        pending: List[List[np.ndarray]] = [[] for _ in range(self.buckets)]
        processed = 0
        for codes in region.member_chunks(self.runtime.chunk):
            zero = codes[self.out_degree[codes] == 0]
            processed += int(zero.size)
            self._route(pending, zero)
        return pending, processed

    def _route(
        self, pending: List[List[np.ndarray]], nodes: np.ndarray
    ) -> None:
        if not nodes.size:
            return
        bucket_of = nodes // self.span
        edges = np.searchsorted(
            bucket_of, np.arange(self.buckets + 1, dtype=np.int64)
        )
        for bucket in range(self.buckets):
            lo, hi = edges[bucket], edges[bucket + 1]
            if hi > lo:
                pending[bucket].append(nodes[lo:hi])

    def peel(
        self,
        pending: List[List[np.ndarray]],
        processed: int,
        depth: Optional[np.ndarray] = None,
    ) -> int:
        """Run the peel to exhaustion; returns nodes processed.

        With ``depth`` (an int32 per-code array) accumulates the
        longest-path metric exactly as the in-RAM peel: when a node is
        finalized, each in-edge source's depth rises to at least
        ``1 + depth[node]``.
        """
        while True:
            bucket = next(
                (
                    index
                    for index, items in enumerate(pending)
                    if items
                ),
                None,
            )
            if bucket is None:
                return processed
            nodes = _unique_sorted(np.concatenate(pending[bucket]))
            pending[bucket] = []
            targets_b, sources_b = self.runtime.spill.load_bucket_sorted(
                str(bucket)
            )
            # Probe at the bucket's storage width: widening the probe
            # instead would upcast (and copy) the whole memory map.
            probe = nodes.astype(targets_b.dtype, copy=False)
            left = np.searchsorted(targets_b, probe)
            right = np.searchsorted(targets_b, probe, side="right")
            counts = right - left
            in_sources = np.asarray(
                sources_b[_ranges(left, counts)], dtype=np.int64
            )
            if not in_sources.size:
                continue
            # One shared sort groups the in-edges by source; the
            # grouped forms of the degree decrement and the depth max
            # are exact replacements for the scalar ``ufunc.at`` loops
            # (subtraction of per-group counts, ``reduceat`` max).
            if depth is not None:
                contrib = np.repeat(
                    depth[nodes].astype(np.int32) + 1, counts
                )
                order = np.argsort(in_sources, kind="stable")
                grouped = in_sources[order]
                contrib = contrib[order]
            else:
                grouped = np.sort(in_sources)
            starts = np.flatnonzero(
                np.concatenate(([True], grouped[1:] != grouped[:-1]))
            )
            uniq = grouped[starts]
            per_source = np.diff(np.append(starts, grouped.shape[0]))
            if depth is not None:
                peak = np.maximum.reduceat(contrib, starts)
                depth[uniq] = np.maximum(depth[uniq], peak)
            self.out_degree[uniq] -= per_source.astype(np.uint16)
            newly = uniq[self.out_degree[uniq] == 0]
            processed += int(newly.size)
            self._route(pending, newly)


def _peel(
    kernel: SharedKernel,
    region: BitField,
    runtime: SharedRuntime,
    drop_self: bool,
    image: Optional[SharedImage],
    track_exits: bool,
    depth: Optional[np.ndarray],
) -> Tuple[int, int, Optional[BitField]]:
    """Build the bucketed graph, peel it, and clean the buckets up."""
    try:
        graph = _PeelGraph(
            kernel, region, runtime, drop_self, image, track_exits
        )
        if graph.member_count == 0:
            return 0, 0, None
        pending, processed = graph.initial_pending(region)
        if depth is not None and graph.exit_bits is not None:
            for codes in region.member_chunks(runtime.chunk):
                exits = codes[graph.exit_bits.test(codes)]
                depth[exits] = 1
        processed = graph.peel(pending, processed, depth)
        return processed, graph.member_count, graph.exit_bits
    finally:
        runtime.spill.drop_buckets()


def shared_has_cycle(
    kernel: SharedKernel,
    region: BitField,
    runtime: SharedRuntime,
    drop_self: bool = False,
    image: Optional[SharedImage] = None,
) -> bool:
    """Whether a cycle (including a self-loop) lies within ``region``.

    The vector engine's Kahn trim with the edge set on disk: a cycle
    exists iff the peel cannot exhaust the region.  With ``image`` the
    relation is first restricted to image-invisible edges.
    """
    processed, member_count, _ = _peel(
        kernel, region, runtime, drop_self, image, False, None
    )
    return processed < member_count


def shared_longest_path(
    kernel: SharedKernel,
    region: BitField,
    runtime: SharedRuntime,
    drop_self: bool = False,
) -> int:
    """Longest transition path staying within ``region``.

    Raises:
        ValueError: if a cycle is found after all, with the tuple
            engine's exact message.
    """
    depth = np.zeros(kernel.size, dtype=np.int32)
    processed, member_count, _ = _peel(
        kernel, region, runtime, drop_self, None, True, depth
    )
    if member_count == 0:
        return 0
    if processed < member_count:
        raise ValueError("cycle outside the core; check stabilization first")
    longest = 0
    for codes in region.member_chunks(runtime.chunk):
        longest = max(longest, int(depth[codes].max()))
    return longest
