"""Cross-round action-table reuse: a bounded shm-backed table pool.

The streamed kernel re-lowers every chunk it evaluates — guard masks
and digit deltas are recomputed from the closures each time
:meth:`~.kernel.SharedKernel.iter_actions` sees a code batch.  That is
the memory/compute trade the engine is built on, but the fixpoints
walk the *same* member chunks repeatedly: the terminal sweep and the
peel's graph build iterate one region back to back, the worst-case
phase re-runs the cycle peel, and small cores re-enter the Jacobi
rounds with identical chunks.  Re-lowering those is pure waste.

:class:`TablePool` caches the lowered per-action results per chunk:

* **key** — a BLAKE2b digest of the chunk's code bytes.  A hit is
  *verified* by comparing the stored codes against the queried chunk
  byte for byte, so a digest collision degrades to a miss instead of a
  wrong table — byte-identity of verdicts never rests on a hash;
* **payload** — one shared-memory segment per entry holding the codes
  (for verification), the per-action digit deltas in the run's storage
  dtype (see :mod:`.width`), and the per-action guard masks packed to
  one bit per code.  Segments are created through the run's
  :class:`~.segments.SegmentRegistry`, so the unconditional sweep
  reclaims them on every exit path, and forked workers read entries
  that existed at fork time zero-copy;
* **bound & scan resistance** — resident bytes are capped (a quarter
  of the budget), and the policy is built for the engine's access
  pattern: long sequential sweeps over regions that may dwarf the cap.
  Plain LRU *floods* under that pattern (every entry is evicted before
  its next use — measured zero hits and pure overhead), so admission
  is gated on a **ghost digest**: a chunk is only admitted once its
  digest has already missed before (one-shot frontier chunks never pay
  the packing cost, recurring region chunks are admitted on their
  second sweep), and a full pool *freezes* instead of rotating — the
  resident prefix of the region keeps hitting on every later sweep.
  Eviction exists but is conservative: only entries that have never
  been hit may be evicted, and only for a candidate that has already
  missed three times (provably recurring), so a hot resident is never
  sacrificed to the scan that is flooding past it.  Entries larger
  than the cap are simply not admitted.

Counters: ``kernel.tables.hits`` / ``kernel.tables.misses`` /
``kernel.tables.evictions``, plus ``kernel.tables.hit_codes`` — the
number of codes served from cache instead of re-lowered, the pool's
deterministic work-elimination metric (a verified hit is 5–7× cheaper
than fresh lowering at production chunk sizes, but wall-clock impact
depends on how much of a phase is lowering-bound).  They are
driver-side observability (a
forked worker neither admits entries nor counts its hits — its
recorder copy would be lost), so they are deliberately *not* part of
the cross-engine counter-identity set.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ...obs import NULL_INSTRUMENTATION, Instrumentation
from .segments import Segment, SegmentRegistry

__all__ = ["TablePool"]

ActionTable = Tuple[np.ndarray, np.ndarray]

#: Ghost digests remembered for admission control.  16 bytes of key and
#: a small int each — the whole structure stays tiny.
GHOST_CAP = 8192

#: A digest must have missed this many times before it may be admitted
#: at all (second sweep), and this many before it may *evict* for room
#: (third sweep — provably recurring, not a passing scan).
ADMIT_MISSES = 2
EVICT_MISSES = 3


class _Entry:
    """Driver-side metadata for one cached chunk (payload in shm)."""

    __slots__ = ("segment", "count", "actions", "nbytes", "hits")

    def __init__(self, segment: Segment, count: int, actions: int, nbytes: int):
        self.segment = segment
        self.count = count
        self.actions = actions
        self.nbytes = nbytes
        self.hits = 0


class _Probe:
    """One chunk's narrowed codes and digest, hashed exactly once.

    :meth:`TablePool.lookup` hands this to the caller so the admission
    path (:meth:`TablePool.filling`) does not rehash what the lookup
    already paid for.
    """

    __slots__ = ("stored", "key")

    def __init__(self, stored: np.ndarray, key: bytes):
        self.stored = stored
        self.key = key


class TablePool:
    """A bounded LRU of lowered per-chunk action tables in shm.

    Args:
        registry: the run's segment registry (scopes entry segments
            under the run prefix for the unconditional sweep).
        cap_bytes: resident ceiling for all entries together.
        dtype: the run's code storage dtype (:func:`~.width.code_dtype`
            under packing, int64 otherwise); deltas fit it because
            ``|succ - code| < size``.
    """

    def __init__(
        self,
        registry: SegmentRegistry,
        cap_bytes: int,
        dtype: np.dtype,
        instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    ):
        self._registry = registry
        self._cap = max(1 << 16, cap_bytes)
        self._dtype = np.dtype(dtype)
        self._obs = instrumentation
        self._entries: "OrderedDict[bytes, _Entry]" = OrderedDict()
        self._ghosts: "OrderedDict[bytes, int]" = OrderedDict()
        self._bytes = 0
        self._seq = 0
        self._pid = os.getpid()
        self._closed = False

    @property
    def resident_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    # -- keying --------------------------------------------------------

    def _key(self, stored: np.ndarray) -> bytes:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(stored.tobytes())
        return digest.digest()

    def _stored_form(self, codes: np.ndarray) -> np.ndarray:
        # Codes are < size, so narrowing to the storage dtype is
        # lossless; the narrow form is both the key material and the
        # collision-verification payload.
        return np.ascontiguousarray(codes.astype(self._dtype, copy=False))

    # -- lookup --------------------------------------------------------

    def get(self, codes: np.ndarray) -> Optional[List[ActionTable]]:
        """The cached ``(mask, successor)`` list for a chunk, or ``None``."""
        return self.lookup(codes)[0]

    def lookup(
        self, codes: np.ndarray
    ) -> Tuple[Optional[List[ActionTable]], Optional[_Probe]]:
        """One-hash lookup: ``(cached tables or None, admission probe)``.

        Reconstruction is value-identical to a fresh evaluation:
        ``successor = codes + delta`` with a zero delta wherever the
        action is disabled, exactly the identity default the streamed
        evaluator produces.  On a miss the probe carries the narrowed
        codes and digest forward to :meth:`filling`, so one walk pays
        for one hash, not two.
        """
        if self._closed:
            return None, None
        stored = self._stored_form(codes)
        key = self._key(stored)
        probe = _Probe(stored, key)
        entry = self._entries.get(key)
        driver = os.getpid() == self._pid
        if entry is None or entry.count != stored.size:
            if driver:
                self._obs.count("kernel.tables.misses")
                self._note_miss(key)
            return None, probe
        raw = np.frombuffer(entry.segment.buf, dtype=np.uint8)
        width = self._dtype.itemsize
        codes_end = entry.count * width
        if not np.array_equal(
            raw[:codes_end].view(self._dtype), stored
        ):  # digest collision: a miss, never a wrong table
            if driver:
                self._obs.count("kernel.tables.misses")
                self._note_miss(key)
            return None, probe
        if driver:
            self._entries.move_to_end(key)
            entry.hits += 1
            self._obs.count("kernel.tables.hits")
            self._obs.count("kernel.tables.hit_codes", entry.count)
        deltas_end = codes_end + entry.actions * entry.count * width
        deltas = raw[codes_end:deltas_end].view(self._dtype)
        masks = raw[deltas_end : deltas_end + entry.actions * ((entry.count + 7) // 8)]
        mask_bytes = (entry.count + 7) // 8
        tables: List[ActionTable] = []
        for index in range(entry.actions):
            packed = masks[index * mask_bytes : (index + 1) * mask_bytes]
            mask = np.unpackbits(packed, count=entry.count, bitorder="little")
            delta = deltas[index * entry.count : (index + 1) * entry.count]
            succ = codes + delta.astype(np.int64, copy=False)
            tables.append((mask.view(bool), succ))
        del raw, deltas, masks
        return tables, probe

    # -- admission -----------------------------------------------------

    def _note_miss(self, key: bytes) -> None:
        """Remember a driver-side miss in the bounded ghost digests."""
        self._ghosts[key] = self._ghosts.get(key, 0) + 1
        self._ghosts.move_to_end(key)
        while len(self._ghosts) > GHOST_CAP:
            self._ghosts.popitem(last=False)

    def _eligible(self, key: bytes) -> bool:
        """May this digest be packed for admission at all?

        First-time chunks are never eligible — a sequential scan of
        one-shot chunks must not pay the packing cost, let alone
        rotate the pool.  A second-miss digest is eligible while the
        pool has room; once full, only a third-miss digest (which may
        evict) is worth packing.
        """
        misses = self._ghosts.get(key, 0)
        if misses < ADMIT_MISSES:
            return False
        if self._bytes < self._cap:
            return True
        return misses >= EVICT_MISSES

    def filling(
        self,
        codes: np.ndarray,
        inner: Iterator[ActionTable],
        probe: Optional[_Probe] = None,
    ) -> Iterator[ActionTable]:
        """Yield ``inner``'s tables, packing them for admission when
        the chunk's ghost digest says it recurs.

        The entry is admitted only when ``inner`` is fully consumed
        (every consumer in the engine drains its iterator), and only
        on the driver — a forked worker's admission would die with it.
        An ineligible chunk streams straight through with no packing
        overhead at all.  Pass the probe a preceding :meth:`lookup`
        returned to reuse its hash.
        """
        if self._closed or os.getpid() != self._pid:
            yield from inner
            return
        if probe is None:
            stored = self._stored_form(codes)
            probe = _Probe(stored, self._key(stored))
        if probe.key in self._entries or not self._eligible(probe.key):
            yield from inner
            return
        packed_masks: List[np.ndarray] = []
        packed_deltas: List[np.ndarray] = []
        for mask, succ in inner:
            packed_masks.append(np.packbits(mask, bitorder="little"))
            packed_deltas.append(
                (succ - codes).astype(self._dtype, copy=False)
            )
            yield mask, succ
        self._admit(probe.stored, probe.key, packed_masks, packed_deltas)

    def _make_room(self, key: bytes, nbytes: int) -> bool:
        """Free space for ``nbytes`` by evicting never-hit entries.

        Entries that have served a hit are protected — a hot resident
        is never sacrificed to the scan flooding past it — so room
        comes only from zero-hit entries in LRU order, and only for a
        candidate that has already missed :data:`EVICT_MISSES` times.
        When every resident is protected, their hit counts are halved
        instead: a once-hot entry the workload has moved past decays
        to evictable, while genuinely hot entries keep re-earning
        their protection.
        """
        if self._ghosts.get(key, 0) < EVICT_MISSES:
            return False
        victims: List[bytes] = []
        freed = 0
        for vkey, ventry in self._entries.items():  # LRU order first
            if ventry.hits:
                continue
            victims.append(vkey)
            freed += ventry.nbytes
            if self._bytes - freed + nbytes <= self._cap:
                break
        if self._bytes - freed + nbytes > self._cap:
            for entry in self._entries.values():
                entry.hits >>= 1
            return False
        for vkey in victims:
            victim = self._entries.pop(vkey)
            self._bytes -= victim.nbytes
            self._registry.release(victim.segment)
            self._obs.count("kernel.tables.evictions")
        return True

    def _admit(
        self,
        stored: np.ndarray,
        key: bytes,
        masks: List[np.ndarray],
        deltas: List[np.ndarray],
    ) -> None:
        if not masks:
            return
        count = int(stored.size)
        actions = len(masks)
        width = self._dtype.itemsize
        mask_bytes = (count + 7) // 8
        nbytes = count * width + actions * count * width + actions * mask_bytes
        if nbytes > self._cap:
            return
        if self._bytes + nbytes > self._cap:
            if not self._make_room(key, nbytes):
                return
        self._ghosts.pop(key, None)
        self._seq += 1
        segment = self._registry.create(nbytes, f"tbl{self._seq:x}")
        raw = np.frombuffer(segment.buf, dtype=np.uint8)
        codes_end = count * width
        raw[:codes_end].view(self._dtype)[:] = stored
        deltas_view = raw[codes_end : codes_end + actions * count * width].view(
            self._dtype
        )
        masks_off = codes_end + actions * count * width
        for index in range(actions):
            deltas_view[index * count : (index + 1) * count] = deltas[index]
            raw[
                masks_off + index * mask_bytes : masks_off + (index + 1) * mask_bytes
            ] = masks[index]
        del raw, deltas_view
        self._entries[key] = _Entry(segment, count, actions, nbytes)
        self._bytes += nbytes

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release every entry segment.  Idempotent, driver-only."""
        if self._closed or os.getpid() != self._pid:
            return
        self._closed = True
        for entry in self._entries.values():
            self._registry.release(entry.segment)
        self._entries.clear()
        self._bytes = 0
