"""Adaptive code widths: store packed codes as narrow as |Sigma| allows.

Every structure the shared engine keeps per *code* — frontier runs,
spill files, edge buckets, worker staging segments — historically held
int64.  But a packed code is bounded by the interner's radix product,
known exactly at kernel construction, so a 10**8-state space fits
int32 and anything under 32768 states fits int16.  Choosing the width
once per run halves (or quarters) bytes-per-state across every one of
those structures, which directly doubles the state count a given
``--mem-budget`` covers.

The split is storage-versus-arithmetic: evaluation stays int64
(digit extraction, delta accumulation, and the ``origin * size +
target`` dedup keys all need the headroom), and arrays are widened on
load / narrowed on store.  :func:`code_dtype` is the single source of
truth for the storage width; the runtime emits it once per run as the
``shm.code_width`` event.

The promotion edges are closed on the narrow side: a space of exactly
``2**15`` codes has max code ``2**15 - 1 = int16's max``, so int16
still holds it; likewise ``2**31`` for int32.  Signed dtypes keep the
arrays directly usable as NumPy indices and interoperable with the
int64 evaluation path without unsigned-overflow traps.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "INT16_MAX_CODES",
    "INT32_MAX_CODES",
    "code_dtype",
    "code_width",
]

#: Largest state-space size whose codes (``0 .. size-1``) fit int16.
INT16_MAX_CODES = 1 << 15

#: Largest state-space size whose codes fit int32.
INT32_MAX_CODES = 1 << 31


def code_width(size: int) -> int:
    """Bytes per stored code for a space of ``size`` states (2, 4, or 8)."""
    if size <= INT16_MAX_CODES:
        return 2
    if size <= INT32_MAX_CODES:
        return 4
    return 8


def code_dtype(size: int) -> np.dtype:
    """The storage dtype for packed codes of a ``size``-state space."""
    return np.dtype({2: np.int16, 4: np.int32, 8: np.int64}[code_width(size)])
