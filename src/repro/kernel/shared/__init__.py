"""The shared-memory mega-state engine (``engine="shared"``).

A streamed, optionally out-of-core sibling of the vector engine for
state spaces past ``MAX_VECTOR_CELLS``.  Where the vector kernel
materializes full-space action tables, :class:`~.kernel.SharedKernel`
keeps only lowered closures and evaluates chunks on demand; frontier
and membership sets live in bit-packed arrays
(:class:`~.frontier.BitField`) that can be backed by
``multiprocessing.shared_memory`` segments, so forked workers test and
expand the driver's *current* frontier zero-copy instead of
re-deriving state after fork.  Code collections past the in-RAM budget
spill delta-encoded to a run-scoped directory
(:class:`~.spill.SpillStore`) and stream back per round — a
``10**8``-cell ring completes in bounded RSS instead of raising the
vector ceiling.

Verdicts, witnesses, and the shared size-based counters match the
in-process engines byte for byte; the engine is only *selected* while
a :func:`~.budget.using_memory_budget` context is active, and
:func:`shared_fallback_reason` gates every other precondition (NumPy,
a working ``/dev/shm``, program sources, batch-lowerable abstraction).
Cleanup of segments and spill files is unconditional — see
:func:`~.runtime.open_runtime` and the registry's ``atexit`` backstop.

NumPy-free modules (:mod:`.budget`, :mod:`.segments`) always import;
the array modules load only when NumPy is present, mirroring
:mod:`repro.kernel.vector`.
"""

from __future__ import annotations

from typing import Optional

from ...core.abstraction import AbstractionFunction
from ...gcl.program import Program
from ..engine import CheckSource
from ..interner import MAX_PACKED_STATES
from ..vector import NUMPY_MISSING_REASON, numpy_available, unlowerable_reason
from ..vector.analyze import structural_unlowerable_reason
from .budget import (
    DEFAULT_MEM_BUDGET,
    MemoryContext,
    active_memory_context,
    chunk_codes,
    parse_mem_budget,
    using_memory_budget,
)
from .segments import (
    SegmentRegistry,
    shared_memory_unavailable_reason,
    shm_dir,
)

__all__ = [
    "DEFAULT_MEM_BUDGET",
    "MemoryContext",
    "SHARED_MIN_STATES",
    "SegmentRegistry",
    "active_memory_context",
    "chunk_codes",
    "parse_mem_budget",
    "shared_fallback_reason",
    "shared_memory_unavailable_reason",
    "shm_dir",
    "using_memory_budget",
]

#: Below this many packed states the shared engine refuses to run:
#: segment setup and chunk bookkeeping cost more than the whole check,
#: and the in-process engines are exact on spaces this small.
SHARED_MIN_STATES = 16


def shared_fallback_reason(
    concrete: CheckSource,
    abstract: CheckSource,
    alpha: Optional[AbstractionFunction] = None,
) -> Optional[str]:
    """Why the shared engine cannot run these sources (``None`` = it can).

    Checked in order, cheapest first, all without touching NumPy until
    availability is established and without materializing any
    full-space array:

    1. NumPy present (the chunk evaluator is array code);
    2. ``multiprocessing.shared_memory`` works (probed once);
    3. both sources are guarded-command programs (compiled systems
       already hold their explicit state lists in RAM — streaming them
       would save nothing);
    4. the concrete program lowers structurally (the size ceiling is
       deliberately *not* applied — streaming is the point);
    5. the state space is not trivially small (:data:`SHARED_MIN_STATES`);
    6. the abstract program lowers *within* the vector ceiling — its
       tables, cores, and flag arrays stay fully resident;
    7. the abstraction has a streamable image form
       (:func:`~.image.shared_image_unsupported_reason`).
    """
    if not numpy_available():
        return NUMPY_MISSING_REASON
    reason = shared_memory_unavailable_reason()
    if reason is not None:
        return reason
    if not isinstance(concrete, Program):
        return (
            "concrete source is a compiled system; the shared engine "
            "streams successors from guarded-command programs"
        )
    if not isinstance(abstract, Program):
        return (
            "abstract source is a compiled system; the shared engine "
            "pairs a streamed concrete kernel with a program-lowered "
            "abstract kernel"
        )
    reason = structural_unlowerable_reason(concrete)
    if reason is not None:
        return reason
    concrete_schema = concrete.schema()
    size = concrete_schema.size()
    if size < SHARED_MIN_STATES:
        return (
            f"state space has only {size} states; shared-memory staging "
            f"costs more than it saves"
        )
    reason = unlowerable_reason(abstract)
    if reason is not None:
        return f"abstract program: {reason}"
    abstract_size = abstract.schema().size()
    if abstract_size > MAX_PACKED_STATES:
        return (
            f"abstract space has {abstract_size} states, above the packed "
            f"interner ceiling; the shared engine keeps abstract tables "
            f"fully resident"
        )
    from ..interner import StateInterner
    from .image import shared_image_unsupported_reason

    from ..vector.analyze import effective_max_vector_cells

    return shared_image_unsupported_reason(
        StateInterner(concrete_schema, enforce_ceiling=False),
        StateInterner(abstract.schema()),
        alpha,
        effective_max_vector_cells(),
    )


if numpy_available():
    from .fixpoint import (
        shared_core,
        shared_has_cycle,
        shared_longest_path,
        shared_reachable,
        shared_terminals,
    )
    from .frontier import BitField, CodeRuns
    from .image import SharedImage, shared_image_unsupported_reason
    from .kernel import SharedKernel, SharedLoweringError
    from .runtime import SharedRuntime, open_runtime
    from .spill import SpillStore
    from .tables import TablePool
    from .visited import (
        MmapBitField,
        VisitedHandle,
        attach_visited,
        mmap_threshold,
        open_visited,
    )
    from .width import code_dtype, code_width

    __all__ += [
        "BitField",
        "CodeRuns",
        "MmapBitField",
        "SharedImage",
        "SharedKernel",
        "SharedLoweringError",
        "SharedRuntime",
        "SpillStore",
        "TablePool",
        "VisitedHandle",
        "attach_visited",
        "code_dtype",
        "code_width",
        "mmap_threshold",
        "open_runtime",
        "open_visited",
        "shared_core",
        "shared_has_cycle",
        "shared_image_unsupported_reason",
        "shared_longest_path",
        "shared_reachable",
        "shared_terminals",
    ]
