"""The per-check runtime of the shared engine: budget, segments, spill.

One :class:`SharedRuntime` spans one engine run (one decide).  It owns
the :class:`~.segments.SegmentRegistry` and :class:`~.spill.SpillStore`
whose cleanup must be unconditional — :func:`open_runtime` is the only
sanctioned way in, and its ``finally`` sweeps segments and removes the
spill directory no matter how the check ends (success, engine fault
feeding the degradation chain, chaos-injected worker kill).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from ...obs import NULL_INSTRUMENTATION, Instrumentation
from .budget import MemoryContext, active_memory_context, chunk_codes
from .kernel import SharedKernel
from .segments import SegmentRegistry
from .spill import SpillStore

__all__ = ["SharedRuntime", "open_runtime"]


@dataclass
class SharedRuntime:
    """Everything a streamed fixpoint needs besides its kernel."""

    context: MemoryContext
    chunk: int
    workers: int
    registry: SegmentRegistry
    spill: SpillStore
    instrumentation: Instrumentation

    @property
    def run_cap_bytes(self) -> int:
        """In-RAM cap for one code collection (frontier, evictions).

        A quarter of the budget: flag bitfields, peel arrays, and the
        evaluation chunks share the rest.
        """
        return max(1 << 16, self.context.budget_bytes // 4)

    def parallel(self, items: int) -> bool:
        """Whether a batch of ``items`` is worth sharding to workers."""
        return self.workers > 1 and items >= self.context.parallel_min


@contextmanager
def open_runtime(
    kernel: SharedKernel,
    workers: int = 1,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    context: Optional[MemoryContext] = None,
) -> Iterator[SharedRuntime]:
    """Open the segment registry and spill store for one engine run.

    Args:
        kernel: the streamed kernel (its action/variable counts size
            the evaluation chunks).
        workers: resolved worker count (``1`` = fully in-process).
        context: explicit memory context; defaults to the active one
            (``open_runtime`` outside any context uses the defaults —
            the library API allows it even though engine selection
            requires an active context).
    """
    chosen = context or active_memory_context() or MemoryContext()
    chunk = chunk_codes(
        chosen.budget_bytes,
        len(kernel.actions),
        len(kernel.schema.names),
    )
    registry = SegmentRegistry(instrumentation)
    spill = SpillStore(chosen.spill_dir, instrumentation)
    runtime = SharedRuntime(
        context=chosen,
        chunk=chunk,
        workers=workers,
        registry=registry,
        spill=spill,
        instrumentation=instrumentation,
    )
    try:
        with instrumentation.span(
            "shm.runtime", budget=chosen.budget_bytes, workers=workers
        ):
            yield runtime
    finally:
        registry.sweep()
        spill.close()
