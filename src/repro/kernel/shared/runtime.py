"""The per-check runtime of the shared engine: budget, segments, spill.

One :class:`SharedRuntime` spans one engine run (one decide).  It owns
the :class:`~.segments.SegmentRegistry` and :class:`~.spill.SpillStore`
whose cleanup must be unconditional — :func:`open_runtime` is the only
sanctioned way in, and its ``finally`` sweeps segments, releases the
table pool, and removes the spill directory (mmap visited files
included) no matter how the check ends: success, engine fault feeding
the degradation chain, chaos-injected worker kill, or a
``KeyboardInterrupt`` mid-fixpoint.

The runtime also fixes the run's two cross-cutting perf decisions:

* **code width** — :attr:`SharedRuntime.code_dtype`, chosen once from
  the interner's radix product (:mod:`.width`) when the context allows
  packing; every at-rest code structure (frontier runs, spill files,
  edge buckets, staging segments) uses it, and the choice is emitted
  as the ``shm.code_width`` event;
* **table pool** — a bounded :class:`~.tables.TablePool` attached to
  the kernel for the run's extent when the context allows reuse, so
  fixpoints that re-walk the same chunks skip re-lowering them.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from ...obs import NULL_INSTRUMENTATION, Instrumentation
from .budget import MemoryContext, active_memory_context, chunk_codes
from .kernel import SharedKernel
from .segments import SegmentRegistry
from .spill import SpillStore
from .tables import TablePool
from .width import code_dtype

__all__ = ["SharedRuntime", "open_runtime"]


@dataclass
class SharedRuntime:
    """Everything a streamed fixpoint needs besides its kernel."""

    context: MemoryContext
    chunk: int
    workers: int
    registry: SegmentRegistry
    spill: SpillStore
    instrumentation: Instrumentation
    code_dtype: np.dtype = field(default_factory=lambda: np.dtype(np.int64))
    tables: Optional[TablePool] = None

    @property
    def run_cap_bytes(self) -> int:
        """In-RAM cap for one code collection (frontier, evictions).

        A quarter of the budget: flag bitfields, peel arrays, and the
        evaluation chunks share the rest.
        """
        return max(1 << 16, self.context.budget_bytes // 4)

    def parallel(self, items: int) -> bool:
        """Whether a batch of ``items`` is worth sharding to workers."""
        return self.workers > 1 and items >= self.context.parallel_min


@contextmanager
def open_runtime(
    kernel: SharedKernel,
    workers: int = 1,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    context: Optional[MemoryContext] = None,
) -> Iterator[SharedRuntime]:
    """Open the segment registry and spill store for one engine run.

    Args:
        kernel: the streamed kernel (its action/variable counts size
            the evaluation chunks).
        workers: resolved worker count (``1`` = fully in-process).
        context: explicit memory context; defaults to the active one
            (``open_runtime`` outside any context uses the defaults —
            the library API allows it even though engine selection
            requires an active context).
    """
    chosen = context or active_memory_context() or MemoryContext()
    chunk = chunk_codes(
        chosen.budget_bytes,
        len(kernel.actions),
        len(kernel.schema.names),
    )
    dtype = (
        code_dtype(kernel.size) if chosen.pack_codes else np.dtype(np.int64)
    )
    registry = SegmentRegistry(instrumentation)
    spill = SpillStore(chosen.spill_dir, instrumentation, code_dtype=dtype)
    tables: Optional[TablePool] = None
    if chosen.reuse_tables:
        tables = TablePool(
            registry,
            cap_bytes=chosen.budget_bytes // 4,
            dtype=dtype,
            instrumentation=instrumentation,
        )
    runtime = SharedRuntime(
        context=chosen,
        chunk=chunk,
        workers=workers,
        registry=registry,
        spill=spill,
        instrumentation=instrumentation,
        code_dtype=dtype,
        tables=tables,
    )
    instrumentation.event(
        "shm.code_width",
        width=int(dtype.itemsize),
        dtype=dtype.name,
        states=kernel.size,
        packed=bool(chosen.pack_codes),
    )
    kernel.attach_tables(tables)
    try:
        with instrumentation.span(
            "shm.runtime", budget=chosen.budget_bytes, workers=workers
        ):
            yield runtime
    finally:
        kernel.attach_tables(None)
        if tables is not None:
            tables.close()
        registry.sweep()
        spill.close()
