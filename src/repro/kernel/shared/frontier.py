"""Bit-packed flag fields and budget-capped code collections.

Two containers the streamed fixpoints are built from:

* :class:`BitField` — one bit per packed code over the full state
  space (visited / membership / processed flags).  An 8x density win
  over the vector engine's byte-per-state bool arrays, and the buffer
  can live in a shared-memory segment so forked workers test
  membership zero-copy against the driver's *current* flags.
* :class:`CodeRuns` — an ordered collection of sorted-unique code
  arrays (frontier rounds, eviction lists), stored at the run's
  adaptive code width (:mod:`.width`), that keeps at most
  ``cap_bytes`` resident and spills older runs to a
  :class:`~.spill.SpillStore`, streaming them back on iteration.

Both are driver-side data structures; workers only ever see the raw
buffers behind them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import DTypeLike

from .spill import SpillHandle, SpillStore

__all__ = ["BitField", "CodeRuns"]

#: Bytes-per-byte popcount, for fast set-bit counting.
_POPCOUNT = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.int64
)


class BitField:
    """One bit per code in ``[0, size)``, batch-addressable.

    Args:
        size: number of codes covered.
        buffer: optional external buffer (a shared-memory segment's
            ``buf``) of at least ``(size + 7) // 8`` bytes; when
            omitted a private zeroed array is allocated.
    """

    __slots__ = ("size", "nbytes", "_bytes")

    def __init__(self, size: int, buffer: Optional[memoryview] = None):
        self.size = size
        self.nbytes = (size + 7) // 8
        if buffer is None:
            self._bytes = np.zeros(self.nbytes, dtype=np.uint8)
        else:
            self._bytes = np.frombuffer(
                buffer, dtype=np.uint8, count=self.nbytes
            )

    def zero(self) -> None:
        """Clear all bits (external buffers arrive uninitialized)."""
        self._bytes[:] = 0

    def test(self, codes: np.ndarray) -> np.ndarray:
        """Boolean membership of each code (vectorized)."""
        return (
            (self._bytes[codes >> 3] >> (codes & 7).astype(np.uint8)) & 1
        ).astype(bool)

    def _merged_bits(self, codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct byte indices and their OR-merged bit patterns.

        Grouping adjacent equal byte indices and merging with
        ``reduceat`` replaces the scalar ``ufunc.at`` loop (an order of
        magnitude slower on big batches).  Codes arrive sorted from
        every engine path; the argsort is a safety net for direct API
        users and costs one comparison pass when it is not needed.
        """
        byte_idx = codes >> 3
        bits = np.uint8(1) << (codes & 7).astype(np.uint8)
        if byte_idx.shape[0] > 1 and bool(
            np.any(byte_idx[1:] < byte_idx[:-1])
        ):
            order = np.argsort(byte_idx, kind="stable")
            byte_idx = byte_idx[order]
            bits = bits[order]
        head = np.ones(1, dtype=bool)
        starts = np.flatnonzero(
            np.concatenate((head, byte_idx[1:] != byte_idx[:-1]))
        )
        return byte_idx[starts], np.bitwise_or.reduceat(bits, starts)

    def set_codes(self, codes: np.ndarray) -> None:
        """Set the bit of every code (duplicates are harmless)."""
        if codes.shape[0] == 0:
            return
        byte_idx, merged = self._merged_bits(codes)
        self._bytes[byte_idx] |= merged

    def clear_codes(self, codes: np.ndarray) -> None:
        """Clear the bit of every code (duplicates are harmless)."""
        if codes.shape[0] == 0:
            return
        byte_idx, merged = self._merged_bits(codes)
        self._bytes[byte_idx] &= np.uint8(0xFF) ^ merged

    def count(self) -> int:
        """Number of set bits (tail bits beyond ``size`` are never set)."""
        return int(_POPCOUNT[self._bytes].sum())

    def member_chunks(
        self,
        chunk: int,
        start_byte: int = 0,
        end_byte: Optional[int] = None,
    ) -> Iterator[np.ndarray]:
        """Yield set codes in ascending order, ``<= chunk`` per batch.

        Walks the byte array in windows of ``chunk // 8`` bytes, so a
        fully dense window yields exactly ``chunk`` codes and resident
        cost stays bounded regardless of population.  ``start_byte`` /
        ``end_byte`` restrict the scan to a byte sub-range — the
        worker-partition form (byte boundaries keep partitions
        bit-exact disjoint).
        """
        step_bytes = max(1, chunk // 8)
        stop = self.nbytes if end_byte is None else min(end_byte, self.nbytes)
        for start in range(start_byte, stop, step_bytes):
            window = self._bytes[start : min(start + step_bytes, stop)]
            if not window.any():
                continue
            bits = np.unpackbits(window, bitorder="little")
            codes = np.flatnonzero(bits).astype(np.int64) + start * 8
            if codes.shape[0] and codes[-1] >= self.size:
                codes = codes[codes < self.size]
            if codes.shape[0]:
                yield codes

    def complement_into(self, other: "BitField") -> None:
        """Set ``other`` to the complement of ``self`` over ``[0, size)``."""
        np.bitwise_xor(self._bytes, np.uint8(0xFF), out=other._bytes)
        tail = self.size & 7
        if tail:
            other._bytes[-1] &= np.uint8((1 << tail) - 1)

    def copy_into(self, other: "BitField") -> None:
        other._bytes[:] = self._bytes

    def release_buffer(self) -> None:
        """Drop the view on an external buffer (before segment close).

        A live NumPy view keeps the segment's mmap pinned ("cannot
        close exported pointers exist"); callers that back a field
        with a segment must call this before closing it.  The field
        becomes unusable afterwards.
        """
        self._bytes = np.empty(0, dtype=np.uint8)


class CodeRuns:
    """Sorted-unique code runs with an in-RAM cap and spill overflow.

    ``append`` takes ownership of sorted-unique arrays; once resident
    bytes pass ``cap_bytes`` the oldest runs spill (delta-encoded) to
    the store.  ``chunks`` streams every run back — resident runs
    as-is, spilled runs loaded one at a time — so peak RSS during
    iteration is one run, not the collection.  Runs need not be
    disjoint or globally ordered; consumers treat the union as a set.

    ``dtype`` is the storage width (:func:`~.width.code_dtype`):
    appended runs are narrowed on entry — lossless, codes are bounded
    by the state-space size — and ``chunks`` yields the narrow form;
    consumers widen at the arithmetic boundary.
    """

    def __init__(
        self,
        store: SpillStore,
        cap_bytes: int,
        dtype: "DTypeLike" = np.int64,
    ):
        self._store = store
        self._cap = max(cap_bytes, 1 << 16)
        self._dtype = np.dtype(dtype)
        self._runs: List[Union[np.ndarray, SpillHandle]] = []
        self._resident_bytes = 0
        self.count = 0
        self.spilled_runs = 0

    def append(self, codes: np.ndarray) -> None:
        """Add one sorted-unique code run (empty arrays are dropped)."""
        if codes.shape[0] == 0:
            return
        codes = np.ascontiguousarray(codes, dtype=self._dtype)
        self._runs.append(codes)
        self._resident_bytes += codes.nbytes
        self.count += int(codes.shape[0])
        while self._resident_bytes > self._cap:
            victim_index = next(
                (
                    index
                    for index, run in enumerate(self._runs)
                    if isinstance(run, np.ndarray)
                ),
                None,
            )
            if victim_index is None:  # pragma: no cover - all spilled
                break
            victim = self._runs[victim_index]
            self._runs[victim_index] = self._store.save_sorted(victim)
            self._resident_bytes -= victim.nbytes
            self.spilled_runs += 1

    def chunks(self) -> Iterator[np.ndarray]:
        """Stream every run; spilled runs are loaded one at a time."""
        for run in self._runs:
            if isinstance(run, SpillHandle):
                yield self._store.load(run)
            else:
                yield run

    def clear(self) -> None:
        """Drop all runs (deleting consumed spill files)."""
        for run in self._runs:
            if isinstance(run, SpillHandle):
                self._store.drop(run)
        self._runs.clear()
        self._resident_bytes = 0
        self.count = 0
