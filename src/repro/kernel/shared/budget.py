"""Memory budgets and the process-wide shared-engine context.

The shared-memory engine is opt-in: a check routes through it only
while a :class:`MemoryContext` is active (the CLI's ``--mem-budget``
/ ``--spill-dir`` flags, or :func:`using_memory_budget` directly).
The context carries the two tunables the streamed fixpoints plan
around:

* **budget_bytes** — the in-RAM ceiling for engine working sets.  The
  kernel sizes its evaluation chunks from it, and frontier/member
  collections that outgrow their slice of it spill to disk
  (:mod:`.spill`) instead of growing resident.
* **spill_dir** — where the run-scoped spill directory is created
  (defaults to the system temp dir).

The active context lives in a module-level slot, exactly like the
resilience package's chaos plan: forked workers inherit it
copy-on-write, and ``finally`` restores the previous value, so nested
activations behave like a stack.  Nothing here imports NumPy — engine
selection must be able to *refuse* the shared engine on a pure-Python
install without touching the array modules.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

__all__ = [
    "DEFAULT_MEM_BUDGET",
    "MemoryContext",
    "active_memory_context",
    "chunk_codes",
    "parse_mem_budget",
    "using_memory_budget",
]

#: Budget used when a context is activated without one ("spill, but
#: plan for half a GiB resident").
DEFAULT_MEM_BUDGET: int = 512 * 1024 * 1024

#: Keep chunks inside this window regardless of the budget: below the
#: floor the per-chunk Python overhead dominates, above the ceiling a
#: single chunk's transient arrays stop fitting CPU caches anyway.
_MIN_CHUNK = 1 << 12
_MAX_CHUNK = 1 << 21

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": 1024,
    "kb": 1024,
    "kib": 1024,
    "m": 1024**2,
    "mb": 1024**2,
    "mib": 1024**2,
    "g": 1024**3,
    "gb": 1024**3,
    "gib": 1024**3,
    "t": 1024**4,
    "tb": 1024**4,
    "tib": 1024**4,
}


def parse_mem_budget(text: str) -> int:
    """Parse a human-readable byte budget (``"512M"``, ``"1.5G"``).

    Accepts a decimal number — fractional forms like ``"1.5G"``,
    ``"0.5T"``, and ``".25G"`` included — with an optional binary
    suffix (``K``/``M``/``G``/``T``, optionally followed by ``B`` or
    ``iB``, any case).  A bare number is bytes.

    Raises:
        ValueError: on unparsable text or a non-positive budget.
    """
    match = re.fullmatch(
        r"\s*([0-9]+(?:\.[0-9]*)?|\.[0-9]+)\s*([a-zA-Z]*)\s*", text or ""
    )
    if not match:
        raise ValueError(f"unparsable memory budget {text!r}")
    scale = _SUFFIXES.get(match.group(2).lower())
    if scale is None:
        raise ValueError(
            f"unknown memory-budget suffix {match.group(2)!r} in {text!r}"
        )
    value = int(float(match.group(1)) * scale)
    if value <= 0:
        raise ValueError(f"memory budget must be positive, got {text!r}")
    return value


@dataclass(frozen=True)
class MemoryContext:
    """One activation of the shared-memory engine.

    Attributes:
        budget_bytes: in-RAM working-set ceiling for engine data.
        spill_dir: parent directory for the run-scoped spill directory
            (``None`` = system temp dir).
        parallel_min: smallest frontier/member batch worth sharding
            across workers; below it rounds run in-process even when
            ``workers > 1`` (the verdict is identical either way).
        pack_codes: store codes at the adaptive width
            (:mod:`~.width`) instead of int64 wherever they are at
            rest.  Off = the PR 9 layout; verdicts are identical
            either way (the ablation axis ``run_mega.py`` measures).
        reuse_tables: cache lowered per-chunk action tables in the
            bounded shm table pool (:mod:`~.tables`) across rounds.
        mmap_visited: allow flag fields past their budget slice to
            page onto a run-scoped mmap file (:mod:`~.visited`).
    """

    budget_bytes: int = DEFAULT_MEM_BUDGET
    spill_dir: Optional[str] = None
    parallel_min: int = 256
    pack_codes: bool = True
    reuse_tables: bool = True
    mmap_visited: bool = True

    def __post_init__(self) -> None:
        if self.budget_bytes < 1:
            raise ValueError("memory budget must be positive")
        if self.parallel_min < 1:
            raise ValueError("parallel_min must be positive")


#: The active context stack slot (copy-on-write inherited by forks).
_ACTIVE: List[Optional[MemoryContext]] = [None]


def active_memory_context() -> Optional[MemoryContext]:
    """The currently active shared-engine context, or ``None``."""
    return _ACTIVE[0]


@contextmanager
def using_memory_budget(
    budget: Optional[object] = None,
    spill_dir: Optional[str] = None,
    parallel_min: Optional[int] = None,
    pack_codes: Optional[bool] = None,
    reuse_tables: Optional[bool] = None,
    mmap_visited: Optional[bool] = None,
) -> Iterator[MemoryContext]:
    """Activate the shared-memory engine for the dynamic extent.

    Args:
        budget: bytes (int), human text (``"512M"``), or ``None`` for
            :data:`DEFAULT_MEM_BUDGET`.
        spill_dir: parent directory for spill files.
        parallel_min: override the sharding threshold (tests).
        pack_codes / reuse_tables / mmap_visited: ablation switches
            (see :class:`MemoryContext`); ``None`` keeps the default.
    """
    if budget is None:
        budget_bytes = DEFAULT_MEM_BUDGET
    elif isinstance(budget, int):
        if budget <= 0:
            raise ValueError("memory budget must be positive")
        budget_bytes = budget
    else:
        budget_bytes = parse_mem_budget(str(budget))
    kwargs = {"budget_bytes": budget_bytes, "spill_dir": spill_dir}
    if parallel_min is not None:
        kwargs["parallel_min"] = parallel_min
    if pack_codes is not None:
        kwargs["pack_codes"] = pack_codes
    if reuse_tables is not None:
        kwargs["reuse_tables"] = reuse_tables
    if mmap_visited is not None:
        kwargs["mmap_visited"] = mmap_visited
    context = MemoryContext(**kwargs)
    previous = _ACTIVE[0]
    _ACTIVE[0] = context
    try:
        yield context
    finally:
        _ACTIVE[0] = previous


def chunk_codes(
    budget_bytes: int, actions: int, variables: int
) -> int:
    """Codes per streamed-evaluation chunk under ``budget_bytes``.

    A chunk's transient footprint is roughly one int64 column per
    variable (the env), a few working arrays per action (mask, values,
    delta, dedup keys), and slack for NumPy temporaries; the chunk is
    sized so that footprint stays within a quarter of the budget,
    leaving the rest for flag bitfields, frontier runs, and the
    interpreter itself.

    Raises:
        ValueError: on a non-positive budget — planning chunks from a
            degenerate budget would silently clamp to the floor and
            mask the caller's configuration error.
    """
    if budget_bytes <= 0:
        raise ValueError(
            f"memory budget must be positive, got {budget_bytes}"
        )
    per_code = 8 * (variables + 4 * max(1, actions) + 8)
    chunk = (budget_bytes // 4) // per_code
    return max(_MIN_CHUNK, min(_MAX_CHUNK, chunk))
