"""The streamed successor kernel: vector semantics without the tables.

:class:`SharedKernel` is the shared engine's replacement for
:class:`~repro.kernel.vector.kernel.VectorKernel`.  The vector kernel
materializes one full-space ``(enabled, successor)`` int64/bool table
pair per action — the very allocation the ``MAX_VECTOR_CELLS`` ceiling
bounds.  The shared kernel keeps only the *lowered closures* (guards as
array functions, assignments as digit-delta recipes) and evaluates them
per code chunk on demand: resident cost is one chunk of transient
arrays regardless of ``|Sigma|``, trading recomputation for memory.

Semantics are the vector kernel's, bit for bit:

* per-chunk evaluation applies the same digit extraction, int64 value
  tables, guard masks, and digit-delta accumulation as
  ``VectorKernel.from_program`` — a chunk of the would-be table, never
  materialized;
* :meth:`succ_pairs` deduplicates and sorts ``(origin, target)`` pairs
  through the same sort-and-compare-adjacent kernel, so transition
  counts (and the counters derived from them) match;
* construction performs the same eager full-space out-of-domain sweep,
  raising the exact :class:`~repro.core.errors.GCLError` that
  ``compile_program`` (and so the vector kernel) raises, for the same
  first offending ``(action, assignment, state)``.

Fast path: domains whose int64 value table is the identity
(``0..radix-1``, which covers bools and modular counters) skip the
searchsorted inverse both in validation and evaluation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ...gcl.daemon import CentralDaemon, Daemon
from ...gcl.program import Program
from ...gcl.semantics import compile_program
from ...core.system import System
from ..interner import StateInterner
from ..vector.analyze import domain_type, structural_unlowerable_reason
from ..vector.kernel import _raise_out_of_domain, _unique_sorted
from ..vector.lower import ArrayEnv, ArrayFn, lower_expr
from .budget import MemoryContext, active_memory_context, chunk_codes
from .tables import TablePool

__all__ = ["SharedKernel", "SharedLoweringError"]


class SharedLoweringError(ValueError):
    """A program (or daemon) has no streamed array lowering.

    Engine selection consults ``shared_fallback_reason`` first, so
    checker paths never see this; it guards direct construction.
    """


class _VarPlan(object):
    """Per-variable lowering data: place, radix, values, inverse."""

    __slots__ = ("place", "radix", "values", "identity", "sorted_values", "sorted_digits")

    def __init__(self, place: int, radix: int, values: np.ndarray):
        self.place = place
        self.radix = radix
        self.values = values
        self.identity = bool(
            np.array_equal(values, np.arange(radix, dtype=np.int64))
        )
        order = np.argsort(values, kind="stable")
        self.sorted_values = values[order]
        self.sorted_digits = order.astype(np.int64)


class SharedKernel:
    """Chunk-streamed transition relation over an unbounded code space.

    Exposes the vector kernel's batch API (:meth:`succ_pairs`,
    :meth:`has_edge`) plus chunk-oriented forms the streamed fixpoints
    and the batch Monte-Carlo sampler consume.  Never allocates an
    array proportional to ``interner.size``.
    """

    def __init__(
        self,
        program: Program,
        daemon: Optional[Daemon] = None,
        keep_stutter: bool = True,
        name: Optional[str] = None,
        chunk: Optional[int] = None,
        validate: bool = True,
    ):
        chosen = daemon or CentralDaemon()
        reason = structural_unlowerable_reason(program, chosen)
        if reason is not None:
            raise SharedLoweringError(
                f"program {program.name!r} has no array lowering: {reason}"
            )
        self.program = program
        self.daemon = chosen
        schema = program.schema()
        self.interner = StateInterner(schema, enforce_ceiling=False)
        self.size = self.interner.size
        self.keep_stutter = keep_stutter
        self.name = name or (
            program.name
            if chosen.name == "central"
            else f"{program.name}@{chosen.name}"
        )
        var_types = {
            var_name: domain_type(domain)
            for var_name, domain in zip(schema.names, schema.domains)
        }
        places = self.interner.places_by_name()
        self._names: Tuple[str, ...] = schema.names
        self._vars: Dict[str, _VarPlan] = {}
        for var_name, domain in zip(schema.names, schema.domains):
            values = np.asarray([int(value) for value in domain], dtype=np.int64)
            self._vars[var_name] = _VarPlan(
                places[var_name], len(domain), values
            )
        self._guards: List[ArrayFn] = [
            lower_expr(action.guard, var_types) for action in program.actions
        ]
        self._assigns: List[List[Tuple[str, ArrayFn]]] = [
            [
                (target, lower_expr(rhs, var_types))
                for target, rhs in action.assignments.items()
            ]
            for action in program.actions
        ]
        self._free_vars: List[Tuple[str, ...]] = [
            tuple(
                dict.fromkeys(
                    free
                    for rhs in action.assignments.values()
                    for free in rhs.free_variables()
                )
            )
            for action in program.actions
        ]
        self.actions = program.actions
        if chunk is None:
            budget = (active_memory_context() or MemoryContext()).budget_bytes
            chunk = chunk_codes(budget, len(program.actions), len(schema.names))
        self.chunk = chunk
        self.initial_codes = tuple(
            sorted(self.interner.encode(state) for state in program.initial_states())
        )
        self.initial_array = np.asarray(self.initial_codes, dtype=np.int64)
        self._materialized: Optional[System] = None
        self._tables: Optional[TablePool] = None
        self._scratch: Dict[str, np.ndarray] = {}
        if validate:
            self._validate_full_space()

    @property
    def schema(self):
        """The schema of the packed state space."""
        return self.interner.schema

    def materialize(self) -> System:
        """The equivalent tuple-state ``System`` (witness phases only).

        Enumerates the full space in RAM — only reachable on *failing*
        verdicts, whose witness reconstruction is inherently explicit.
        """
        if self._materialized is None:
            self._materialized = compile_program(
                self.program, self.daemon, self.keep_stutter, self.name
            )
        return self._materialized

    # ------------------------------------------------------------------
    # Cross-round table reuse.
    # ------------------------------------------------------------------

    def attach_tables(self, pool: Optional[TablePool]) -> None:
        """Install (or clear) the run's action-table pool.

        The runtime attaches its pool before any fixpoint runs (so
        forked workers inherit it copy-on-write) and detaches it in
        its ``finally`` — the kernel itself may outlive the run.
        """
        self._tables = pool

    # ------------------------------------------------------------------
    # Chunk evaluation.
    # ------------------------------------------------------------------

    def _scratch_buffer(self, key: str, length: int) -> np.ndarray:
        """A reusable int64 work buffer (one per key, resized on demand).

        Chunks in a sweep share one length (plus one tail), so reuse
        turns per-chunk allocations into buffer rewrites.  Returned
        buffers are only valid until the next chunk's evaluation —
        every consumer in the engine finishes a chunk before asking
        for the next.
        """
        buffer = self._scratch.get(key)
        if buffer is None or buffer.shape[0] != length:
            buffer = np.empty(length, dtype=np.int64)
            self._scratch[key] = buffer
        return buffer

    def env_of(
        self, codes: np.ndarray, scratch: bool = False
    ) -> Tuple[Dict[str, np.ndarray], ArrayEnv]:
        """Digit columns and int64 value columns for a code chunk.

        With ``scratch`` the digit columns live in per-variable reuse
        buffers valid only until the next ``scratch`` call — the
        streamed evaluator's mode; direct callers get fresh arrays.
        """
        digits: Dict[str, np.ndarray] = {}
        env: ArrayEnv = {}
        for var_name in self._names:
            plan = self._vars[var_name]
            if scratch:
                digit = self._scratch_buffer(
                    f"digit:{var_name}", codes.shape[0]
                )
                np.floor_divide(codes, plan.place, out=digit)
                np.remainder(digit, plan.radix, out=digit)
            else:
                digit = (codes // plan.place) % plan.radix
            digits[var_name] = digit
            env[var_name] = digit if plan.identity else plan.values[digit]
        return digits, env

    def iter_actions(
        self, codes: np.ndarray
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Per-action ``(mask, successor)`` arrays for one chunk.

        ``successor[i] == codes[i]`` wherever the action is disabled,
        matching the vector tables' identity default.  Digits and env
        are computed once and shared across actions.  When a table
        pool is attached, a chunk seen before is reconstructed from
        its cached tables (value-identical to a fresh evaluation) and
        a fresh evaluation is packed for admission as it streams.
        Yielded arrays are valid only until the next iteration step —
        consumers must copy anything they keep.
        """
        codes = np.asarray(codes)
        if codes.dtype != np.int64:
            codes = codes.astype(np.int64)
        pool = self._tables
        if pool is None:
            yield from self._stream_actions(codes)
            return
        cached, probe = pool.lookup(codes)
        if cached is not None:
            yield from cached
            return
        yield from pool.filling(
            codes, self._stream_actions(codes), probe=probe
        )

    def _stream_actions(
        self, codes: np.ndarray
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Evaluate one chunk action by action (the PR 9 hot path)."""
        digits, env = self.env_of(codes, scratch=True)
        for index in range(len(self._guards)):
            yield self._action_chunk(index, codes, digits, env)

    def _action_chunk(
        self,
        index: int,
        codes: np.ndarray,
        digits: Dict[str, np.ndarray],
        env: ArrayEnv,
    ) -> Tuple[np.ndarray, np.ndarray]:
        mask = np.broadcast_to(
            np.asarray(self._guards[index](env), dtype=bool), codes.shape
        )
        succ = self._scratch_buffer("succ", codes.shape[0])
        np.copyto(succ, codes)
        enabled = np.nonzero(mask)[0]
        if enabled.size:
            action_env: ArrayEnv = {
                free: env[free][enabled] for free in self._free_vars[index]
            }
            delta = np.zeros(enabled.shape, dtype=np.int64)
            for target, lowered in self._assigns[index]:
                plan = self._vars[target]
                values = np.asarray(lowered(action_env)).astype(
                    np.int64, copy=False
                )
                if values.ndim == 0:
                    values = np.broadcast_to(values, enabled.shape)
                if plan.identity:
                    new_digits = values
                else:
                    slots = np.searchsorted(plan.sorted_values, values)
                    slots = np.minimum(slots, plan.sorted_values.size - 1)
                    new_digits = plan.sorted_digits[slots]
                delta += (new_digits - digits[target][enabled]) * np.int64(
                    plan.place
                )
            succ[enabled] = codes[enabled] + delta
        return mask, succ

    # ------------------------------------------------------------------
    # The vector-compatible batch API.
    # ------------------------------------------------------------------

    def succ_pairs(self, codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """All transitions out of a batch: unique sorted (origin, target).

        ``origins`` are positions into ``codes``; byte-compatible with
        ``VectorKernel.succ_pairs`` (same dedup, same ordering).
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        origin_parts: List[np.ndarray] = []
        target_parts: List[np.ndarray] = []
        for mask, succ in self.iter_actions(codes):
            if not self.keep_stutter:
                mask = mask & (succ != codes)
            positions = np.nonzero(mask)[0]
            if positions.size:
                origin_parts.append(positions)
                target_parts.append(succ[positions])
        if not origin_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        origins = np.concatenate(origin_parts)
        targets = np.concatenate(target_parts)
        keys = _unique_sorted(origins * np.int64(self.size) + targets)
        return keys // self.size, keys % self.size

    def has_edge(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Element-wise transition membership for parallel code arrays."""
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        hit = np.zeros(sources.shape, dtype=bool)
        for mask, succ in self.iter_actions(sources):
            found = mask & (succ == targets)
            if not self.keep_stutter:
                found &= targets != sources
            hit |= found
        return hit

    def terminal_chunk(
        self, codes: np.ndarray, drop_self: bool = False
    ) -> np.ndarray:
        """Mask of chunk codes with no successors (vector semantics)."""
        has_successor = np.zeros(codes.shape, dtype=bool)
        for mask, succ in self.iter_actions(codes):
            if drop_self or not self.keep_stutter:
                has_successor |= mask & (succ != codes)
            else:
                has_successor |= mask
        return ~has_successor

    def action_matrix(
        self, codes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked per-action ``(enabled, successor)`` matrices.

        Shape ``(actions, len(codes))``; the batch Monte-Carlo sampler
        draws uniformly over each column's distinct enabled successors.
        """
        enabled = np.zeros((len(self._guards), codes.shape[0]), dtype=bool)
        successors = np.empty((len(self._guards), codes.shape[0]), dtype=np.int64)
        for index, (mask, succ) in enumerate(self.iter_actions(codes)):
            enabled[index] = mask
            successors[index] = succ
        return enabled, successors

    def successors(self, code: int) -> Tuple[int, ...]:
        """Scalar bridge: successor codes of one code, ascending."""
        _, targets = self.succ_pairs(np.asarray([code], dtype=np.int64))
        return tuple(int(target) for target in targets)

    # ------------------------------------------------------------------
    # Eager out-of-domain validation.
    # ------------------------------------------------------------------

    def _validate_full_space(self) -> None:
        """Raise the vector kernel's exact error on out-of-domain writes.

        One streamed pass over the space, recording per
        ``(action, assignment)`` the smallest offending code; the
        lexicographically first pair in the vector kernel's iteration
        order raises — same action, same state, same message.
        """
        offenders: Dict[Tuple[int, int], int] = {}
        for start in range(0, self.size, self.chunk):
            codes = np.arange(
                start, min(start + self.chunk, self.size), dtype=np.int64
            )
            digits, env = self.env_of(codes)
            for index in range(len(self._guards)):
                mask = np.broadcast_to(
                    np.asarray(self._guards[index](env), dtype=bool),
                    codes.shape,
                )
                enabled = np.nonzero(mask)[0]
                if not enabled.size:
                    continue
                action_env: ArrayEnv = {
                    free: env[free][enabled] for free in self._free_vars[index]
                }
                for slot, (target, lowered) in enumerate(self._assigns[index]):
                    if (index, slot) in offenders:
                        continue
                    plan = self._vars[target]
                    values = np.asarray(lowered(action_env)).astype(
                        np.int64, copy=False
                    )
                    if values.ndim == 0:
                        values = np.broadcast_to(values, enabled.shape)
                    if plan.identity:
                        invalid = (values < 0) | (values >= plan.radix)
                    else:
                        slots = np.searchsorted(plan.sorted_values, values)
                        clipped = np.minimum(slots, plan.sorted_values.size - 1)
                        invalid = (slots >= plan.sorted_values.size) | (
                            plan.sorted_values[clipped] != values
                        )
                    if bool(invalid.any()):
                        offenders[(index, slot)] = int(
                            codes[enabled[int(np.argmax(invalid))]]
                        )
        if offenders:
            index, _slot = min(offenders)
            _raise_out_of_domain(
                self.interner,
                self.program,
                self.actions[index],
                offenders[min(offenders)],
            )
