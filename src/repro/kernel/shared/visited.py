"""The visited-set backing ladder: private RAM, shm segment, or mmap.

The streamed fixpoints keep two big mutable flag fields — the BFS
visited set and the Jacobi membership flags.  PR 9 gave them two
backings: a private array (``workers == 1``) or a shared-memory
segment workers attach by name.  Both are *resident*: one bit per code
must fit in RAM, which caps the engine at ``8 × budget`` states no
matter how well everything else streams.

:func:`open_visited` adds the third rung: when a field's byte size
exceeds its slice of the budget (``budget // 16`` — flag fields share
the quarter-of-budget pool with the peel arrays), the bits page onto a
run-scoped **memory-mapped file** under the spill directory.  The OS
page cache keeps the hot pages resident and evicts cold ones under
pressure, so the field's RSS cost is bounded by memory pressure, not
by ``size``.  The mapping is ``MAP_SHARED``, so forked workers attach
the same file read-only and observe the driver's current bits exactly
as they do through a shm segment — worker SIGKILL mid-page is
recovered by the same supervisor retry, and the file itself dies with
the spill directory on every exit path (the runtime's ``finally``),
including ``KeyboardInterrupt``.

A failure to create or map the file (unwritable spill dir, disk full)
raises :class:`~repro.resilience.degrade.EngineFault`, which the
checker's degradation chain turns into a vector/packed/tuple retry
instead of a crash.

Counters/events: ``shm.visited.mmap_bytes`` (bytes paged to mmap
files) and a ``shm.visited`` event per field with its chosen backing.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from ...obs import NULL_INSTRUMENTATION, Instrumentation
from ...resilience.degrade import EngineFault
from .frontier import BitField
from .segments import Segment, attach_segment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import SharedRuntime

__all__ = [
    "AttachedVisited",
    "MmapBitField",
    "VisitedHandle",
    "attach_visited",
    "mmap_threshold",
    "open_visited",
]

#: A worker-side reference to a backed field: ``("shm", (name, size))``
#: or ``("mmap", (path, size))``.
VisitedRef = Tuple[str, Tuple[str, int]]


def mmap_threshold(budget_bytes: int) -> int:
    """Resident ceiling for one flag field before it pages to mmap."""
    return max(1, budget_bytes // 16)


class MmapBitField(BitField):
    """A :class:`BitField` whose byte array is a shared file mapping."""

    __slots__ = ("path",)

    def __init__(
        self, size: int, path: str, create: bool = True, readonly: bool = False
    ):
        self.size = size
        self.nbytes = (size + 7) // 8
        self.path = path
        try:
            if create:
                with open(path, "wb") as sink:
                    sink.truncate(self.nbytes)
            self._bytes = np.memmap(
                path,
                dtype=np.uint8,
                mode="r" if readonly else "r+",
                shape=(self.nbytes,),
            )
        except (OSError, ValueError) as exc:
            raise EngineFault(
                f"mmap visited backing failed at {path!r}: {exc}"
            ) from exc

    def flush(self) -> None:
        """Push dirty pages to the file (before workers reattach)."""
        self._bytes.flush()

    def release_buffer(self) -> None:
        """Unmap the file; the field becomes unusable afterwards."""
        buffer = self._bytes
        self._bytes = np.empty(0, dtype=np.uint8)
        mapping = getattr(buffer, "_mmap", None)
        del buffer
        if mapping is not None:
            try:
                mapping.close()
            except (BufferError, OSError):  # pragma: no cover - views live
                pass


class VisitedHandle:
    """One driver-side flag field plus how workers reattach to it."""

    def __init__(
        self,
        field: BitField,
        ref: Optional[VisitedRef],
        segment: Optional[Segment] = None,
        runtime: Optional["SharedRuntime"] = None,
    ):
        self.field = field
        self.ref = ref
        self._segment = segment
        self._runtime = runtime
        self._closed = False

    @property
    def sharable(self) -> bool:
        """Whether forked workers can attach this field by reference."""
        return self.ref is not None

    def flush(self) -> None:
        """Make driver writes visible before fanning out workers."""
        if isinstance(self.field, MmapBitField):
            self.field.flush()

    def detach_private(self) -> BitField:
        """Copy the bits into a private field and release the backing.

        The caller owns a plain in-RAM :class:`BitField` either way —
        the contract the fixpoints have had since PR 9.
        """
        if self.ref is None:
            return self.field
        private = BitField(self.field.size)
        self.field.copy_into(private)
        self.close()
        return private

    def close(self) -> None:
        """Release the backing (segment or mapped file).  Idempotent."""
        if self._closed or self.ref is None:
            return
        self._closed = True
        kind = self.ref[0]
        path = getattr(self.field, "path", None)
        self.field.release_buffer()
        if kind == "shm" and self._segment is not None:
            assert self._runtime is not None
            self._runtime.registry.release(self._segment)
        elif kind == "mmap" and path is not None:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - spill rmtree races
                pass


def open_visited(
    runtime: "SharedRuntime",
    size: int,
    tag: str,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> VisitedHandle:
    """Open one flag field on the cheapest backing that fits.

    The ladder: an mmap file when the field itself outgrows its budget
    slice (and the context allows it), a shm segment when workers need
    to attach, else a private array.
    """
    nbytes = (size + 7) // 8
    context = runtime.context
    if context.mmap_visited and nbytes > mmap_threshold(context.budget_bytes):
        path = runtime.spill.reserve_path(f"visited-{tag}.bits")
        field = MmapBitField(size, path, create=True)
        instrumentation.count("shm.visited.mmap_bytes", nbytes)
        instrumentation.event(
            "shm.visited", tag=tag, backing="mmap", nbytes=nbytes
        )
        return VisitedHandle(field, ("mmap", (path, size)), runtime=runtime)
    if runtime.workers > 1:
        segment = runtime.registry.create(nbytes, tag)
        field = BitField(size, segment.buf)
        field.zero()
        instrumentation.event(
            "shm.visited", tag=tag, backing="shm", nbytes=nbytes
        )
        return VisitedHandle(
            field, ("shm", (segment.name, size)), segment=segment,
            runtime=runtime,
        )
    instrumentation.event(
        "shm.visited", tag=tag, backing="private", nbytes=nbytes
    )
    return VisitedHandle(BitField(size), None)


class AttachedVisited:
    """A worker's read view of a driver field (close in ``finally``)."""

    def __init__(self, ref: VisitedRef):
        kind, (locator, size) = ref
        self._segment: Optional[Segment] = None
        if kind == "shm":
            self._segment = attach_segment(locator)
            self.field: BitField = BitField(size, self._segment.buf)
        else:
            self.field = MmapBitField(
                size, locator, create=False, readonly=True
            )

    def close(self) -> None:
        self.field.release_buffer()
        if self._segment is not None:
            self._segment.close()


def attach_visited(ref: VisitedRef) -> AttachedVisited:
    """Attach a worker-side view of a shared or mmap-backed field."""
    return AttachedVisited(ref)
