"""Shared-memory segment lifecycle with leak-proof accounting.

The shared engine moves frontier slices and flag bitfields between the
driver and forked workers through ``multiprocessing.shared_memory``
segments.  Segments are named objects in ``/dev/shm`` (on Linux) that
outlive any single process — which is exactly what makes them
zero-copy across fork, and exactly what makes them a leak hazard when
a worker is SIGKILLed mid-write (the resilience supervisor and the
chaos harness both do that on purpose).

:class:`SegmentRegistry` makes cleanup unconditional rather than
cooperative:

* every segment name carries the registry's run-scoped prefix
  (``rs-<pid>-<seq>``), including segments created *by workers* (their
  names append the child pid);
* :meth:`sweep` unlinks every name the driver recorded **and** — on
  platforms where ``/dev/shm`` is listable — every leftover object
  matching the run prefix, so a killed worker's half-written output
  segment is reclaimed even though the driver never learned its name;
* a module-level ``atexit`` hook sweeps any registry that was not
  closed, as the last line of defense.

Counters (see OBSERVABILITY.md): ``shm.segments`` / ``shm.bytes``
(created, with sizes), ``shm.reattach.hits`` (zero-copy attaches that
replaced a would-be re-derivation), ``shm.segments.swept`` (names the
final sweep actually had to reclaim — nonzero after worker deaths).
"""

from __future__ import annotations

import atexit
import errno
import os
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Optional, Tuple

from ...obs import NULL_INSTRUMENTATION, Instrumentation

__all__ = [
    "Segment",
    "SegmentRegistry",
    "attach_segment",
    "create_worker_segment",
    "shared_memory_unavailable_reason",
    "shm_dir",
]

#: Where POSIX shared memory appears as files (Linux).  ``None``-able:
#: the registry degrades to recorded-name sweeping elsewhere.
_SHM_DIR = "/dev/shm"


def shm_dir() -> Optional[str]:
    """The listable shared-memory directory, or ``None`` off-Linux."""
    return _SHM_DIR if os.path.isdir(_SHM_DIR) else None


_PROBE_RESULT: List[Optional[str]] = []


def shared_memory_unavailable_reason() -> Optional[str]:
    """Why ``multiprocessing.shared_memory`` cannot be used (``None`` = OK).

    Probes once per process by creating and unlinking a tiny segment;
    the result is cached.  Platforms without POSIX shared memory (or
    with an unwritable ``/dev/shm``) fall back to the in-process
    engines with this reason.
    """
    if not _PROBE_RESULT:
        try:
            probe = shared_memory.SharedMemory(create=True, size=8)
            probe.close()
            probe.unlink()
        except (OSError, ValueError, ImportError) as exc:
            _PROBE_RESULT.append(f"shared memory unavailable: {exc}")
        else:
            _PROBE_RESULT.append(None)
    return _PROBE_RESULT[0]


@dataclass
class Segment:
    """A live handle on one shared-memory segment."""

    name: str
    shm: shared_memory.SharedMemory

    @property
    def buf(self) -> memoryview:
        return self.shm.buf

    def close(self) -> None:
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover - platform noise
            pass


def _unlink_name(name: str) -> bool:
    """Unlink segment ``name`` if it still exists; True when it did.

    Goes through ``SharedMemory.unlink`` rather than a raw filesystem
    unlink so the name is also unregistered from the interpreter's
    resource tracker — otherwise the tracker warns about (and retries)
    the "leaked" name at shutdown.
    """
    try:
        stale = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - permission oddities
        directory = shm_dir()
        if directory is not None:
            try:
                os.unlink(os.path.join(directory, name))
                return True
            except OSError:
                return False
        return False
    stale.close()
    try:
        stale.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a race
        return False
    return True


#: Registries not yet closed, for the atexit backstop.
_LIVE_REGISTRIES: "weakref.WeakSet[SegmentRegistry]" = weakref.WeakSet()


def _atexit_sweep() -> None:  # pragma: no cover - exercised via subprocess
    for registry in list(_LIVE_REGISTRIES):
        registry.sweep()


atexit.register(_atexit_sweep)


class SegmentRegistry:
    """Create, attach, and unconditionally reclaim shm segments.

    One registry per engine run; its prefix scopes every name the run
    can create (driver- or worker-side), and :meth:`sweep` reclaims
    them all.  Usable as a context manager.
    """

    _SEQ: List[int] = [0]

    def __init__(self, instrumentation: Instrumentation = NULL_INSTRUMENTATION):
        SegmentRegistry._SEQ[0] += 1
        self.prefix = f"rs-{os.getpid():x}-{SegmentRegistry._SEQ[0]:x}"
        self._obs = instrumentation
        self._open: Dict[str, Segment] = {}
        self._names: List[str] = []
        self._swept = False
        _LIVE_REGISTRIES.add(self)

    # -- driver side ---------------------------------------------------

    def create(self, nbytes: int, tag: str) -> Segment:
        """Create a driver-owned segment named ``<prefix>-<tag>``."""
        name = f"{self.prefix}-{tag}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, nbytes)
        )
        segment = Segment(name=name, shm=shm)
        self._open[name] = segment
        self._names.append(name)
        self._obs.count("shm.segments")
        self._obs.count("shm.bytes", max(1, nbytes))
        return segment

    def attach(self, name: str) -> Segment:
        """Attach to an existing segment (a worker's output).

        Counts ``shm.reattach.hits``: each attach is data consumed in
        place instead of pickled back through the result pipe.
        """
        shm = shared_memory.SharedMemory(name=name)
        segment = Segment(name=name, shm=shm)
        self._open.setdefault(name, segment)
        if name not in self._names:
            self._names.append(name)
        self._obs.count("shm.reattach.hits")
        return segment

    def release(self, segment: Segment) -> None:
        """Close and unlink one segment immediately after consuming it."""
        segment.close()
        self._open.pop(segment.name, None)
        _unlink_name(segment.name)

    # -- cleanup -------------------------------------------------------

    def leftover_names(self) -> List[str]:
        """Names under this registry's prefix still present in shm."""
        directory = shm_dir()
        found: List[str] = []
        if directory is not None:
            try:
                entries: Iterable[str] = os.listdir(directory)
            except OSError:  # pragma: no cover - platform noise
                entries = []
            found.extend(
                entry for entry in entries if entry.startswith(self.prefix)
            )
        for name in self._names:
            if name not in found:
                found.append(name)
        return found

    def sweep(self) -> int:
        """Reclaim every segment this run could have created.

        Closes open handles, unlinks all recorded names, and — where
        ``/dev/shm`` is listable — unlinks any leftover object under
        the run prefix (a killed worker's segment whose name the
        driver never learned).  Idempotent; returns how many objects
        still existed and were reclaimed.
        """
        for segment in list(self._open.values()):
            segment.close()
        self._open.clear()
        reclaimed = 0
        for name in self.leftover_names():
            if _unlink_name(name):
                reclaimed += 1
        self._names.clear()
        if reclaimed and not self._swept:
            self._obs.count("shm.segments.swept", reclaimed)
        self._swept = True
        _LIVE_REGISTRIES.discard(self)
        return reclaimed

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.sweep()


# -- worker side -------------------------------------------------------


def attach_segment(name: str) -> Segment:
    """Attach read-only-by-convention to a driver segment (in a worker)."""
    return Segment(name=name, shm=shared_memory.SharedMemory(name=name))


def create_worker_segment(prefix: str, tag: str, nbytes: int) -> Segment:
    """Create a worker-output segment under the run prefix.

    The name embeds the worker pid, so a retried task (new pid after a
    kill) never collides with the corpse of the previous attempt — and
    the corpse still matches the run prefix, so the driver's sweep
    reclaims it.
    """
    name = f"{prefix}-{tag}-w{os.getpid():x}"
    try:
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, nbytes)
        )
    except FileExistsError:
        # Same pid retrying in-process (quarantined inline run after a
        # previous partial write): reclaim and recreate.
        _unlink_name(name)
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, nbytes)
        )
    return Segment(name=name, shm=shm)
