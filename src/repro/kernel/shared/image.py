"""Chunk-streamed abstraction images for the shared engine.

The vector engine precomputes the whole concrete→abstract code table
(:func:`~repro.kernel.vector.image.vector_image_codes`); at mega-state
sizes that table alone would be ``8 * |Sigma|`` bytes.
:class:`SharedImage` evaluates the same mapping per code *chunk*
instead — identity as an offset ``arange``, a batch
:attr:`~repro.core.abstraction.AbstractionFunction.array_mapping`
column-wise, or (for small spaces only) the dense scalar-loop table —
with the vector path's exact ``-1`` out-of-schema convention, so every
downstream comparison (``legitimate[image]`` gathers, invisible-step
masks) sees identical values.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...core.abstraction import AbstractionFunction
from ..engine import image_codes
from ..interner import StateInterner
from ..vector.analyze import BOOL, domain_type
from ..vector.image import _encode_columns

__all__ = ["SharedImage", "shared_image_unsupported_reason"]


def shared_image_unsupported_reason(
    concrete: StateInterner,
    abstract: StateInterner,
    alpha: Optional[AbstractionFunction],
    dense_ceiling: int,
) -> Optional[str]:
    """Why the image cannot be streamed (``None`` = it can).

    Streaming needs the identity, a batch ``array_mapping`` over
    int/bool domains, or a space small enough (``<= dense_ceiling``)
    for the scalar-loop dense table.
    """
    if alpha is None and concrete.schema.compatible_with(abstract.schema):
        return None
    if (
        getattr(alpha, "array_mapping", None) is not None
        and all(
            domain_type(domain) is not None
            for domain in concrete.schema.domains
        )
        and all(
            domain_type(domain) is not None
            for domain in abstract.schema.domains
        )
    ):
        return None
    if concrete.size <= dense_ceiling:
        return None
    return (
        "abstraction has no batch array form and the state space is too "
        "large for the scalar image table"
    )


class SharedImage:
    """``image.of(codes)`` — abstract codes of a concrete chunk.

    Strategies, probed in the vector table's order: identity, batch
    ``array_mapping`` columns, dense scalar table (small spaces only —
    the caller gates via :func:`shared_image_unsupported_reason`).
    """

    def __init__(
        self,
        concrete: StateInterner,
        abstract: StateInterner,
        alpha: Optional[AbstractionFunction],
    ):
        self._concrete = concrete
        self._abstract = abstract
        self._alpha = alpha
        self._identity = alpha is None and concrete.schema.compatible_with(
            abstract.schema
        )
        self._mapping = None
        self._columns_plan: Dict[str, tuple] = {}
        self._table: Optional[np.ndarray] = None
        if self._identity:
            return
        array_mapping = getattr(alpha, "array_mapping", None)
        if (
            array_mapping is not None
            and all(
                domain_type(domain) is not None
                for domain in concrete.schema.domains
            )
            and all(
                domain_type(domain) is not None
                for domain in abstract.schema.domains
            )
        ):
            self._mapping = array_mapping
            places = concrete.places_by_name()
            for name, domain in zip(
                concrete.schema.names, concrete.schema.domains
            ):
                values = np.asarray(
                    [int(value) for value in domain], dtype=np.int64
                )
                self._columns_plan[name] = (
                    places[name],
                    len(domain),
                    values,
                    domain_type(domain) == BOOL,
                )
            # Probe coverage on one code, mirroring the vector table's
            # column-coverage check; a partial mapping falls through to
            # the dense path below.
            probe = self._mapping_columns(np.zeros(1, dtype=np.int64))
            if set(probe) == set(abstract.schema.names):
                return
            self._mapping = None
            self._columns_plan = {}
        # Dense fallback: the scalar loop, once.  Only reachable for
        # small spaces (the fallback reason refuses large ones).
        self._table = np.asarray(
            image_codes(concrete, abstract, alpha), dtype=np.int64
        )

    def _mapping_columns(self, codes: np.ndarray) -> Dict[str, np.ndarray]:
        columns: Dict[str, np.ndarray] = {}
        for name, (place, radix, values, is_bool) in self._columns_plan.items():
            digit = (codes // place) % radix
            column = values[digit]
            columns[name] = column.astype(bool) if is_bool else column
        return self._mapping(columns)

    def of(self, codes: np.ndarray) -> np.ndarray:
        """Abstract codes of ``codes`` (``-1`` = outside the schema)."""
        if self._identity:
            return codes
        if self._table is not None:
            return self._table[codes]
        image_columns = self._mapping_columns(codes)
        return _encode_columns(
            self._abstract, image_columns, int(codes.shape[0])
        )
