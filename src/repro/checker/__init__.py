"""Finite-state decision procedures for the paper's definitions.

Public surface:

* :mod:`repro.checker.graph` — reachability, SCCs, cycles, paths;
* :mod:`repro.checker.refinement_check` — ``[C (= A]_init``,
  ``[C (= A]``, and the convergence-refinement relation ``[C <= A]``;
* :mod:`repro.checker.convergence` — stabilization and
  self-stabilization;
* :mod:`repro.checker.witnesses` / :mod:`repro.checker.report` —
  counterexample values and rendered verification reports.
"""

from .budget import BudgetMeter, PartialExploration
from .convergence import (
    StabilizationResult,
    behavioural_core,
    check_self_stabilization,
    check_stabilization,
    convergence_profile,
    legitimate_abstract_states,
    worst_case_convergence_steps,
    worst_case_schedule,
)
from .fairness import find_fair_trap, has_fair_divergence
from .graph import (
    edge_on_cycle,
    find_cycle_within,
    has_cycle_within,
    reachable_set,
    shortest_path,
    states_on_cycles,
    strongly_connected_components,
    terminal_states_within,
)
from .refinement_check import (
    check_convergence_refinement,
    check_everywhere_eventually_refinement,
    check_everywhere_refinement,
    check_init_refinement,
    compression_transitions,
    expand_to_abstract_path,
)
from .report import ReportEntry, VerificationReport
from .witnesses import CheckResult, Witness, WitnessKind

__all__ = [
    "BudgetMeter",
    "PartialExploration",
    "StabilizationResult",
    "behavioural_core",
    "check_self_stabilization",
    "check_stabilization",
    "convergence_profile",
    "find_fair_trap",
    "has_fair_divergence",
    "legitimate_abstract_states",
    "worst_case_convergence_steps",
    "worst_case_schedule",
    "edge_on_cycle",
    "find_cycle_within",
    "has_cycle_within",
    "reachable_set",
    "shortest_path",
    "states_on_cycles",
    "strongly_connected_components",
    "terminal_states_within",
    "check_convergence_refinement",
    "check_everywhere_eventually_refinement",
    "check_everywhere_refinement",
    "check_init_refinement",
    "compression_transitions",
    "expand_to_abstract_path",
    "ReportEntry",
    "VerificationReport",
    "CheckResult",
    "Witness",
    "WitnessKind",
]
