"""Counterexample witnesses produced by the decision procedures.

Every checker in this package answers with a :class:`CheckResult`: a
boolean verdict plus, on failure, a :class:`Witness` that pins down
*which* clause of the paper's definition broke and *where*.  Witnesses
carry concrete state sequences so that a failed theorem check can be
replayed by hand (or rendered by :mod:`repro.checker.report`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Optional, Tuple

from ..core.state import State, StateSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (budget -> witnesses)
    from .budget import PartialExploration

__all__ = ["WitnessKind", "Witness", "CheckResult"]


class WitnessKind(Enum):
    """The clause of a definition that a witness violates."""

    #: A reachable transition of ``C`` is not a transition of ``A``.
    ILLEGAL_TRANSITION = "illegal-transition"
    #: A transition of ``C`` has no matching (multi-step) path in ``A``.
    NO_ABSTRACT_PATH = "no-abstract-path"
    #: A compressing transition of ``C`` lies on a cycle of ``C``
    #: (infinitely many omissions would be needed).
    COMPRESSION_ON_CYCLE = "compression-on-cycle"
    #: ``C`` halts in a state where ``A`` can still move (maximality
    #: of the matched abstract computation fails).
    BAD_TERMINAL = "bad-terminal"
    #: A cycle that never enters the legitimate set (divergence).
    DIVERGENT_CYCLE = "divergent-cycle"
    #: A deadlock outside the legitimate set.
    ILLEGITIMATE_DEADLOCK = "illegitimate-deadlock"
    #: Behaviour inside the legitimate set departs from the target.
    CLOSURE_VIOLATION = "closure-violation"
    #: The abstraction function failed totality or surjectivity.
    BAD_ABSTRACTION = "bad-abstraction"
    #: A tolerance property of a component system failed (used by the
    #: introductory counterexamples).
    TOLERANCE_VIOLATION = "tolerance-violation"


@dataclass(frozen=True)
class Witness:
    """A concrete violation of one clause of a checked definition.

    Attributes:
        kind: which clause failed.
        message: one-line human explanation.
        states: the states involved (a transition pair, a cycle, or a
            deadlocked state), in order.
        schema: schema used to pretty-print ``states`` (optional).
    """

    kind: WitnessKind
    message: str
    states: Tuple[State, ...] = ()
    schema: Optional[StateSchema] = None

    def format(self) -> str:
        """Render the witness with pretty-printed states."""
        lines = [f"[{self.kind.value}] {self.message}"]
        for state in self.states:
            if self.schema is not None:
                lines.append(f"    {self.schema.format_state(state)}")
            else:
                lines.append(f"    {state!r}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CheckResult:
    """Verdict of a decision procedure plus failure evidence.

    Attributes:
        holds: the verdict.  ``False`` both on a counterexample and on
            a partial (budget-capped) exploration — an unfinished check
            affirms nothing; use :attr:`is_partial` to tell them apart.
        check: name of the property that was decided (e.g.
            ``"convergence refinement"``).
        witness: populated iff the check found a counterexample.
        detail: optional free-form text with statistics of the check
            (state counts, number of compression edges, ...).
        partial: populated iff the check ran out of state budget
            before reaching a verdict (see
            :class:`repro.checker.budget.PartialExploration`).
    """

    holds: bool
    check: str
    witness: Optional[Witness] = None
    detail: str = ""
    partial: Optional["PartialExploration"] = None

    @property
    def is_partial(self) -> bool:
        """Did the check stop at its state budget rather than decide?"""
        return self.partial is not None

    @property
    def verdict(self) -> str:
        """``"HOLDS"``, ``"FAILS"``, or ``"PARTIAL"``."""
        if self.is_partial:
            return "PARTIAL"
        return "HOLDS" if self.holds else "FAILS"

    def __bool__(self) -> bool:
        return self.holds

    def format(self) -> str:
        """Multi-line rendering: verdict, detail, and witness if any."""
        lines = [f"{self.check}: {self.verdict}"]
        if self.partial is not None:
            lines.append(f"  {self.partial.format()}")
        if self.detail:
            lines.append(f"  {self.detail}")
        if self.witness is not None:
            lines.extend("  " + line for line in self.witness.format().splitlines())
        return "\n".join(lines)

    def expect(self) -> "CheckResult":
        """Assert the verdict is positive; raise with the witness otherwise.

        Returns ``self`` for chaining.  Useful in derivation scripts
        where a failed check should abort loudly.
        """
        if not self.holds:
            raise AssertionError(self.format())
        return self
