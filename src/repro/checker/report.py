"""Aggregated verification reports.

The benchmark harness and the example scripts verify whole derivation
chains (mapping well-formedness, wrapper refinement, convergence
refinement, stabilization) and want to print one coherent table per
experiment.  :class:`VerificationReport` collects named check results
and renders them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

from .convergence import StabilizationResult
from .witnesses import CheckResult

__all__ = ["ReportEntry", "VerificationReport"]

ResultLike = Union[CheckResult, StabilizationResult]


@dataclass(frozen=True)
class ReportEntry:
    """One row of a verification report.

    Attributes:
        label: the paper artifact being checked (e.g. ``"Lemma 7"``).
        result: the check outcome.
        note: optional free-form annotation (parameters, fairness mode).
    """

    label: str
    result: ResultLike
    note: str = ""

    @property
    def holds(self) -> bool:
        """Verdict of the underlying check."""
        return bool(self.result)


class VerificationReport:
    """An ordered collection of labelled check results.

    Example:
        >>> report = VerificationReport("Theorem 8, N=3")
        >>> # report.add("Lemma 7", some_check_result)
        >>> # print(report.render())
    """

    def __init__(self, title: str):
        self._title = title
        self._entries: List[ReportEntry] = []

    @property
    def title(self) -> str:
        """Report heading."""
        return self._title

    @property
    def entries(self) -> Tuple[ReportEntry, ...]:
        """All rows added so far, in insertion order."""
        return tuple(self._entries)

    def add(self, label: str, result: ResultLike, note: str = "") -> ReportEntry:
        """Append a row and return it."""
        entry = ReportEntry(label, result, note)
        self._entries.append(entry)
        return entry

    def all_hold(self) -> bool:
        """True iff every recorded check succeeded."""
        return all(entry.holds for entry in self._entries)

    def failures(self) -> Tuple[ReportEntry, ...]:
        """The rows whose checks failed."""
        return tuple(entry for entry in self._entries if not entry.holds)

    def render(self, verbose: bool = False) -> str:
        """Render the report as a text table.

        Args:
            verbose: include full witness/detail text for every row;
                otherwise failures only.
        """
        width = max([len(entry.label) for entry in self._entries] + [len(self._title)])
        lines = [self._title, "=" * len(self._title)]
        for entry in self._entries:
            verdict = "ok" if entry.holds else "FAIL"
            note = f"  ({entry.note})" if entry.note else ""
            lines.append(f"{entry.label.ljust(width)}  {verdict}{note}")
            body = entry.result.format()
            if verbose or not entry.holds:
                lines.extend("    " + line for line in body.splitlines())
        summary = "all checks hold" if self.all_hold() else (
            f"{len(self.failures())} of {len(self._entries)} checks FAILED"
        )
        lines.append("-" * len(self._title))
        lines.append(summary)
        return "\n".join(lines)

    def expect_all(self) -> "VerificationReport":
        """Raise :class:`AssertionError` with the rendered report on any failure."""
        if not self.all_hold():
            raise AssertionError(self.render(verbose=True))
        return self
