"""Graph algorithms over transition systems.

Every decision procedure in this reproduction reduces to questions
about the directed graph ``(Sigma, T)`` of a system: reachability,
membership of an edge in a cycle, strongly connected components, and
shortest paths.  This module implements those primitives iteratively
(no recursion — state spaces run to tens of thousands of nodes) and
without any dependency on the protocol packages.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.state import State
from ..core.system import System, Transition

__all__ = [
    "reachable_set",
    "shortest_path",
    "strongly_connected_components",
    "states_on_cycles",
    "edge_on_cycle",
    "has_cycle_within",
    "find_cycle_within",
    "terminal_states_within",
    "bounded_paths",
]


def reachable_set(system: System, sources: Iterable[State]) -> FrozenSet[State]:
    """States reachable from ``sources`` (inclusive).

    Thin alias of :meth:`System.reachable_from`, re-exported here so
    the checker package is self-contained for callers.
    """
    return system.reachable_from(sources)


def shortest_path(
    system: System,
    source: State,
    target: State,
    min_length: int = 0,
    max_length: Optional[int] = None,
) -> Optional[Tuple[State, ...]]:
    """BFS shortest path from ``source`` to ``target``.

    Args:
        system: the automaton whose transition relation is traversed.
        source: start state.
        target: goal state.
        min_length: minimum number of *transitions* the path must take;
            ``min_length=1`` excludes the empty path even when
            ``source == target`` (used to find compression witnesses,
            which must be genuine multi-step paths of the abstract).
        max_length: optional inclusive bound on transitions explored.

    Returns:
        The state sequence of a shortest qualifying path (including
        both endpoints), or ``None`` when no such path exists.
    """
    system.schema.validate(source)
    system.schema.validate(target)
    if min_length == 0 and source == target:
        return (source,)
    # BFS over (state, steps) where only the first visit per state at
    # steps >= 1 matters, except we must allow re-visiting the source.
    parents: Dict[State, Tuple[Optional[State], int]] = {}
    frontier: List[State] = [source]
    steps = 0
    while frontier:
        steps += 1
        if max_length is not None and steps > max_length:
            return None
        next_frontier: List[State] = []
        for current in frontier:
            for successor in system.successors(current):
                if successor == target and steps >= min_length:
                    path = [target]
                    back: Optional[State] = current
                    while back is not None:
                        path.append(back)
                        back = parents.get(back, (None, 0))[0]
                    path.reverse()
                    return tuple(path)
                if successor not in parents and successor != source:
                    parents[successor] = (current, steps)
                    next_frontier.append(successor)
        frontier = next_frontier
    return None


def strongly_connected_components(
    system: System, states: Optional[Iterable[State]] = None
) -> List[FrozenSet[State]]:
    """Tarjan's SCC algorithm, iterative, over the given state set.

    Args:
        system: automaton providing the edge relation.
        states: the vertex set to consider (defaults to every state
            that occurs as a transition endpoint; isolated states that
            never appear in ``T`` are irrelevant to cycle questions).

    Returns:
        List of SCCs in reverse topological order (Tarjan's natural
        output order: every component is emitted after its successors).
    """
    if states is None:
        vertex_set: Set[State] = set()
        for source, target in system.transitions():
            vertex_set.add(source)
            vertex_set.add(target)
    else:
        vertex_set = set(states)

    index_counter = 0
    indices: Dict[State, int] = {}
    lowlinks: Dict[State, int] = {}
    on_stack: Set[State] = set()
    stack: List[State] = []
    components: List[FrozenSet[State]] = []

    for root in vertex_set:
        if root in indices:
            continue
        # Iterative Tarjan: work items are (state, iterator over successors).
        work: List[Tuple[State, Iterable[State]]] = []
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, iter(sorted(
            (s for s in system.successors(root) if s in vertex_set), key=repr
        ))))
        while work:
            state, successor_iter = work[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in indices:
                    indices[successor] = lowlinks[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(
                        (s for s in system.successors(successor) if s in vertex_set),
                        key=repr,
                    ))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[state] = min(lowlinks[state], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[state])
            if lowlinks[state] == indices[state]:
                component: Set[State] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == state:
                        break
                components.append(frozenset(component))
    return components


def states_on_cycles(
    system: System, states: Optional[Iterable[State]] = None
) -> FrozenSet[State]:
    """States that lie on at least one cycle (within the given set).

    A state is on a cycle iff its SCC has more than one member, or it
    has a self-loop.
    """
    vertex_filter = None if states is None else set(states)
    result: Set[State] = set()
    for component in strongly_connected_components(system, vertex_filter):
        if len(component) > 1:
            result |= component
        else:
            (only,) = component
            if system.has_transition(only, only):
                result.add(only)
    return frozenset(result)


def edge_on_cycle(system: System, source: State, target: State) -> bool:
    """True iff transition ``(source, target)`` lies on some cycle of the system.

    Equivalent to ``source`` being reachable from ``target``.
    """
    return source in system.reachable_from([target])


def has_cycle_within(system: System, states: Iterable[State]) -> bool:
    """True iff the sub-graph induced on ``states`` contains a cycle."""
    return bool(states_on_cycles(system, states))


def find_cycle_within(
    system: System, states: Iterable[State]
) -> Optional[Tuple[State, ...]]:
    """Return a concrete cycle inside the induced sub-graph, if any.

    The returned sequence starts and ends at the same state.  Used to
    produce divergence witnesses for failed stabilization checks.
    """
    allowed = set(states)
    cycle_states = states_on_cycles(system, allowed)
    if not cycle_states:
        return None
    start = min(cycle_states, key=repr)
    restricted = system.restricted_to(allowed)
    path = shortest_path(restricted, start, start, min_length=1)
    if path is not None:
        return path
    # ``start`` has its cycle through states possibly not all in cycle_states;
    # fall back to searching within the full allowed set (already restricted).
    for candidate in sorted(cycle_states, key=repr):  # pragma: no cover - rare
        path = shortest_path(restricted, candidate, candidate, min_length=1)
        if path is not None:
            return path
    return None


def terminal_states_within(system: System, states: Iterable[State]) -> FrozenSet[State]:
    """States in the given set with no outgoing transition at all.

    Note this checks for terminality in the *whole* system, not in the
    induced sub-graph: a convergence check asks whether a computation
    can get stuck outside the legitimate set, and a state with an edge
    leaving the set is not stuck.
    """
    return frozenset(state for state in states if system.is_terminal(state))


def bounded_paths(
    system: System, source: State, max_transitions: int
) -> Iterable[Tuple[State, ...]]:
    """Enumerate all paths from ``source`` with at most ``max_transitions`` edges.

    Paths are yielded in depth-first order, shortest prefixes first
    along each branch; a path ending in a terminal state is yielded
    once and not extended.  Intended for definitional cross-checks on
    tiny systems and for property tests.
    """
    if max_transitions < 0:
        raise ValueError("max_transitions must be non-negative")
    system.schema.validate(source)
    stack: List[Tuple[State, ...]] = [(source,)]
    while stack:
        path = stack.pop()
        yield path
        if len(path) - 1 >= max_transitions:
            continue
        for successor in sorted(system.successors(path[-1]), key=repr):
            stack.append(path + (successor,))
