"""Strong-fairness analysis for convergence checking.

The paper's Theorem 6 states that ``BTR [] W1 [] W2`` is stabilizing
to ``BTR``.  Under a completely unconstrained central daemon this is
not literally true: in a state where an up-token and a down-token are
co-located, the daemon may forever prefer the token-*moving* actions
(the tokens cross, bounce off the ends, and meet again) and never
schedule ``W2``'s cancellation.  The informal argument in Section 3.2
("tokens moving in opposite directions will cancel each other")
implicitly appeals to action fairness: an action that is enabled
infinitely often fires infinitely often — *strong fairness*.

This module decides divergence under strong fairness exactly, using
the action labels recorded on compiled transitions.  A set of states
``D`` outside the legitimate core supports a strongly fair divergent
run iff, after iteratively discarding states that fair runs can visit
only finitely often, a non-trivial strongly connected *fair trap*
remains:

* ``D`` is strongly connected with at least one transition inside it;
* for every action ``a`` enabled at some state of ``D`` there is an
  ``a``-labelled transition from ``D`` into ``D`` (so a run can keep
  honouring ``a``'s fairness obligation without leaving ``D``).

If some action ``a`` is enabled at ``s`` in ``D`` but every
``a``-transition within ``D`` is missing, a fair run confined to ``D``
may visit ``s`` only finitely often; such states are removed and the
component analysis repeats.  The refinement story told by the
reproduction hinges on this distinction: the *abstract* wrapped ring
needs strong fairness, while Dijkstra's *concrete* refinements
converge under the raw unfair daemon — the refinement compresses away
exactly the co-location states whose scheduling needed fairness.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.state import State
from ..core.system import System
from .graph import strongly_connected_components

__all__ = ["find_fair_trap", "has_fair_divergence"]


def _enabled_actions_at(system: System, state: State) -> FrozenSet[str]:
    """Names of actions with a transition from ``state`` (anywhere).

    Transitions without recorded labels are treated as anonymous
    actions private to their edge, named by the edge itself — each is
    its own fairness obligation.
    """
    names: Set[str] = set()
    for target in system.successors(state):
        labels = system.labels_of(state, target)
        if labels:
            names |= labels
        else:
            names.add(f"<anon {state!r}->{target!r}>")
    return frozenset(names)


def _action_transitions_within(
    system: System, component: FrozenSet[State]
) -> Dict[str, bool]:
    """Map each action enabled in ``component`` to whether it has a
    transition staying inside ``component``."""
    sustained: Dict[str, bool] = {}
    for state in component:
        for action in _enabled_actions_at(system, state):
            sustained.setdefault(action, False)
        for target in system.successors(state):
            if target not in component:
                continue
            labels = system.labels_of(state, target) or frozenset(
                (f"<anon {state!r}->{target!r}>",)
            )
            for action in labels:
                sustained[action] = True
    return sustained


def find_fair_trap(
    system: System, states: Iterable[State]
) -> Optional[FrozenSet[State]]:
    """Find a strongly-fair divergent trap within ``states``, if any.

    Args:
        system: the automaton (with transition labels; unlabelled
            transitions are treated as private anonymous actions).
        states: the candidate region (typically the complement of the
            legitimate core).

    Returns:
        A set of states supporting a strongly fair infinite run that
        never leaves the region, or ``None`` when every strongly fair
        computation must exit the region (i.e. converges).
    """
    pending: List[FrozenSet[State]] = [frozenset(states)]
    while pending:
        region = pending.pop()
        if not region:
            continue
        for component in strongly_connected_components(system, region):
            # Only components that can sustain an infinite run matter.
            if len(component) == 1:
                (only,) = component
                if not (
                    system.has_transition(only, only)
                ):
                    continue
            sustained = _action_transitions_within(system, component)
            broken = [action for action, ok in sustained.items() if not ok]
            if not broken:
                return component
            broken_set = set(broken)
            survivors = frozenset(
                state
                for state in component
                if not (_enabled_actions_at(system, state) & broken_set)
            )
            if survivors and survivors != component:
                pending.append(survivors)
    return None


def has_fair_divergence(system: System, states: Iterable[State]) -> bool:
    """Boolean form of :func:`find_fair_trap`."""
    return find_fair_trap(system, states) is not None
