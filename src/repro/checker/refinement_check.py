"""Decision procedures for the paper's refinement relations.

Three relations are decided here, each over finite systems and each
optionally through an abstraction function (paper, Section 2.3):

* ``[C subseteq A]_init`` — refinement from initial states;
* ``[C subseteq A]`` — everywhere refinement;
* ``[C <= A]`` — convergence refinement.

The convergence-refinement procedure is the heart of the reproduction.
It is exact on finite systems and works transition-locally:

1. every transition of ``C`` reachable from ``C``'s initial states
   must map to a transition of ``A`` (this gives the
   ``[C subseteq A]_init`` clause);
2. every transition of ``C`` anywhere in the state space must map to a
   non-empty *path* of ``A`` — a length-1 path is an exact step, a
   longer path is a *compression* (the concrete jumps over states the
   abstract passes through, as in the paper's Section 4.2 diagram);
3. no compressing transition may lie on a cycle of ``C``: a cycle
   through a compression would be traversed infinitely often by some
   computation, forcing infinitely many omissions, which the
   convergence-isomorphism definition forbids;
4. every terminal state of ``C`` must map to a terminal state of
   ``A``, so the matched abstract computation is maximal where the
   concrete one ends.

Together, 1-4 hold iff ``[C <= A]``: given 2-4 one splices the
abstract paths of consecutive concrete transitions into an abstract
computation of which the concrete computation is a convergence
isomorphism, and conversely each clause is necessary (a violation of
any one yields a concrete computation with no abstract partner).

Stuttering (``stutter_insensitive=True``) extends the relation to the
paper's ``C3``, whose illegitimate-state tau steps repeat a state:
transitions whose abstract image does not move are then permitted, as
long as no cycle of ``C`` consists solely of such invisible steps
(which would hide divergence).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.abstraction import AbstractionFunction, identity_abstraction
from ..core.state import State
from ..core.system import System, Transition
from ..obs import NULL_INSTRUMENTATION, Instrumentation, ProgressEmitter
from .budget import BudgetExceeded, BudgetMeter
from .convergence import ENGINES, SystemOrProgram, _as_system, _source_name
from .graph import shortest_path
from .witnesses import CheckResult, Witness, WitnessKind

__all__ = [
    "check_init_refinement",
    "check_everywhere_refinement",
    "check_convergence_refinement",
    "check_everywhere_eventually_refinement",
    "compression_transitions",
    "expand_to_abstract_path",
]


def _schema_of(source: SystemOrProgram):
    return source.schema if isinstance(source, System) else source.schema()


def _select_refinement_engine(
    engine: str,
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    state_budget: Optional[int],
    instrumentation: Instrumentation,
    shared_meter: bool = False,
) -> str:
    """The refinement engine that actually runs (``engine.*`` counters).

    The packed and vector engines run refinement clauses
    *optimistically*: they can prove success, but a violation witness
    depends on tuple-set iteration order, so failures replay on the
    tuple engine.  Budgeted checks (and clauses sharing an enclosing
    meter) go straight to the tuple engine — the PARTIAL cut must
    follow its exploration order.  The vector engine additionally
    falls back to the *packed* engine when NumPy is missing or the
    program lies outside the statically lowerable fragment.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of 'packed', "
            f"'tuple', 'vector'"
        )
    if engine == "tuple":
        return "tuple"
    from ..kernel import packed_fallback_reason

    reason = packed_fallback_reason(concrete, abstract)
    if reason is None and shared_meter:
        reason = "a shared budget meter pins the check to the tuple engine"
    if reason is None and state_budget is not None:
        reason = (
            f"state budget {state_budget} is set; budgeted exploration "
            f"follows the tuple engine's order"
        )
    if reason is not None:
        instrumentation.count("engine.fallback.tuple", 1)
        instrumentation.event("engine.fallback", requested=engine, reason=reason)
        return "tuple"
    if engine == "vector":
        from ..kernel.vector import vector_fallback_reason

        vector_reason = vector_fallback_reason(concrete, abstract)
        if vector_reason is None:
            instrumentation.count("engine.vector", 1)
            instrumentation.event("engine.selected", engine="vector")
            return "vector"
        instrumentation.count("engine.fallback.packed", 1)
        instrumentation.event(
            "engine.fallback", requested="vector", reason=vector_reason
        )
    instrumentation.count("engine.packed", 1)
    instrumentation.event("engine.selected", engine="packed")
    return "packed"


_VIOLATION_REPLAY_REASON = (
    "violation found; replaying on the tuple engine for the witness"
)
_ALPHA_REPLAY_REASON = (
    "the abstraction maps some state outside the abstract schema; "
    "replaying on the tuple engine"
)


def _packed_violation_fallback(
    instrumentation: Instrumentation,
    reason: str = _VIOLATION_REPLAY_REASON,
    requested: str = "packed",
) -> None:
    """Record that a packed/vector attempt is handing the check back."""
    instrumentation.count("engine.fallback.tuple", 1)
    instrumentation.event("engine.fallback", requested=requested, reason=reason)


def _packed_refinement_context(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction],
):
    """Kernels and the dense image table for a packed refinement attempt.

    Returns ``None`` when some concrete state's image is not a valid
    abstract state — the tuple engine's membership tests then carry the
    semantics, so the attempt is abandoned before it starts.
    """
    from ..kernel import as_kernel, image_codes

    if alpha is None:
        _schema_of(concrete).require_compatible(
            _schema_of(abstract), "refinement check without an abstraction function"
        )
    kernel = as_kernel(concrete)
    abstract_kernel = kernel if abstract is concrete else as_kernel(abstract)
    image_of = image_codes(kernel.interner, abstract_kernel.interner, alpha)
    if any(code < 0 for code in image_of):
        return None
    return kernel, abstract_kernel, image_of


def _packed_init_clauses(
    kernel,
    abstract_kernel,
    image_of: List[int],
    stutter_insensitive: bool,
    open_systems: bool,
    instrumentation: Instrumentation,
) -> Optional[Tuple[int, int]]:
    """The ``[C (= A]_init`` clauses over packed codes.

    Returns ``(reachable_count, transitions_checked)`` when every
    clause holds, ``None`` on the first violation (the caller replays
    on the tuple engine for the witness).  Counters are *not* emitted
    here — the caller owns them, so a failed attempt emits nothing.
    """
    from ..kernel import count_flags, packed_reachable

    initial_images = set(abstract_kernel.initial_codes)
    for code in kernel.initial_codes:
        if image_of[code] not in initial_images:
            return None
    with instrumentation.span("refine.init_clause"):
        reachable = packed_reachable(
            kernel.successors, kernel.initial_codes, kernel.size
        )
    abstract_succ = abstract_kernel.successors
    checked = 0
    for code in range(kernel.size):
        if not reachable[code]:
            continue
        successors = kernel.successors(code)
        image = image_of[code]
        if not successors:
            if not open_systems and abstract_succ(image):
                return None
            continue
        for successor in successors:
            checked += 1
            target_image = image_of[successor]
            if target_image == image and stutter_insensitive:
                continue
            if target_image not in abstract_succ(image):
                return None
    return count_flags(reachable), checked


def _packed_path2(
    abstract_succ,
    abstract_size: int,
    source: int,
    target: int,
    memo: Dict[int, bytearray],
) -> bool:
    """Is there an abstract path of length >= 2 from source to target?

    A path of two or more transitions decomposes as two fixed steps
    followed by any walk: ``source -> mid -> start ~> target`` — the
    packed equivalent of ``shortest_path(..., min_length=2)``'s
    existence test, with inclusive-reachability flags memoized per
    ``start`` code.
    """
    from ..kernel import packed_reachable

    for mid in abstract_succ(source):
        for start in abstract_succ(mid):
            flags = memo.get(start)
            if flags is None:
                flags = packed_reachable(abstract_succ, (start,), abstract_size)
                memo[start] = flags
            if flags[target]:
                return True
    return False


def _dict_reachable(adjacency: Dict[int, List[int]], start: int) -> Set[int]:
    """Inclusive reachability over an explicit edge list (stutter graph)."""
    seen = {start}
    stack = [start]
    while stack:
        code = stack.pop()
        for successor in adjacency.get(code, ()):
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return seen


def _packed_init_attempt(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    open_systems: bool,
    instrumentation: Instrumentation,
    name: str,
) -> Optional[CheckResult]:
    """Packed ``[C (= A]_init``; ``None`` means replay on the tuple engine."""
    context = _packed_refinement_context(concrete, abstract, alpha)
    if context is None:
        _packed_violation_fallback(instrumentation, _ALPHA_REPLAY_REASON)
        return None
    kernel, abstract_kernel, image_of = context
    clauses = _packed_init_clauses(
        kernel, abstract_kernel, image_of, stutter_insensitive, open_systems,
        instrumentation,
    )
    if clauses is None:
        _packed_violation_fallback(instrumentation)
        return None
    reachable_count, checked = clauses
    instrumentation.count("refine.reachable.size", reachable_count)
    instrumentation.count("refine.init.transitions.checked", checked)
    return CheckResult(
        True,
        name,
        detail=f"{reachable_count} reachable states, {checked} transitions checked",
    )


def _packed_everywhere_attempt(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    open_systems: bool,
    instrumentation: Instrumentation,
    name: str,
) -> Optional[CheckResult]:
    """Packed ``[C (= A]``; ``None`` means replay on the tuple engine."""
    context = _packed_refinement_context(concrete, abstract, alpha)
    if context is None:
        _packed_violation_fallback(instrumentation, _ALPHA_REPLAY_REASON)
        return None
    kernel, abstract_kernel, image_of = context
    abstract_succ = abstract_kernel.successors
    checked = 0
    for code in range(kernel.size):
        successors = kernel.successors(code)
        image = image_of[code]
        if not successors:
            if not open_systems and abstract_succ(image):
                _packed_violation_fallback(instrumentation)
                return None
            continue
        for successor in successors:
            checked += 1
            target_image = image_of[successor]
            if target_image == image and stutter_insensitive:
                continue
            if target_image not in abstract_succ(image):
                _packed_violation_fallback(instrumentation)
                return None
    instrumentation.count("refine.everywhere.transitions.checked", checked)
    return CheckResult(True, name, detail=f"{checked} transitions checked")


def _packed_convergence_attempt(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    open_systems: bool,
    instrumentation: Instrumentation,
    name: str,
) -> Optional[CheckResult]:
    """Packed ``[C <= A]``; ``None`` means replay on the tuple engine.

    Runs all four clauses over packed codes and, on success, emits the
    tuple engine's exact counters and success detail.  Any violation
    abandons the attempt with *no* counters emitted (only spans, which
    measure work actually done) — the tuple replay then produces the
    byte-identical witness and counters.
    """
    from ..kernel import packed_reachable

    context = _packed_refinement_context(concrete, abstract, alpha)
    if context is None:
        _packed_violation_fallback(instrumentation, _ALPHA_REPLAY_REASON)
        return None
    kernel, abstract_kernel, image_of = context
    init_clauses = _packed_init_clauses(
        kernel, abstract_kernel, image_of, stutter_insensitive, open_systems,
        instrumentation,
    )
    if init_clauses is None:
        _packed_violation_fallback(instrumentation)
        return None
    reachable_count, init_checked = init_clauses

    size = kernel.size
    abstract_succ = abstract_kernel.successors
    exact = 0
    stutter_edges: List[Tuple[int, int]] = []
    compression_edges: List[Tuple[int, int]] = []
    path2_memo: Dict[int, bytearray] = {}
    holds = True
    progress = ProgressEmitter(instrumentation, "refine.transition_scan")
    with instrumentation.span("refine.transition_scan"):
        for code in range(size):
            if progress.enabled and code and code % 4096 == 0:
                progress.tick(0, size - code, code)
            image = image_of[code]
            for successor in kernel.successors(code):
                target_image = image_of[successor]
                if target_image == image:
                    if stutter_insensitive:
                        stutter_edges.append((code, successor))
                        continue
                    if image in abstract_succ(image):
                        exact += 1
                        continue
                    holds = False
                    break
                if target_image in abstract_succ(image):
                    exact += 1
                    continue
                if _packed_path2(
                    abstract_succ, abstract_kernel.size, image, target_image,
                    path2_memo,
                ):
                    compression_edges.append((code, successor))
                    continue
                holds = False
                break
            if not holds:
                break
    if not holds:
        _packed_violation_fallback(instrumentation)
        return None

    cycle_memo: Dict[int, bytearray] = {}
    with instrumentation.span("refine.cycle_clause"):
        for source, target in compression_edges:
            flags = cycle_memo.get(target)
            if flags is None:
                flags = packed_reachable(kernel.successors, (target,), size)
                cycle_memo[target] = flags
            if flags[source]:
                holds = False
                break
    if not holds:
        _packed_violation_fallback(instrumentation)
        return None

    if stutter_edges:
        adjacency: Dict[int, List[int]] = {}
        for source, target in stutter_edges:
            adjacency.setdefault(source, []).append(target)
        stutter_memo: Dict[int, Set[int]] = {}
        for source, target in stutter_edges:
            if source == target:
                continue
            seen = stutter_memo.get(target)
            if seen is None:
                seen = _dict_reachable(adjacency, target)
                stutter_memo[target] = seen
            if source in seen:
                _packed_violation_fallback(instrumentation)
                return None

    if not open_systems:
        for code in range(size):
            if not kernel.successors(code) and abstract_succ(image_of[code]):
                _packed_violation_fallback(instrumentation)
                return None

    instrumentation.count("refine.reachable.size", reachable_count)
    instrumentation.count("refine.init.transitions.checked", init_checked)
    instrumentation.count("refine.transitions.exact", exact)
    instrumentation.count("refine.transitions.compressing", len(compression_edges))
    instrumentation.count("refine.transitions.stuttering", len(stutter_edges))
    return CheckResult(
        True,
        name,
        detail=(
            f"{exact} exact transitions, {len(compression_edges)} compressions, "
            f"{len(stutter_edges)} stutters"
        ),
    )


def _vector_refinement_context(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction],
):
    """Kernels and the image array for a vector refinement attempt.

    The array analogue of :func:`_packed_refinement_context`: returns
    ``None`` when some concrete state's image is not a valid abstract
    state, abandoning the attempt to the tuple engine.
    """
    from ..kernel.vector import as_vector_kernel, vector_image_codes

    if alpha is None:
        _schema_of(concrete).require_compatible(
            _schema_of(abstract), "refinement check without an abstraction function"
        )
    kernel = as_vector_kernel(concrete)
    abstract_kernel = kernel if abstract is concrete else as_vector_kernel(abstract)
    image_of = vector_image_codes(kernel.interner, abstract_kernel.interner, alpha)
    if bool((image_of < 0).any()):
        return None
    return kernel, abstract_kernel, image_of


def _vector_init_clauses(
    kernel,
    abstract_kernel,
    image_of,
    stutter_insensitive: bool,
    open_systems: bool,
    instrumentation: Instrumentation,
) -> Optional[Tuple[int, int]]:
    """The ``[C (= A]_init`` clauses over code arrays.

    Returns ``(reachable_count, transitions_checked)`` when every
    clause holds, ``None`` on the first violation (the caller replays
    on the tuple engine for the witness).  As in the packed attempt,
    counters are *not* emitted here — a failed attempt emits nothing.
    ``transitions_checked`` matches the packed count exactly because
    ``succ_pairs`` deduplicates per (origin, target) pair, just as the
    packed kernel's sorted successor tuples do.
    """
    import numpy as np

    from ..kernel.vector import vector_reachable

    if not bool(
        np.isin(image_of[kernel.initial_array], abstract_kernel.initial_array).all()
    ):
        return None
    with instrumentation.span("refine.init_clause"):
        reachable = vector_reachable(
            kernel, kernel.initial_array, instrumentation=instrumentation
        )
    codes = np.nonzero(reachable)[0]
    origins, targets = kernel.succ_pairs(codes)
    sources = codes[origins]
    image_source = image_of[sources]
    image_target = image_of[targets]
    checked = int(origins.size)
    if stutter_insensitive:
        needs_edge = image_target != image_source
    else:
        needs_edge = np.ones(targets.shape, dtype=bool)
    if needs_edge.any() and not bool(
        abstract_kernel.has_edge(
            image_source[needs_edge], image_target[needs_edge]
        ).all()
    ):
        return None
    if not open_systems:
        has_successor = np.bincount(origins, minlength=codes.size) > 0
        terminal_images = image_of[codes[~has_successor]]
        if bool((~abstract_kernel.terminal_flags()[terminal_images]).any()):
            return None
    return int(codes.size), checked


def _vector_init_attempt(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    open_systems: bool,
    instrumentation: Instrumentation,
    name: str,
) -> Optional[CheckResult]:
    """Vector ``[C (= A]_init``; ``None`` means replay on the tuple engine."""
    context = _vector_refinement_context(concrete, abstract, alpha)
    if context is None:
        _packed_violation_fallback(
            instrumentation, _ALPHA_REPLAY_REASON, requested="vector"
        )
        return None
    kernel, abstract_kernel, image_of = context
    clauses = _vector_init_clauses(
        kernel, abstract_kernel, image_of, stutter_insensitive, open_systems,
        instrumentation,
    )
    if clauses is None:
        _packed_violation_fallback(instrumentation, requested="vector")
        return None
    reachable_count, checked = clauses
    instrumentation.count("refine.reachable.size", reachable_count)
    instrumentation.count("refine.init.transitions.checked", checked)
    return CheckResult(
        True,
        name,
        detail=f"{reachable_count} reachable states, {checked} transitions checked",
    )


def _vector_everywhere_attempt(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    open_systems: bool,
    instrumentation: Instrumentation,
    name: str,
) -> Optional[CheckResult]:
    """Vector ``[C (= A]``; ``None`` means replay on the tuple engine."""
    import numpy as np

    context = _vector_refinement_context(concrete, abstract, alpha)
    if context is None:
        _packed_violation_fallback(
            instrumentation, _ALPHA_REPLAY_REASON, requested="vector"
        )
        return None
    kernel, abstract_kernel, image_of = context
    codes = np.arange(kernel.size, dtype=np.int64)
    origins, targets = kernel.succ_pairs(codes)
    image_source = image_of[origins]
    image_target = image_of[targets]
    checked = int(origins.size)
    if stutter_insensitive:
        needs_edge = image_target != image_source
    else:
        needs_edge = np.ones(targets.shape, dtype=bool)
    if needs_edge.any() and not bool(
        abstract_kernel.has_edge(
            image_source[needs_edge], image_target[needs_edge]
        ).all()
    ):
        _packed_violation_fallback(instrumentation, requested="vector")
        return None
    if not open_systems:
        terminal_images = image_of[kernel.terminal_flags()]
        if bool((~abstract_kernel.terminal_flags()[terminal_images]).any()):
            _packed_violation_fallback(instrumentation, requested="vector")
            return None
    instrumentation.count("refine.everywhere.transitions.checked", checked)
    return CheckResult(True, name, detail=f"{checked} transitions checked")


def _vector_convergence_attempt(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    open_systems: bool,
    instrumentation: Instrumentation,
    name: str,
) -> Optional[CheckResult]:
    """Vector ``[C <= A]``; ``None`` means replay on the tuple engine.

    All four clauses over code arrays, success-only like the packed
    attempt: on success the tuple engine's exact counters and detail
    are emitted; any violation abandons the attempt with no counters
    (only spans, which measure work actually done) and the tuple
    replay produces the byte-identical witness.
    """
    import numpy as np

    from ..kernel.vector import vector_reachable
    from ..kernel.vector.kernel import _unique_sorted

    context = _vector_refinement_context(concrete, abstract, alpha)
    if context is None:
        _packed_violation_fallback(
            instrumentation, _ALPHA_REPLAY_REASON, requested="vector"
        )
        return None
    kernel, abstract_kernel, image_of = context
    init_clauses = _vector_init_clauses(
        kernel, abstract_kernel, image_of, stutter_insensitive, open_systems,
        instrumentation,
    )
    if init_clauses is None:
        _packed_violation_fallback(instrumentation, requested="vector")
        return None
    reachable_count, init_checked = init_clauses

    with instrumentation.span("refine.transition_scan"):
        codes = np.arange(kernel.size, dtype=np.int64)
        sources, targets = kernel.succ_pairs(codes)
        image_source = image_of[sources]
        image_target = image_of[targets]
        same_image = image_target == image_source
        abstract_edge = abstract_kernel.has_edge(image_source, image_target)
        if stutter_insensitive:
            stutter_mask = same_image
        else:
            stutter_mask = np.zeros(targets.shape, dtype=bool)
        exact = int((~stutter_mask & abstract_edge).sum())
        rest = ~stutter_mask & ~abstract_edge
        rest_sources = sources[rest]
        rest_targets = targets[rest]
        rest_image_source = image_source[rest]
        rest_image_target = image_target[rest]
        # A same-image step with no abstract self-loop (and stuttering
        # not allowed) is an immediate violation, never a compression.
        if bool((rest_image_source == rest_image_target).any()):
            _packed_violation_fallback(instrumentation, requested="vector")
            return None
        # Clause 2 for the rest: the image must be realizable as an
        # abstract path of length >= 2 — two fixed steps then any walk.
        # One reachability per distinct source image, from the union of
        # its two-step frontier (the union of the packed attempt's
        # per-start memoized flags).
        for image in _unique_sorted(rest_image_source):
            _, mids = abstract_kernel.succ_pairs(image.reshape(1))
            starts = np.empty(0, dtype=np.int64)
            if mids.size:
                _, starts = abstract_kernel.succ_pairs(_unique_sorted(mids))
                starts = _unique_sorted(starts)
            if starts.size == 0:
                _packed_violation_fallback(instrumentation, requested="vector")
                return None
            reach = vector_reachable(abstract_kernel, starts)
            if not bool(reach[rest_image_target[rest_image_source == image]].all()):
                _packed_violation_fallback(instrumentation, requested="vector")
                return None

    # Clause 3: no compression on a cycle of C — one concrete
    # reachability per distinct compression target.
    with instrumentation.span("refine.cycle_clause"):
        for target in _unique_sorted(rest_targets):
            reach = vector_reachable(kernel, target.reshape(1))
            if bool(reach[rest_sources[rest_targets == target]].any()):
                _packed_violation_fallback(instrumentation, requested="vector")
                return None

    # Invisible divergence: no cycle made purely of stutter edges
    # (literal self-loops excepted, as in the tuple engine).
    stutter_count = int(stutter_mask.sum())
    if stutter_count:
        stutter_sources = sources[stutter_mask].tolist()
        stutter_targets = targets[stutter_mask].tolist()
        adjacency: Dict[int, List[int]] = {}
        for source, target in zip(stutter_sources, stutter_targets):
            adjacency.setdefault(source, []).append(target)
        stutter_memo: Dict[int, Set[int]] = {}
        for source, target in zip(stutter_sources, stutter_targets):
            if source == target:
                continue
            seen = stutter_memo.get(target)
            if seen is None:
                seen = _dict_reachable(adjacency, target)
                stutter_memo[target] = seen
            if source in seen:
                _packed_violation_fallback(instrumentation, requested="vector")
                return None

    if not open_systems:
        terminal_images = image_of[kernel.terminal_flags()]
        if bool((~abstract_kernel.terminal_flags()[terminal_images]).any()):
            _packed_violation_fallback(instrumentation, requested="vector")
            return None

    instrumentation.count("refine.reachable.size", reachable_count)
    instrumentation.count("refine.init.transitions.checked", init_checked)
    instrumentation.count("refine.transitions.exact", exact)
    instrumentation.count("refine.transitions.compressing", int(rest_sources.size))
    instrumentation.count("refine.transitions.stuttering", stutter_count)
    return CheckResult(
        True,
        name,
        detail=(
            f"{exact} exact transitions, {int(rest_sources.size)} compressions, "
            f"{stutter_count} stutters"
        ),
    )


def _resolve_alpha(
    concrete: System, abstract: System, alpha: Optional[AbstractionFunction]
) -> AbstractionFunction:
    """Default to the identity abstraction when schemas coincide."""
    if alpha is not None:
        return alpha
    concrete.schema.require_compatible(
        abstract.schema, "refinement check without an abstraction function"
    )
    return identity_abstraction(concrete.schema)


def _partial_result(
    name: str, exc: BudgetExceeded, instrumentation: Instrumentation
) -> CheckResult:
    """The ``PARTIAL`` verdict for a budget-capped refinement check."""
    instrumentation.event(
        "refine.partial",
        phase=exc.partial.phase,
        explored=exc.partial.explored,
        frontier=exc.partial.frontier,
        budget=exc.partial.budget,
    )
    return CheckResult(False, name, partial=exc.partial)


def _reachable_metered(system: System, meter: BudgetMeter, phase: str):
    """``system.reachable()`` with per-state budget charging."""
    if meter.budget is None:
        return system.reachable()
    seen = set(system.initial)
    frontier = list(seen)
    while frontier:
        meter.charge(phase, frontier=len(frontier))
        state = frontier.pop()
        for successor in system.successors(state):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return frozenset(seen)


def check_init_refinement(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction] = None,
    stutter_insensitive: bool = False,
    open_systems: bool = False,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    state_budget: Optional[int] = None,
    meter: Optional[BudgetMeter] = None,
    workers: int = 1,
    engine: str = "tuple",
) -> CheckResult:
    """Decide ``[C subseteq A]_init``.

    Every computation of ``C`` starting from an initial state must be
    (map to) a computation of ``A``.  Decided transition-locally over
    the reachable part of ``C``: reachable transitions must map to
    transitions of ``A``, initial states must map into ``A``'s initial
    states, and reachable terminal states must map to terminal states
    (maximality).

    Args:
        concrete: the implementation ``C``.
        abstract: the specification ``A``.
        alpha: abstraction function; identity if omitted (schemas must
            then match).
        stutter_insensitive: permit concrete transitions whose image
            does not move the abstract state.
        open_systems: treat both systems as *open* (sets of transitions
            rather than complete automata): finite paths need not be
            maximal, so the terminal-state clauses are skipped.  This
            is the right reading for the paper's wrappers, whose
            standalone automata are disabled almost everywhere.
        instrumentation: observability sink (reachable-state and
            transition counts); the null default is free.
        state_budget: optional cap on states/transitions enumerated;
            past it the result is a structured ``PARTIAL`` verdict
            instead of a memory blow-up.
        meter: a shared :class:`~repro.checker.budget.BudgetMeter`
            (used by enclosing checks to pool one budget across
            clauses); overrides ``state_budget`` and lets
            :class:`~repro.checker.budget.BudgetExceeded` propagate to
            the owner.
        workers: worker processes for the reachability phase (sharded
            BFS above 1); the clause scans and witnesses are identical
            for every worker count.
        engine: ``"packed"`` proves the clauses over dense state codes
            (bitset reachability, no transition table); any violation,
            unpackable schema, or budget replays on the tuple engine,
            so verdicts and witnesses are identical either way.
    """
    own_meter = meter is None
    active = meter if meter is not None else BudgetMeter(state_budget)
    name = f"[{_source_name(concrete)} (= {_source_name(abstract)}]_init"
    selected = _select_refinement_engine(
        engine, concrete, abstract, state_budget, instrumentation,
        shared_meter=meter is not None,
    )
    if selected != "tuple":
        attempt = (
            _vector_init_attempt if selected == "vector" else _packed_init_attempt
        )
        result = attempt(
            concrete, abstract, alpha, stutter_insensitive, open_systems,
            instrumentation, name,
        )
        if result is not None:
            return result
    concrete_system = _as_system(concrete)
    abstract_system = (
        concrete_system if abstract is concrete else _as_system(abstract)
    )
    try:
        return _decide_init_refinement(
            concrete_system, abstract_system, alpha, stutter_insensitive,
            open_systems, instrumentation, active, name, workers,
        )
    except BudgetExceeded as exc:
        if not own_meter:
            raise
        return _partial_result(name, exc, instrumentation)


def _decide_init_refinement(
    concrete: System,
    abstract: System,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    open_systems: bool,
    instrumentation: Instrumentation,
    meter: BudgetMeter,
    name: str,
    workers: int = 1,
) -> CheckResult:
    """The clauses of :func:`check_init_refinement`, budget-metered."""
    mapping = _resolve_alpha(concrete, abstract, alpha)
    for state in concrete.initial:
        image = mapping(state)
        if image not in abstract.initial:
            return CheckResult(
                False,
                name,
                Witness(
                    WitnessKind.ILLEGAL_TRANSITION,
                    f"initial state maps to {image!r}, not initial in {abstract.name}",
                    (state,),
                    concrete.schema,
                ),
            )
    with instrumentation.span("refine.init_clause"):
        if workers > 1:
            from ..parallel import parallel_reachable

            reachable = parallel_reachable(
                concrete,
                concrete.initial,
                workers,
                meter=meter if meter.budget is not None else None,
                phase="refine.init.reachable",
                instrumentation=instrumentation,
            )
        else:
            reachable = _reachable_metered(
                concrete, meter, "refine.init.reachable"
            )
    instrumentation.count("refine.reachable.size", len(reachable))
    checked = 0
    # Canonical scan order: the reachable set may have been assembled
    # sequentially or shard-parallel; sorting makes the first witness
    # (and so the whole verdict) independent of how it was built.
    for state in sorted(reachable, key=repr):
        image = mapping(state)
        successors = concrete.successors(state)
        if not successors:
            if not open_systems and not abstract.is_terminal(image):
                return CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.BAD_TERMINAL,
                        "reachable terminal state of the concrete maps to a "
                        "non-terminal abstract state (maximality fails)",
                        (state,),
                        concrete.schema,
                    ),
                )
            continue
        for successor in successors:
            checked += 1
            meter.charge("refine.init.transitions", unit="transitions")
            target_image = mapping(successor)
            if target_image == image and stutter_insensitive:
                continue
            if not abstract.has_transition(image, target_image):
                return CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.ILLEGAL_TRANSITION,
                        f"reachable transition has no image in {abstract.name}: "
                        f"{image!r} -> {target_image!r}",
                        (state, successor),
                        concrete.schema,
                    ),
                )
    instrumentation.count("refine.init.transitions.checked", checked)
    return CheckResult(
        True,
        name,
        detail=f"{len(reachable)} reachable states, {checked} transitions checked",
    )


def check_everywhere_refinement(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction] = None,
    stutter_insensitive: bool = False,
    open_systems: bool = False,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    state_budget: Optional[int] = None,
    meter: Optional[BudgetMeter] = None,
    engine: str = "tuple",
) -> CheckResult:
    """Decide ``[C subseteq A]`` — every computation of ``C`` is one of ``A``.

    Same conditions as :func:`check_init_refinement` but quantified
    over the whole state space rather than the reachable part, and
    without the initial-state clause (everywhere refinement constrains
    behaviour, not initial sets).  ``open_systems`` skips the
    maximality clause, as for :func:`check_init_refinement`.
    ``state_budget``/``meter``/``engine`` behave as for
    :func:`check_init_refinement`.
    """
    own_meter = meter is None
    active = meter if meter is not None else BudgetMeter(state_budget)
    name = f"[{_source_name(concrete)} (= {_source_name(abstract)}]"
    selected = _select_refinement_engine(
        engine, concrete, abstract, state_budget, instrumentation,
        shared_meter=meter is not None,
    )
    if selected != "tuple":
        attempt = (
            _vector_everywhere_attempt
            if selected == "vector"
            else _packed_everywhere_attempt
        )
        result = attempt(
            concrete, abstract, alpha, stutter_insensitive, open_systems,
            instrumentation, name,
        )
        if result is not None:
            return result
    concrete_system = _as_system(concrete)
    abstract_system = (
        concrete_system if abstract is concrete else _as_system(abstract)
    )
    try:
        return _decide_everywhere_refinement(
            concrete_system, abstract_system, alpha, stutter_insensitive,
            open_systems, instrumentation, active, name,
        )
    except BudgetExceeded as exc:
        if not own_meter:
            raise
        return _partial_result(name, exc, instrumentation)


def _decide_everywhere_refinement(
    concrete: System,
    abstract: System,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    open_systems: bool,
    instrumentation: Instrumentation,
    meter: BudgetMeter,
    name: str,
) -> CheckResult:
    """The scan of :func:`check_everywhere_refinement`, budget-metered."""
    mapping = _resolve_alpha(concrete, abstract, alpha)
    checked = 0
    for state in meter.metered(concrete.schema.states(), "refine.everywhere"):
        image = mapping(state)
        successors = concrete.successors(state)
        if not successors:
            if not open_systems and not abstract.is_terminal(image):
                return CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.BAD_TERMINAL,
                        "terminal state of the concrete maps to a non-terminal "
                        "abstract state (maximality fails)",
                        (state,),
                        concrete.schema,
                    ),
                )
            continue
        for successor in successors:
            checked += 1
            target_image = mapping(successor)
            if target_image == image and stutter_insensitive:
                continue
            if not abstract.has_transition(image, target_image):
                return CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.ILLEGAL_TRANSITION,
                        f"transition has no image in {abstract.name}: "
                        f"{image!r} -> {target_image!r}",
                        (state, successor),
                        concrete.schema,
                    ),
                )
    instrumentation.count("refine.everywhere.transitions.checked", checked)
    return CheckResult(True, name, detail=f"{checked} transitions checked")


def compression_transitions(
    concrete: System,
    abstract: System,
    alpha: Optional[AbstractionFunction] = None,
    stutter_insensitive: bool = False,
) -> List[Transition]:
    """All transitions of ``C`` that compress a multi-step path of ``A``.

    A transition compresses when its abstract image is not a single
    ``A``-transition but is realizable as an ``A``-path of length two
    or more.  Raises nothing on unmatched transitions — those are the
    business of :func:`check_convergence_refinement`; unmatched
    transitions are simply skipped here.
    """
    mapping = _resolve_alpha(concrete, abstract, alpha)
    result: List[Transition] = []
    for source, target in concrete.transitions():
        image_source, image_target = mapping(source), mapping(target)
        if image_source == image_target and stutter_insensitive:
            continue
        if abstract.has_transition(image_source, image_target):
            continue
        if shortest_path(abstract, image_source, image_target, min_length=2) is not None:
            result.append((source, target))
    return result


def check_convergence_refinement(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction] = None,
    stutter_insensitive: bool = False,
    open_systems: bool = False,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    state_budget: Optional[int] = None,
    workers: int = 1,
    engine: str = "tuple",
) -> CheckResult:
    """Decide ``[C <= A]`` — convergence refinement (paper, Section 2).

    See the module docstring for the four clauses and the argument
    that they are sound and complete on finite systems.

    Args:
        concrete: the implementation ``C``.
        abstract: the specification ``A``.
        alpha: abstraction function from ``C``'s space onto ``A``'s;
            identity when omitted.
        stutter_insensitive: extend the relation modulo stuttering
            (needed for the paper's ``C3``; see Section 6).
        open_systems: treat both operands as open systems (wrappers):
            skip the maximality/terminal clauses.
        instrumentation: observability sink (per-clause timings,
            exact/compression/stutter counts, the verdict); the null
            default is free.
        state_budget: one budget pooled across every clause; past it
            the result is a structured ``PARTIAL`` verdict instead of
            a memory blow-up.
        workers: worker processes for the reachability phase and the
            transition scan (sharded above 1); the cycle clauses and
            witness search run sequentially either way, so the verdict
            — witness and rendering included — is identical for every
            worker count.  Degrades to 1 where fork-based pools are
            unavailable.
        engine: ``"packed"`` proves all four clauses over dense state
            codes (programs lower straight to a successor kernel, no
            transition table); any violation, unpackable schema, or
            state budget replays on the tuple engine, so verdicts,
            witnesses, and counters are identical either way.

    Returns:
        :class:`CheckResult` whose detail reports how many transitions
        were exact, compressing, and stuttering.
    """
    selected = _select_refinement_engine(
        engine, concrete, abstract, state_budget, instrumentation
    )
    if workers > 1:
        from ..parallel import resolve_workers

        workers = resolve_workers(workers)
        if workers > 1:
            instrumentation.count("parallel.workers", workers)
    meter = BudgetMeter(state_budget)
    name = f"[{_source_name(concrete)} <= {_source_name(abstract)}]"
    with instrumentation.span("refine.total"):
        try:
            result = None
            if selected == "vector":
                result = _vector_convergence_attempt(
                    concrete, abstract, alpha, stutter_insensitive,
                    open_systems, instrumentation, name,
                )
            elif selected == "packed":
                result = _packed_convergence_attempt(
                    concrete, abstract, alpha, stutter_insensitive,
                    open_systems, instrumentation, name,
                )
            if result is None:
                concrete_system = _as_system(concrete)
                abstract_system = (
                    concrete_system
                    if abstract is concrete
                    else _as_system(abstract)
                )
                result = _decide_convergence_refinement(
                    concrete_system,
                    abstract_system,
                    alpha,
                    stutter_insensitive,
                    open_systems,
                    instrumentation,
                    meter,
                    name,
                    workers,
                )
        except BudgetExceeded as exc:
            return _partial_result(name, exc, instrumentation)
    witness = result.witness
    instrumentation.event(
        "refine.verdict",
        check=result.check,
        holds=result.holds,
        witness=witness.kind.name if witness is not None else None,
    )
    return result


def _decide_convergence_refinement(
    concrete: System,
    abstract: System,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    open_systems: bool,
    instrumentation: Instrumentation,
    meter: BudgetMeter,
    name: str,
    workers: int = 1,
) -> CheckResult:
    """The clauses of :func:`check_convergence_refinement`, instrumented."""
    mapping = _resolve_alpha(concrete, abstract, alpha)

    init_part = check_init_refinement(
        concrete,
        abstract,
        mapping,
        stutter_insensitive=stutter_insensitive,
        open_systems=open_systems,
        instrumentation=instrumentation,
        meter=meter,
        workers=workers,
    )
    if not init_part.holds:
        return CheckResult(False, name, init_part.witness, detail="init-refinement clause failed")

    exact = 0
    stutters: List[Transition] = []
    compressions: List[Transition] = []
    if workers > 1:
        from ..parallel import parallel_transition_scan

        with instrumentation.span("refine.transition_scan"):
            scan = parallel_transition_scan(
                list(concrete.transitions()),
                abstract,
                mapping,
                stutter_insensitive,
                workers,
                meter=meter if meter.budget is not None else None,
                phase="refine.transition_scan",
                instrumentation=instrumentation,
            )
        if scan.violation is not None:
            kind, source, target = scan.violation
            image_source, image_target = mapping(source), mapping(target)
            if kind == "stutter-no-self-loop":
                message = (
                    "stuttering transition but the abstract has no self-loop at "
                    f"{image_source!r} (rerun with stutter_insensitive=True to "
                    "compare modulo stuttering)"
                )
            else:
                message = (
                    f"no path of {abstract.name} realizes the image "
                    f"{image_source!r} -> {image_target!r}"
                )
            return CheckResult(
                False,
                name,
                Witness(
                    WitnessKind.NO_ABSTRACT_PATH,
                    message,
                    (source, target),
                    concrete.schema,
                ),
            )
        exact = scan.exact
        stutters = scan.stutters
        compressions = scan.compressions
    else:
        progress = ProgressEmitter(instrumentation, "refine.transition_scan")
        scanned = 0
        with instrumentation.span("refine.transition_scan"):
            for source, target in meter.metered(
                concrete.transitions(), "refine.transition_scan", unit="transitions"
            ):
                scanned += 1
                if progress.enabled and scanned % 4096 == 0:
                    progress.tick(0, 0, scanned)
                image_source, image_target = mapping(source), mapping(target)
                if image_source == image_target:
                    if stutter_insensitive:
                        stutters.append((source, target))
                        continue
                    if abstract.has_transition(image_source, image_target):
                        exact += 1
                        continue
                    return CheckResult(
                        False,
                        name,
                        Witness(
                            WitnessKind.NO_ABSTRACT_PATH,
                            "stuttering transition but the abstract has no self-loop at "
                            f"{image_source!r} (rerun with stutter_insensitive=True to "
                            "compare modulo stuttering)",
                            (source, target),
                            concrete.schema,
                        ),
                    )
                if abstract.has_transition(image_source, image_target):
                    exact += 1
                    continue
                if shortest_path(abstract, image_source, image_target, min_length=2) is None:
                    return CheckResult(
                        False,
                        name,
                        Witness(
                            WitnessKind.NO_ABSTRACT_PATH,
                            f"no path of {abstract.name} realizes the image "
                            f"{image_source!r} -> {image_target!r}",
                            (source, target),
                            concrete.schema,
                        ),
                    )
                compressions.append((source, target))
    instrumentation.count("refine.transitions.exact", exact)
    instrumentation.count("refine.transitions.compressing", len(compressions))
    instrumentation.count("refine.transitions.stuttering", len(stutters))

    # Clause 3: finitely many omissions — no compression on a cycle of C.
    with instrumentation.span("refine.cycle_clause"):
        for source, target in compressions:
            if source in concrete.reachable_from([target]):
                return CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.COMPRESSION_ON_CYCLE,
                        "compressing transition lies on a cycle of the concrete "
                        "system: a computation around the cycle omits abstract "
                        "states infinitely often",
                        (source, target),
                        concrete.schema,
                    ),
                )

    # Invisible divergence: a cycle made purely of stutters would let C
    # loop forever while the matched abstract computation cannot move.
    if stutters:
        stutter_only = System(
            concrete.schema,
            stutters,
            initial=(),
            name=f"{concrete.name}|stutter-edges",
        )
        visible_self_loops = {
            (source, target)
            for source, target in stutters
            if source == target
        }
        for source, target in stutters:
            if (source, target) in visible_self_loops:
                # A literal self-loop is a fairness artefact; the caller
                # models weak fairness by dropping self-loops up front.
                continue
            if source in stutter_only.reachable_from([target]):
                return CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.COMPRESSION_ON_CYCLE,
                        "cycle of abstract-invisible transitions: the concrete "
                        "can diverge without the abstract moving",
                        (source, target),
                        concrete.schema,
                    ),
                )

    # Clause 4: terminal states must map to terminal states (closed
    # systems only; open systems have no maximality requirement).
    terminal_scan = (
        meter.metered(concrete.schema.states(), "refine.terminal_scan")
        if not open_systems
        else ()
    )
    for state in terminal_scan:
        if concrete.is_terminal(state) and not abstract.is_terminal(mapping(state)):
            return CheckResult(
                False,
                name,
                Witness(
                    WitnessKind.BAD_TERMINAL,
                    "terminal state of the concrete maps to a non-terminal "
                    "abstract state: the matched abstract computation would "
                    "not be maximal",
                    (state,),
                    concrete.schema,
                ),
            )

    return CheckResult(
        True,
        name,
        detail=(
            f"{exact} exact transitions, {len(compressions)} compressions, "
            f"{len(stutters)} stutters"
        ),
    )


def expand_to_abstract_path(
    concrete_sequence: Tuple[State, ...],
    abstract: System,
    alpha: Optional[AbstractionFunction] = None,
    stutter_insensitive: bool = False,
) -> Optional[Tuple[State, ...]]:
    """Construct the abstract computation a concrete computation tracks.

    Splices the per-transition abstract paths together: each concrete
    step contributes either the matching single abstract transition or
    the shortest multi-step abstract path it compresses.  This is the
    constructive content of the completeness argument and is used to
    reproduce the paper's Section 4.2 compression diagram.

    Args:
        concrete_sequence: a computation (or prefix) of the concrete
            system, as produced by :meth:`System.computations`.
        abstract: the specification automaton.
        alpha: abstraction function; identity over the abstract schema
            when omitted (the sequence is then assumed to be already in
            abstract coordinates).
        stutter_insensitive: skip concrete steps whose image stutters.

    Returns:
        The abstract state sequence, or ``None`` when some concrete
        step has no abstract realization (i.e. the systems are not in
        a convergence-refinement relation to begin with).
    """
    if not concrete_sequence:
        return None
    mapping = alpha if alpha is not None else identity_abstraction(abstract.schema)
    result: List[State] = [mapping(concrete_sequence[0])]
    for source, target in zip(concrete_sequence, concrete_sequence[1:]):
        image_source, image_target = mapping(source), mapping(target)
        if image_source == image_target:
            if stutter_insensitive:
                continue
            if abstract.has_transition(image_source, image_target):
                result.append(image_target)
                continue
            return None
        if abstract.has_transition(image_source, image_target):
            result.append(image_target)
            continue
        path = shortest_path(abstract, image_source, image_target, min_length=2)
        if path is None:
            return None
        result.extend(path[1:])
    return tuple(result)


def check_everywhere_eventually_refinement(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction] = None,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    state_budget: Optional[int] = None,
    engine: str = "tuple",
) -> CheckResult:
    """Decide the related-work relation of the paper's Section 7.

    ``C`` is an *everywhere-eventually refinement* of ``A`` iff
    ``[C (= A]_init`` and every computation of ``C`` is an arbitrary
    finite prefix followed by a computation of ``A``.  The second
    clause is exactly "``C`` is stabilizing to the automaton ``A``
    with *every* state initial" — which reduces the check to the
    stabilization fixpoint with ``I_A = Sigma_A``.

    The relation is strictly more permissive than convergence
    refinement: ``C`` may converge along recovery paths ``A`` never
    uses (the paper's odd-states vs even-states example, reproduced in
    :mod:`repro.counterexamples.recovery_paths`).
    """
    from .convergence import check_stabilization

    if alpha is None:
        _schema_of(concrete).require_compatible(
            _schema_of(abstract), "refinement check without an abstraction function"
        )
        mapping = identity_abstraction(_schema_of(concrete))
    else:
        mapping = alpha
    name = f"[{_source_name(concrete)} ee-refines {_source_name(abstract)}]"
    init_part = check_init_refinement(
        concrete, abstract, mapping, state_budget=state_budget, engine=engine
    )
    if init_part.is_partial:
        return CheckResult(False, name, partial=init_part.partial)
    if not init_part.holds:
        return CheckResult(False, name, init_part.witness,
                           detail="init-refinement clause failed")
    abstract_system = _as_system(abstract)
    liberal = abstract_system.with_initial(
        abstract_system.schema.states(), name=f"{abstract_system.name}|all-initial"
    )
    suffix_part = check_stabilization(
        concrete, liberal, mapping, compute_steps=False,
        instrumentation=instrumentation, state_budget=state_budget,
        engine=engine,
    )
    return CheckResult(
        suffix_part.result.holds,
        name,
        suffix_part.result.witness,
        detail=suffix_part.result.detail,
        partial=suffix_part.result.partial,
    )
