"""State budgets and partial verdicts for graceful checker degradation.

The exact decision procedures enumerate state spaces whose size is
exponential in the ring size.  On a campaign sweep that is a
liability: one oversized instance would exhaust memory and take the
whole campaign down with it.  A :class:`StateBudget` caps how many
states a procedure may enumerate; when the cap is hit the procedure
returns a structured ``PARTIAL`` verdict — a
:class:`PartialExploration` attached to the :class:`~repro.checker.
witnesses.CheckResult` — instead of raising ``MemoryError`` (or
grinding on until the OOM killer arrives).

A partial verdict is *not* a failure: it reports exactly how far the
exploration got (states explored, size of the unprocessed frontier,
the phase that ran out) so a caller can retry with a larger budget or
fall back to simulation-based evidence.  ``CheckResult.holds`` is
``False`` for partial results — soundness first: an unfinished check
affirms nothing — but ``CheckResult.is_partial`` distinguishes
"budget ran out" from "a counterexample exists".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, TypeVar

__all__ = ["PartialExploration", "BudgetExceeded", "BudgetMeter"]

T = TypeVar("T")


@dataclass(frozen=True)
class PartialExploration:
    """How far a budget-capped exploration got before the cap hit.

    Attributes:
        explored: states (or transitions, per ``unit``) processed.
        frontier: size of the known-but-unprocessed frontier at the
            moment the budget ran out (0 when the procedure does not
            maintain an explicit frontier).
        budget: the cap that was in force.
        phase: which phase of the procedure was interrupted (e.g.
            ``"check.core"``, ``"refine.transition_scan"``).
        unit: what ``explored`` counts (``"states"`` by default).
    """

    explored: int
    frontier: int
    budget: int
    phase: str
    unit: str = "states"

    def format(self) -> str:
        """One-line human rendering used inside verdict output."""
        return (
            f"budget of {self.budget} {self.unit} exhausted in {self.phase}: "
            f"{self.explored} explored, frontier {self.frontier}"
        )


class BudgetExceeded(Exception):
    """Internal control-flow signal: an enumeration hit its budget.

    Carries the :class:`PartialExploration` describing the cut-off.
    Never escapes the public checker entry points — they catch it and
    return a ``PARTIAL`` :class:`~repro.checker.witnesses.CheckResult`.
    """

    def __init__(self, partial: PartialExploration):
        super().__init__(partial.format())
        self.partial = partial


class BudgetMeter:
    """A mutable counter enforcing a state budget across phases.

    Args:
        budget: maximum number of states to enumerate, or ``None`` for
            unlimited (every method is then a cheap no-op check).

    Raises:
        ValueError: when ``budget`` is zero or negative.
    """

    __slots__ = ("budget", "explored")

    def __init__(self, budget: Optional[int]):
        if budget is not None and budget <= 0:
            raise ValueError(f"state budget must be positive, got {budget}")
        self.budget = budget
        self.explored = 0

    def charge(
        self, phase: str, count: int = 1, frontier: int = 0, unit: str = "states"
    ) -> None:
        """Consume ``count`` units; raise :class:`BudgetExceeded` past the cap."""
        self.explored += count
        if self.budget is not None and self.explored > self.budget:
            raise BudgetExceeded(
                PartialExploration(
                    explored=self.explored - count,
                    frontier=frontier,
                    budget=self.budget,
                    phase=phase,
                    unit=unit,
                )
            )

    def metered(
        self, items: Iterable[T], phase: str, unit: str = "states"
    ) -> Iterator[T]:
        """Yield from ``items``, charging one unit per element."""
        for item in items:
            self.charge(phase, unit=unit)
            yield item
