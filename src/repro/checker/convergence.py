"""Stabilization checking (paper, Section 2).

The paper defines::

    C is stabilizing to A iff every computation of C has a suffix
    that is a suffix of some computation of A that starts at an
    initial state of A.

The decision procedure used here is the classical closure-and-
convergence argument, made exact for finite systems:

1. Compute ``L_A``, the states of ``A`` reachable from ``A``'s initial
   states — the *legitimate* abstract states.
2. Compute the *greatest* set ``G`` of concrete states from which
   ``C`` forever behaves like ``A``: start from all states whose
   abstraction lies in ``L_A`` and repeatedly remove states with an
   escaping transition (target outside ``G``, or image step outside
   ``T_A``) or a premature deadlock (terminal in ``C`` but not in
   ``A``).  ``G`` is a simulation-style fixpoint; from any state of
   ``G`` every computation of ``C`` maps to the continuation of some
   computation of ``A`` that passed through an initial state.
3. Check *convergence*: outside ``G`` there must be neither a cycle
   (a computation could circulate forever without acquiring a
   legitimate suffix) nor a terminal state (a computation could end
   before acquiring one).

The criterion is sound: (2) gives closure and suffix-matching, (3)
forces every maximal computation into ``G``.  It is also the standard
*complete* criterion for the protocol instances verified here (their
legitimate behaviour is exactly the reachable behaviour of the
specification); the one semantic knob is fairness, exposed as
``fairness='weak'`` which removes self-loops before the cycle
analysis — required by systems with stuttering actions such as the
paper's ``C3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..core.abstraction import AbstractionFunction, identity_abstraction
from ..core.state import State
from ..core.system import System
from ..gcl.program import Program
from ..kernel.shared.budget import (
    active_memory_context as _active_memory_context,
)
from ..obs import NULL_INSTRUMENTATION, Instrumentation, ProgressEmitter
from ..resilience.degrade import DEGRADATION_CHAIN, RECOVERABLE_ENGINE_FAULTS
from .budget import BudgetExceeded, BudgetMeter
from .fairness import find_fair_trap
from .graph import (
    find_cycle_within,
    has_cycle_within,
    states_on_cycles,
    terminal_states_within,
)
from .witnesses import CheckResult, Witness, WitnessKind

__all__ = [
    "StabilizationResult",
    "legitimate_abstract_states",
    "behavioural_core",
    "check_stabilization",
    "check_self_stabilization",
    "worst_case_convergence_steps",
    "worst_case_schedule",
    "convergence_profile",
]

#: Checker entry points accept a compiled system or a raw program; the
#: packed engine lowers programs directly, the tuple engine compiles.
SystemOrProgram = Union[System, Program]

ENGINES = ("packed", "tuple", "vector", "shared")


def _as_system(source: SystemOrProgram) -> System:
    """The tuple-engine view of a check source."""
    return source if isinstance(source, System) else source.compile()


def _source_name(source: SystemOrProgram) -> str:
    return source.name


def _select_engine(
    engine: str,
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    state_budget: Optional[int],
    instrumentation: Instrumentation,
    alpha: Optional[AbstractionFunction] = None,
) -> str:
    """The engine that actually runs, emitting the ``engine.*`` counters.

    The packed and vector engines are refused (with an automatic
    fallback to the tuple engine) when a schema is too large to
    intern, or when a state budget is tight enough that the tuple
    engine could cut the check PARTIAL — the budgeted exploration
    order is the tuple engine's, so PARTIAL verdicts must come from it
    byte-for-byte.  The vector engine additionally falls back to the
    *packed* engine when NumPy is missing or the program lies outside
    the statically lowerable fragment (non-central daemons,
    non-int/bool domains, dynamically typed expressions).

    The shared engine is tried first when explicitly requested
    (``engine="shared"``) or when a memory context
    (:func:`repro.kernel.shared.using_memory_budget`) is active and
    the vector engine was requested — and, crucially, *before* the
    packed-interner gate: the packed ceiling is exactly the limit the
    streamed engine exists to bypass, so a mega-state space must not
    bounce to the tuple engine just because it cannot intern.  Budgeted
    checks still honour the tuple-replay floor.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of 'packed', "
            f"'tuple', 'vector', 'shared'"
        )
    if engine == "tuple":
        return "tuple"
    from ..kernel import packed_fallback_reason, source_schema

    shared_eligible = engine == "shared" or (
        engine == "vector" and _active_memory_context() is not None
    )
    if shared_eligible:
        from ..kernel.shared import shared_fallback_reason

        shared_reason = shared_fallback_reason(concrete, abstract, alpha)
        if shared_reason is None and state_budget is not None:
            floor = (
                2 * source_schema(abstract).size()
                + 2 * source_schema(concrete).size()
            )
            if state_budget < floor:
                shared_reason = (
                    f"state budget {state_budget} is below the engine "
                    f"floor of {floor} states (a PARTIAL cut must replay "
                    f"the tuple engine's exploration order)"
                )
        if shared_reason is None:
            instrumentation.count("engine.shared", 1)
            instrumentation.event("engine.selected", engine="shared")
            return "shared"
        instrumentation.event(
            "engine.fallback", requested="shared", reason=shared_reason
        )
        if engine == "shared":
            instrumentation.count("engine.fallback.vector", 1)

    reason = packed_fallback_reason(concrete, abstract)
    if reason is None and state_budget is not None:
        # The tuple engine meters the legitimate reachability twice
        # (the check.legitimate span and behavioural_core's own call),
        # the candidate scan, and the outside scan — at most
        # 2|Sigma_A| + 2|Sigma_C| charges.  At or above this floor no
        # budget can trip, so skipping the meter is sound.
        floor = 2 * source_schema(abstract).size() + 2 * source_schema(concrete).size()
        if state_budget < floor:
            reason = (
                f"state budget {state_budget} is below the packed-engine "
                f"floor of {floor} states (a PARTIAL cut must replay the "
                f"tuple engine's exploration order)"
            )
    if reason is not None:
        instrumentation.count("engine.fallback.tuple", 1)
        instrumentation.event("engine.fallback", requested=engine, reason=reason)
        return "tuple"
    if engine in ("vector", "shared"):
        from ..kernel.vector import vector_fallback_reason

        vector_reason = vector_fallback_reason(concrete, abstract)
        if vector_reason is None:
            instrumentation.count("engine.vector", 1)
            instrumentation.event("engine.selected", engine="vector")
            return "vector"
        instrumentation.count("engine.fallback.packed", 1)
        instrumentation.event(
            "engine.fallback", requested="vector", reason=vector_reason
        )
    instrumentation.count("engine.packed", 1)
    instrumentation.event("engine.selected", engine="packed")
    return "packed"


@dataclass(frozen=True)
class StabilizationResult:
    """Outcome of a stabilization check, with quantitative extras.

    Attributes:
        result: the underlying verdict/witness.
        legitimate_abstract: ``L_A`` — legitimate states of the spec.
        core: ``G`` — concrete states from which behaviour is forever
            legitimate (empty on some failures).
        worst_case_steps: length of the longest transition path that
            stays outside ``G`` (the adversarial convergence time), or
            ``None`` when the check failed.
        engine: the engine that actually decided the check (after
            preflight fallback and runtime degradation) when it came
            through :func:`check_stabilization`; ``None`` on directly
            constructed results.  Excluded from equality — verdicts
            are engine-identical, and the differential tests compare
            results across engines.
    """

    result: CheckResult
    legitimate_abstract: FrozenSet[State]
    core: FrozenSet[State]
    worst_case_steps: Optional[int]
    engine: Optional[str] = field(default=None, compare=False)

    @property
    def holds(self) -> bool:
        """The verdict."""
        return self.result.holds

    @property
    def is_partial(self) -> bool:
        """Did the check stop at its state budget rather than decide?"""
        return self.result.is_partial

    def __bool__(self) -> bool:
        return self.result.holds

    def format(self) -> str:
        """Render the verdict plus the quantitative summary."""
        lines = [self.result.format()]
        lines.append(
            f"  |L_A|={len(self.legitimate_abstract)} |core|={len(self.core)}"
            + (
                f" worst-case convergence={self.worst_case_steps} steps"
                if self.worst_case_steps is not None
                else ""
            )
        )
        return "\n".join(lines)


def legitimate_abstract_states(
    abstract: System,
    meter: Optional[BudgetMeter] = None,
    workers: int = 1,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> FrozenSet[State]:
    """``L_A``: the abstract states reachable from the abstract initial states.

    Args:
        abstract: the specification system.
        meter: optional state budget; the reachability search then
            charges one unit per state expanded and stops with a
            :class:`~repro.checker.budget.BudgetExceeded` (carrying the
            frontier size) instead of outgrowing memory.
        workers: degree of parallelism; above 1 the search runs as a
            sharded BFS (:func:`repro.parallel.parallel_reachable`)
            and returns the identical set.
        instrumentation: observability sink for the sharded search's
            round/batch counters (unused sequentially).
    """
    if workers > 1:
        from ..parallel import parallel_reachable

        return parallel_reachable(
            abstract,
            abstract.initial,
            workers,
            meter=meter if meter is not None and meter.budget is not None else None,
            phase="check.legitimate",
            instrumentation=instrumentation,
        )
    if meter is None or meter.budget is None:
        return abstract.reachable()
    seen: Set[State] = set(abstract.initial)
    frontier: List[State] = list(seen)
    while frontier:
        meter.charge("check.legitimate", frontier=len(frontier))
        state = frontier.pop()
        for successor in abstract.successors(state):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return frozenset(seen)


def _must_evict(
    state: State,
    member,
    concrete: System,
    abstract: System,
    mapping,
    stutter_insensitive: bool,
    fairness_ignores_stutter: bool,
) -> bool:
    """Whether ``state`` leaves the core, judged against ``member``.

    ``member`` is the current core membership test — the live
    (Gauss-Seidel) set on the sequential path, a frozen per-round
    (Jacobi) snapshot on the parallel path.  Both iterate the same
    monotone operator, so they reach the same greatest fixpoint.
    """
    image = mapping(state)
    progress = False
    for successor in concrete.successors(state):
        target_image = mapping(successor)
        if successor == state:
            if abstract.has_transition(image, image):
                progress = True
                continue
            if stutter_insensitive or fairness_ignores_stutter:
                continue  # ignorable stutter, no progress
            return True
        if not member(successor):
            return True
        if target_image == image and stutter_insensitive:
            progress = True
            continue
        if not abstract.has_transition(image, target_image):
            return True
        progress = True
    if not progress:
        # No successors at all, or only ignorable self-loops: the
        # state is effectively terminal and must match a terminal
        # state of the specification.
        return not abstract.is_terminal(image)
    return False


def behavioural_core(
    concrete: System,
    abstract: System,
    alpha: Optional[AbstractionFunction] = None,
    stutter_insensitive: bool = False,
    fairness: str = "none",
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    meter: Optional[BudgetMeter] = None,
    workers: int = 1,
) -> FrozenSet[State]:
    """The greatest set ``G`` of concrete states forever tracking ``A``.

    Greatest-fixpoint computation described in the module docstring.
    A state belongs to ``G`` iff its abstraction is legitimate, all of
    its transitions stay in ``G`` with images that are ``A``-steps
    (or invisible, in stutter-insensitive mode), and it deadlocks only
    where ``A`` does.

    Args:
        concrete: implementation ``C`` (candidate stabilizing system).
        abstract: specification ``A`` (the stabilization target).
        alpha: abstraction from ``C``'s space onto ``A``'s; identity
            when omitted.
        stutter_insensitive: treat image-stuttering steps as legal.
        fairness: under ``'weak'``/``'strong'``, a self-loop whose
            image is *not* an ``A``-self-loop is ignored rather than
            disqualifying — fairness prevents the daemon from taking
            it forever, and taking it finitely often only stutters.
            A self-loop whose image IS an ``A``-transition remains
            acceptable under every mode (legitimate stuttering
            behaviour of the specification itself).
        instrumentation: observability sink; counts the states
            enumerated, the fixpoint iterations, and the evictions per
            iteration (null and free by default).
        meter: optional state budget; the full-space scan then raises
            :class:`~repro.checker.budget.BudgetExceeded` at the cap
            instead of materializing an unbounded candidate set.
        workers: degree of parallelism.  Above 1 the candidate scan is
            partitioned across worker processes and the fixpoint runs
            as synchronous (Jacobi) eviction rounds; the resulting set
            is identical to the sequential (Gauss-Seidel) one — the
            eviction operator is monotone, so every iteration order
            reaches the same greatest fixpoint.
    """
    mapping = alpha if alpha is not None else identity_abstraction(concrete.schema)
    legitimate = legitimate_abstract_states(
        abstract, meter=meter, workers=workers, instrumentation=instrumentation
    )
    fairness_ignores_stutter = fairness in ("weak", "strong")
    if workers > 1:
        return _behavioural_core_sharded(
            concrete,
            abstract,
            mapping,
            legitimate,
            stutter_insensitive,
            fairness_ignores_stutter,
            instrumentation,
            meter,
            workers,
        )
    enumerated = 0
    core: Set[State] = set()
    for state in concrete.schema.states():
        if meter is not None:
            meter.charge("check.core", frontier=len(core))
        enumerated += 1
        if mapping(state) in legitimate:
            core.add(state)
    instrumentation.count("check.states.enumerated", enumerated)
    instrumentation.count("check.candidates.initial", len(core))
    progress = ProgressEmitter(instrumentation, "check.core")
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        evicted = 0
        for state in list(core):
            if _must_evict(
                state, core.__contains__, concrete, abstract, mapping,
                stutter_insensitive, fairness_ignores_stutter,
            ):
                core.discard(state)
                changed = True
                evicted += 1
        instrumentation.event(
            "check.fixpoint.iteration",
            index=iterations,
            evicted=evicted,
            remaining=len(core),
        )
        instrumentation.count("check.states.evicted", evicted)
        instrumentation.observe("check.round.evicted", evicted)
        progress.tick(iterations, len(core), enumerated * iterations)
    instrumentation.count("check.fixpoint.iterations", iterations)
    return frozenset(core)


def _behavioural_core_sharded(
    concrete: System,
    abstract: System,
    mapping,
    legitimate: FrozenSet[State],
    stutter_insensitive: bool,
    fairness_ignores_stutter: bool,
    instrumentation: Instrumentation,
    meter: Optional[BudgetMeter],
    workers: int,
) -> FrozenSet[State]:
    """The ``workers > 1`` body of :func:`behavioural_core`.

    The candidate scan partitions the full state space across the
    worker pool; each fixpoint round re-forks the pool so the workers
    inherit the current core snapshot copy-on-write and evaluate the
    same eviction predicate the sequential loop uses
    (:func:`_must_evict`), against that frozen snapshot.
    """
    from ..parallel import parallel_filter_states

    states = list(concrete.schema.states())
    candidates = parallel_filter_states(
        states,
        lambda state: mapping(state) in legitimate,
        workers,
        meter=meter,
        phase="check.core",
        instrumentation=instrumentation,
    )
    instrumentation.count("check.states.enumerated", len(states))
    instrumentation.count("check.candidates.initial", len(candidates))
    core: Set[State] = set(candidates)
    progress = ProgressEmitter(instrumentation, "check.core")
    iterations = 0
    changed = True
    while changed:
        iterations += 1
        snapshot = frozenset(core)
        member = snapshot.__contains__

        def evicts(state: State) -> bool:
            return _must_evict(
                state, member, concrete, abstract, mapping,
                stutter_insensitive, fairness_ignores_stutter,
            )

        evicted_states = parallel_filter_states(
            sorted(core, key=repr),
            evicts,
            workers,
            phase="check.fixpoint",
            instrumentation=instrumentation,
        )
        changed = bool(evicted_states)
        core.difference_update(evicted_states)
        instrumentation.event(
            "check.fixpoint.iteration",
            index=iterations,
            evicted=len(evicted_states),
            remaining=len(core),
        )
        instrumentation.count("check.states.evicted", len(evicted_states))
        instrumentation.observe("check.round.evicted", len(evicted_states))
        progress.tick(iterations, len(core), len(states) * iterations)
    instrumentation.count("check.fixpoint.iterations", iterations)
    return frozenset(core)


def worst_case_convergence_steps(
    concrete: System, core: FrozenSet[State], fairness: str = "none"
) -> int:
    """Length of the longest transition path staying outside ``core``.

    Assumes the region outside ``core`` is acyclic (which the
    stabilization check has established); the value is then the exact
    adversarial convergence time: the maximum, over all states and all
    daemon choices, of the number of steps taken before entering
    ``core``.

    Args:
        concrete: the checked system (self-loops ignored under
            ``fairness='weak'``).
        core: the legitimate behavioural core ``G``.
        fairness: ``'none'``, ``'weak'``, or ``'strong'``; must match
            the value used for the stabilization check.  Under
            ``'strong'`` the metric only exists when the region outside
            the core happens to be acyclic.

    Raises:
        ValueError: if a cycle outside ``core`` is detected after all.
    """
    system = (
        concrete.without_self_loops() if fairness in ("weak", "strong") else concrete
    )
    outside = [state for state in system.schema.states() if state not in core]
    outside_set = set(outside)
    # Longest path in a DAG by memoized DFS (iterative).
    depth: Dict[State, int] = {}
    in_progress: Set[State] = set()
    for root in outside:
        if root in depth:
            continue
        stack: List[Tuple[State, bool]] = [(root, False)]
        while stack:
            state, expanded = stack.pop()
            if expanded:
                best = 0
                for successor in system.successors(state):
                    if successor in outside_set:
                        best = max(best, 1 + depth[successor])
                    else:
                        best = max(best, 1)
                depth[state] = best
                in_progress.discard(state)
                continue
            if state in depth:
                continue
            if state in in_progress:
                raise ValueError("cycle outside the core; check stabilization first")
            in_progress.add(state)
            stack.append((state, True))
            for successor in system.successors(state):
                if successor in outside_set and successor not in depth:
                    if successor in in_progress:
                        raise ValueError(
                            "cycle outside the core; check stabilization first"
                        )
                    stack.append((successor, False))
    return max(depth.values(), default=0)


def check_stabilization(
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction] = None,
    stutter_insensitive: bool = False,
    fairness: str = "none",
    compute_steps: bool = True,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    state_budget: Optional[int] = None,
    workers: int = 1,
    engine: str = "tuple",
) -> StabilizationResult:
    """Decide "``C`` is stabilizing to ``A``".

    Args:
        concrete: the candidate system ``C`` (often a composite
            ``C [] W``); transient faults may land it in any state of
            its space, so convergence is demanded from *every* state.
        abstract: the stabilization target ``A``.
        alpha: abstraction function, identity when the spaces coincide.
        stutter_insensitive: accept image-stuttering steps (``C3``).
        fairness: ``'none'`` for raw central-daemon semantics,
            ``'weak'`` to discard self-loops before the cycle analysis
            (a stuttering action is never scheduled forever to the
            exclusion of enabled, state-changing actions), or
            ``'strong'`` for strong action fairness (divergence must
            be a fair trap; see :mod:`repro.checker.fairness`).
        compute_steps: also compute the worst-case convergence time
            (skippable for speed in large sweeps).
        instrumentation: observability sink (phase timings, state
            counts, fixpoint iterations, the verdict); the null
            default is free.
        state_budget: optional cap on the number of states the check
            may enumerate across all of its phases.  When the cap is
            hit the result is a structured ``PARTIAL`` verdict
            (``result.is_partial`` is true, ``result.result.partial``
            reports states explored and frontier size) — never a
            ``MemoryError``.
        workers: worker processes for the set-computation phases
            (``L_A`` reachability, the candidate scan, the fixpoint
            rounds); the witness-search phases always run sequentially
            on the resulting sets, so the verdict — including its
            witness and formatted rendering — is identical for every
            worker count.  Degrades to 1 where fork-based pools are
            unavailable.
        engine: ``'tuple'`` (the default) walks tuple states through
            an eagerly compiled :class:`System`; ``'packed'`` interns
            states as dense ints and runs the bitset fixpoints of
            :mod:`repro.kernel` — same verdicts, witnesses, and
            counters, decoded back to tuples at this boundary.  Packed
            falls back to tuple automatically (with an
            ``engine.fallback`` event) for unpackable schemas or tight
            state budgets.  Both sides may be a
            :class:`~repro.gcl.program.Program`; the packed engine then
            skips transition-table materialization entirely.

    Returns:
        A :class:`StabilizationResult`; its witness on failure is a
        divergent cycle, an illegitimate deadlock, or an empty core.
    """
    if fairness not in ("none", "weak", "strong"):
        raise ValueError(f"unknown fairness mode {fairness!r}")
    selected = _select_engine(
        engine, concrete, abstract, state_budget, instrumentation, alpha
    )
    if workers > 1:
        from ..parallel import resolve_workers

        workers = resolve_workers(workers)
        if workers > 1:
            instrumentation.count("parallel.workers", workers)
    meter = BudgetMeter(state_budget)
    name = f"{_source_name(concrete)} stabilizing to {_source_name(abstract)}"
    with instrumentation.span("check.total"):
        try:
            result = _decide_with_degradation(
                selected,
                concrete,
                abstract,
                alpha,
                stutter_insensitive,
                fairness,
                compute_steps,
                instrumentation,
                meter,
                workers,
            )
        except BudgetExceeded as exc:
            instrumentation.event(
                "check.partial",
                phase=exc.partial.phase,
                explored=exc.partial.explored,
                frontier=exc.partial.frontier,
                budget=exc.partial.budget,
            )
            return StabilizationResult(
                CheckResult(False, name, partial=exc.partial),
                frozenset(),
                frozenset(),
                None,
                # Only metered (tuple-engine) exploration can trip the
                # budget; _select_engine guarantees tight budgets land
                # there.
                engine="tuple",
            )
    instrumentation.count("check.legitimate.size", len(result.legitimate_abstract))
    instrumentation.count("check.core.size", len(result.core))
    witness = result.result.witness
    instrumentation.event(
        "check.verdict",
        check=result.result.check,
        holds=result.holds,
        witness=witness.kind.name if witness is not None else None,
        worst_case_steps=result.worst_case_steps,
    )
    return result


def _decide_with_degradation(
    selected: str,
    concrete: SystemOrProgram,
    abstract: SystemOrProgram,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    fairness: str,
    compute_steps: bool,
    instrumentation: Instrumentation,
    meter: Optional[BudgetMeter],
    workers: int,
) -> StabilizationResult:
    """Run the selected engine's decide, degrading on runtime faults.

    Preflight fallback (:func:`_select_engine`) handles the failures
    known *before* the check starts; this wrapper handles the ones
    that surface mid-fixpoint — ``MemoryError`` from an array that
    outgrew RAM, ``ImportError`` from an accelerator that broke on
    first use, an :class:`~repro.resilience.degrade.EngineFault` from
    kernel internals.  On each such fault the check restarts on the
    next engine down the chain (vector → packed → tuple), with a
    reasoned ``engine.fallback`` event marked ``during="runtime"``.
    Restarting is sound because the engines are pure functions of
    their inputs with identical verdicts (the CI differentials pin
    this), so a partial first attempt leaves nothing behind but the
    counters it already emitted.

    ``BudgetExceeded`` always propagates: it is a structured PARTIAL
    verdict, not an engine fault.  The last engine's faults propagate
    too — masking a tuple-engine crash would hide a real failure.
    """
    chain = DEGRADATION_CHAIN[selected]
    if selected == "shared":
        # Filter the chain to engines that can actually run these
        # sources: a mega-state space degrading out of the shared
        # engine must not crash on the vector/packed preflight limits
        # mid-recovery (their lowering errors are ValueErrors, not
        # recoverable faults).
        from ..kernel import packed_fallback_reason
        from ..kernel.vector import vector_fallback_reason

        chain = tuple(
            engine_name
            for engine_name in chain
            if (
                engine_name == "shared"
                or engine_name == "tuple"
                or (
                    engine_name == "vector"
                    and vector_fallback_reason(concrete, abstract) is None
                )
                or (
                    engine_name == "packed"
                    and packed_fallback_reason(concrete, abstract) is None
                )
            )
        )
    for position, engine_name in enumerate(chain):
        try:
            if engine_name == "shared":
                decided = _decide_stabilization_shared(
                    concrete,
                    abstract,
                    alpha,
                    stutter_insensitive,
                    fairness,
                    compute_steps,
                    instrumentation,
                    workers,
                )
            elif engine_name == "vector":
                decided = _decide_stabilization_vector(
                    concrete,
                    abstract,
                    alpha,
                    stutter_insensitive,
                    fairness,
                    compute_steps,
                    instrumentation,
                )
            elif engine_name == "packed":
                decided = _decide_stabilization_packed(
                    concrete,
                    abstract,
                    alpha,
                    stutter_insensitive,
                    fairness,
                    compute_steps,
                    instrumentation,
                    workers,
                )
            else:
                concrete_system = _as_system(concrete)
                abstract_system = (
                    concrete_system
                    if abstract is concrete
                    else _as_system(abstract)
                )
                decided = _decide_stabilization(
                    concrete_system,
                    abstract_system,
                    alpha,
                    stutter_insensitive,
                    fairness,
                    compute_steps,
                    instrumentation,
                    meter,
                    workers,
                )
            # Stamp the engine that actually decided (not the one
            # requested): runtime degradation may have moved down the
            # chain since preflight selection.
            return replace(decided, engine=engine_name)
        except BudgetExceeded:
            raise
        except RECOVERABLE_ENGINE_FAULTS as fault:
            if position == len(chain) - 1:
                raise
            fallback = chain[position + 1]
            instrumentation.count(f"engine.fallback.{fallback}", 1)
            instrumentation.count("resilience.engine.fallback", 1)
            instrumentation.event(
                "engine.fallback",
                requested=engine_name,
                during="runtime",
                reason=f"{type(fault).__name__}: {fault}",
            )
    raise AssertionError("engine degradation chain exhausted")  # pragma: no cover


def _decide_stabilization(
    concrete: System,
    abstract: System,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    fairness: str,
    compute_steps: bool,
    instrumentation: Instrumentation,
    meter: Optional[BudgetMeter] = None,
    workers: int = 1,
) -> StabilizationResult:
    """The phases of :func:`check_stabilization`, each under a span."""
    name = f"{concrete.name} stabilizing to {abstract.name}"
    with instrumentation.span("check.legitimate"):
        legitimate = legitimate_abstract_states(
            abstract, meter=meter, workers=workers,
            instrumentation=instrumentation,
        )
    analysis_system = (
        concrete.without_self_loops() if fairness in ("weak", "strong") else concrete
    )
    with instrumentation.span("check.core"):
        core = behavioural_core(
            concrete,
            abstract,
            alpha,
            stutter_insensitive=stutter_insensitive,
            fairness=fairness,
            instrumentation=instrumentation,
            meter=meter,
            workers=workers,
        )

    if not core:
        return StabilizationResult(
            CheckResult(
                False,
                name,
                Witness(
                    WitnessKind.CLOSURE_VIOLATION,
                    "no concrete state forever tracks the specification "
                    "(behavioural core is empty)",
                ),
            ),
            legitimate,
            core,
            None,
        )

    states = concrete.schema.states()
    if meter is not None:
        states = meter.metered(states, "check.outside")
    outside = frozenset(state for state in states if state not in core)
    instrumentation.count("check.outside.size", len(outside))
    with instrumentation.span("check.deadlock_search"):
        deadlocks = terminal_states_within(analysis_system, outside)
    if deadlocks:
        stuck = min(deadlocks, key=repr)
        return StabilizationResult(
            CheckResult(
                False,
                name,
                Witness(
                    WitnessKind.ILLEGITIMATE_DEADLOCK,
                    "a computation can end outside the legitimate core",
                    (stuck,),
                    concrete.schema,
                ),
            ),
            legitimate,
            core,
            None,
        )
    if fairness == "strong":
        with instrumentation.span("check.cycle_search"):
            trap = find_fair_trap(analysis_system, outside)
        if trap is not None:
            cycle = find_cycle_within(analysis_system, trap)
            return StabilizationResult(
                CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.DIVERGENT_CYCLE,
                        "a strongly fair computation can stay forever outside "
                        "the legitimate core (fair trap)",
                        cycle or tuple(sorted(trap, key=repr)[:4]),
                        concrete.schema,
                    ),
                ),
                legitimate,
                core,
                None,
            )
    else:
        with instrumentation.span("check.cycle_search"):
            divergent = states_on_cycles(analysis_system, outside)
        if divergent:
            cycle = find_cycle_within(analysis_system, outside)
            return StabilizationResult(
                CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.DIVERGENT_CYCLE,
                        "a computation can cycle forever outside the legitimate core",
                        cycle or (),
                        concrete.schema,
                    ),
                ),
                legitimate,
                core,
                None,
            )

    # Inside the core, stuttering must also be finitary: a cycle whose
    # every step is image-invisible would give an infinite concrete
    # computation whose abstract image is finite and non-maximal.
    if stutter_insensitive and alpha is not None:
        with instrumentation.span("check.invisible_cycles"):
            # Canonical order: ``core`` was assembled either
            # sequentially or shard-parallel; sorting keeps the edge
            # list (and so any cycle witness) identical either way.
            invisible = [
                (source, target)
                for source in sorted(core, key=repr)
                for target in analysis_system.successors(source)
                if target in core and alpha(source) == alpha(target)
            ]
            invisible_cycle: Optional[Tuple[State, ...]] = None
            if invisible:
                invisible_system = System(
                    concrete.schema, invisible, (), name=f"{concrete.name}|invisible"
                )
                if states_on_cycles(invisible_system, core):
                    invisible_cycle = (
                        find_cycle_within(invisible_system, core) or ()
                    )
        if invisible_cycle is not None:
            return StabilizationResult(
                CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.DIVERGENT_CYCLE,
                        "cycle of abstract-invisible steps inside the core",
                        invisible_cycle,
                        concrete.schema,
                    ),
                ),
                legitimate,
                core,
                None,
            )

    with instrumentation.span("check.worst_case"):
        if compute_steps and not has_cycle_within(analysis_system, outside):
            steps: Optional[int] = worst_case_convergence_steps(
                concrete, core, fairness=fairness
            )
        else:
            # Under strong fairness the sup over fair runs may be
            # unbounded when cycles remain outside the core; report no
            # finite metric.
            steps = None
    return StabilizationResult(
        CheckResult(
            True,
            name,
            detail=(
                f"core has {len(core)} of {concrete.schema.size()} states; "
                f"legitimate spec states: {len(legitimate)}"
            ),
        ),
        legitimate,
        core,
        steps,
    )


def _decide_stabilization_packed(
    concrete_source: SystemOrProgram,
    abstract_source: SystemOrProgram,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    fairness: str,
    compute_steps: bool,
    instrumentation: Instrumentation,
    workers: int = 1,
) -> StabilizationResult:
    """:func:`_decide_stabilization` on the packed kernel engine.

    Phase for phase the same procedure — same spans, same witness
    messages, same counters — but the hot set computations run as
    bitset fixpoints over interned int codes.  Witness *construction*
    on failure decodes back to tuples; the strong-fairness trap search
    and cycle extraction materialize the tuple system (it is built by
    the same compilation path, so the resulting witness is the tuple
    engine's exact one).  The region sets handed to those subroutines
    are assembled in schema order, which makes their internal set
    layout — and therefore every order-dependent traversal — identical
    to the tuple engine's.
    """
    from ..kernel import (
        as_kernel,
        drop_self_loops,
        image_codes,
        packed_core,
        packed_has_cycle,
        packed_longest_path,
        packed_reachable,
        packed_terminals,
    )

    name = f"{_source_name(concrete_source)} stabilizing to {_source_name(abstract_source)}"
    kernel = as_kernel(concrete_source, instrumentation=instrumentation)
    abstract_kernel = (
        kernel
        if abstract_source is concrete_source
        else as_kernel(abstract_source, instrumentation=instrumentation)
    )
    interner = kernel.interner
    size = kernel.size
    with instrumentation.span("check.legitimate"):
        legitimate_flags = packed_reachable(
            abstract_kernel.successors,
            abstract_kernel.initial_codes,
            abstract_kernel.size,
            workers=workers,
            instrumentation=instrumentation,
        )
    legitimate = frozenset(
        abstract_kernel.interner.decode(code)
        for code in range(abstract_kernel.size)
        if legitimate_flags[code]
    )
    fairness_ignores_stutter = fairness in ("weak", "strong")
    analysis_succ = (
        drop_self_loops(kernel.successors)
        if fairness_ignores_stutter
        else kernel.successors
    )
    with instrumentation.span("check.core"):
        image_of = image_codes(interner, abstract_kernel.interner, alpha)
        core_flags = packed_core(
            kernel.successors,
            abstract_kernel.successors,
            image_of,
            legitimate_flags,
            size,
            stutter_insensitive,
            fairness_ignores_stutter,
            instrumentation=instrumentation,
            workers=workers,
        )
    core = frozenset(
        interner.decode(code) for code in range(size) if core_flags[code]
    )
    if abstract_kernel is not kernel:
        # The abstraction's successor function is done after the core
        # fixpoint; release its memo instead of carrying it through the
        # witness phases.
        instrumentation.count(
            "kernel.memo.evictions", abstract_kernel.clear_memo()
        )

    if not core:
        return StabilizationResult(
            CheckResult(
                False,
                name,
                Witness(
                    WitnessKind.CLOSURE_VIOLATION,
                    "no concrete state forever tracks the specification "
                    "(behavioural core is empty)",
                ),
            ),
            legitimate,
            core,
            None,
        )

    outside_flags = bytearray(
        0 if core_flags[code] else 1 for code in range(size)
    )
    instrumentation.count("check.outside.size", size - len(core))
    with instrumentation.span("check.deadlock_search"):
        deadlock_codes = packed_terminals(analysis_succ, outside_flags)
    if deadlock_codes:
        stuck = min((interner.decode(code) for code in deadlock_codes), key=repr)
        return StabilizationResult(
            CheckResult(
                False,
                name,
                Witness(
                    WitnessKind.ILLEGITIMATE_DEADLOCK,
                    "a computation can end outside the legitimate core",
                    (stuck,),
                    interner.schema,
                ),
            ),
            legitimate,
            core,
            None,
        )

    def decode_outside() -> FrozenSet[State]:
        # Schema insertion order: identical set layout to the tuple
        # engine's generator-built frozenset, so every set-iteration-
        # order-dependent subroutine (the fair-trap search) sees the
        # same traversal and returns the same witness.
        return frozenset(
            interner.decode(code) for code in range(size) if outside_flags[code]
        )

    def analysis_system_of() -> System:
        system = kernel.materialize()
        return system.without_self_loops() if fairness_ignores_stutter else system

    if fairness == "strong":
        with instrumentation.span("check.cycle_search"):
            trap = None
            if packed_has_cycle(analysis_succ, outside_flags):
                analysis_system = analysis_system_of()
                trap = find_fair_trap(analysis_system, decode_outside())
        if trap is not None:
            cycle = find_cycle_within(analysis_system, trap)
            return StabilizationResult(
                CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.DIVERGENT_CYCLE,
                        "a strongly fair computation can stay forever outside "
                        "the legitimate core (fair trap)",
                        cycle or tuple(sorted(trap, key=repr)[:4]),
                        interner.schema,
                    ),
                ),
                legitimate,
                core,
                None,
            )
    else:
        with instrumentation.span("check.cycle_search"):
            has_divergent = packed_has_cycle(analysis_succ, outside_flags)
        if has_divergent:
            cycle = find_cycle_within(analysis_system_of(), decode_outside())
            return StabilizationResult(
                CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.DIVERGENT_CYCLE,
                        "a computation can cycle forever outside the legitimate core",
                        cycle or (),
                        interner.schema,
                    ),
                ),
                legitimate,
                core,
                None,
            )

    if stutter_insensitive and alpha is not None:

        def invisible_succ(code: int) -> Tuple[int, ...]:
            image = image_of[code]
            return tuple(
                target
                for target in analysis_succ(code)
                if core_flags[target] and image_of[target] == image
            )

        with instrumentation.span("check.invisible_cycles"):
            invisible_cycle: Optional[Tuple[State, ...]] = None
            if packed_has_cycle(invisible_succ, core_flags):
                # Reconstruct the witness exactly as the tuple engine
                # does, on the materialized system.
                analysis_system = analysis_system_of()
                invisible = [
                    (source, target)
                    for source in sorted(core, key=repr)
                    for target in analysis_system.successors(source)
                    if target in core and alpha(source) == alpha(target)
                ]
                invisible_system = System(
                    interner.schema,
                    invisible,
                    (),
                    name=f"{_source_name(concrete_source)}|invisible",
                )
                if states_on_cycles(invisible_system, core):
                    invisible_cycle = (
                        find_cycle_within(invisible_system, core) or ()
                    )
        if invisible_cycle is not None:
            return StabilizationResult(
                CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.DIVERGENT_CYCLE,
                        "cycle of abstract-invisible steps inside the core",
                        invisible_cycle,
                        interner.schema,
                    ),
                ),
                legitimate,
                core,
                None,
            )

    with instrumentation.span("check.worst_case"):
        if compute_steps and not packed_has_cycle(analysis_succ, outside_flags):
            steps: Optional[int] = packed_longest_path(analysis_succ, outside_flags)
        else:
            # Under strong fairness the sup over fair runs may be
            # unbounded when cycles remain outside the core; report no
            # finite metric.
            steps = None
    return StabilizationResult(
        CheckResult(
            True,
            name,
            detail=(
                f"core has {len(core)} of {interner.schema.size()} states; "
                f"legitimate spec states: {len(legitimate)}"
            ),
        ),
        legitimate,
        core,
        steps,
    )


def _decide_stabilization_vector(
    concrete_source: SystemOrProgram,
    abstract_source: SystemOrProgram,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    fairness: str,
    compute_steps: bool,
    instrumentation: Instrumentation,
) -> StabilizationResult:
    """:func:`_decide_stabilization` on the vectorized frontier engine.

    Phase for phase the same procedure as the packed decide — same
    spans, same witness messages, same counters — but the hot set
    computations run as whole-frontier array fixpoints
    (:mod:`repro.kernel.vector.fixpoint`).  The array fixpoints run
    single-process regardless of ``workers`` (a frontier batch *is*
    the data-parallel unit), so no ``parallel.*`` round counters are
    emitted — the same documented divergence class as the fixpoint
    iteration counts.  Witness construction on failure decodes back to
    tuples and materializes the tuple system exactly as the packed
    engine does, so failing verdicts are byte-identical.
    """
    import numpy as np

    from ..kernel.vector import (
        as_vector_kernel,
        vector_core,
        vector_has_cycle,
        vector_image_codes,
        vector_longest_path,
        vector_reachable,
        vector_terminals,
    )

    name = f"{_source_name(concrete_source)} stabilizing to {_source_name(abstract_source)}"
    kernel = as_vector_kernel(concrete_source)
    abstract_kernel = (
        kernel
        if abstract_source is concrete_source
        else as_vector_kernel(abstract_source)
    )
    interner = kernel.interner
    size = kernel.size
    with instrumentation.span("check.legitimate"):
        legitimate_flags = vector_reachable(
            abstract_kernel,
            abstract_kernel.initial_array,
            instrumentation=instrumentation,
        )
    # Ascending-code decode: identical set layout to the packed and
    # tuple engines, so order-dependent witness subroutines agree.
    legitimate = frozenset(
        abstract_kernel.interner.decode(int(code))
        for code in np.nonzero(legitimate_flags)[0]
    )
    fairness_ignores_stutter = fairness in ("weak", "strong")
    with instrumentation.span("check.core"):
        image_of = vector_image_codes(interner, abstract_kernel.interner, alpha)
        core_flags = vector_core(
            kernel,
            abstract_kernel,
            image_of,
            legitimate_flags,
            stutter_insensitive,
            fairness_ignores_stutter,
            instrumentation=instrumentation,
        )
    core = frozenset(
        interner.decode(int(code)) for code in np.nonzero(core_flags)[0]
    )

    if not core:
        return StabilizationResult(
            CheckResult(
                False,
                name,
                Witness(
                    WitnessKind.CLOSURE_VIOLATION,
                    "no concrete state forever tracks the specification "
                    "(behavioural core is empty)",
                ),
            ),
            legitimate,
            core,
            None,
        )

    outside_flags = ~core_flags
    instrumentation.count("check.outside.size", size - len(core))
    with instrumentation.span("check.deadlock_search"):
        deadlock_codes = vector_terminals(
            kernel, outside_flags, drop_self=fairness_ignores_stutter
        )
    if deadlock_codes.size:
        stuck = min(
            (interner.decode(int(code)) for code in deadlock_codes), key=repr
        )
        return StabilizationResult(
            CheckResult(
                False,
                name,
                Witness(
                    WitnessKind.ILLEGITIMATE_DEADLOCK,
                    "a computation can end outside the legitimate core",
                    (stuck,),
                    interner.schema,
                ),
            ),
            legitimate,
            core,
            None,
        )

    def decode_outside() -> FrozenSet[State]:
        # Schema insertion order, as in the packed decide.
        return frozenset(
            interner.decode(int(code)) for code in np.nonzero(outside_flags)[0]
        )

    def analysis_system_of() -> System:
        system = kernel.materialize()
        return system.without_self_loops() if fairness_ignores_stutter else system

    if fairness == "strong":
        with instrumentation.span("check.cycle_search"):
            trap = None
            if vector_has_cycle(
                kernel, outside_flags, drop_self=fairness_ignores_stutter
            ):
                analysis_system = analysis_system_of()
                trap = find_fair_trap(analysis_system, decode_outside())
        if trap is not None:
            cycle = find_cycle_within(analysis_system, trap)
            return StabilizationResult(
                CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.DIVERGENT_CYCLE,
                        "a strongly fair computation can stay forever outside "
                        "the legitimate core (fair trap)",
                        cycle or tuple(sorted(trap, key=repr)[:4]),
                        interner.schema,
                    ),
                ),
                legitimate,
                core,
                None,
            )
    else:
        with instrumentation.span("check.cycle_search"):
            has_divergent = vector_has_cycle(
                kernel, outside_flags, drop_self=fairness_ignores_stutter
            )
        if has_divergent:
            cycle = find_cycle_within(analysis_system_of(), decode_outside())
            return StabilizationResult(
                CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.DIVERGENT_CYCLE,
                        "a computation can cycle forever outside the legitimate core",
                        cycle or (),
                        interner.schema,
                    ),
                ),
                legitimate,
                core,
                None,
            )

    if stutter_insensitive and alpha is not None:
        with instrumentation.span("check.invisible_cycles"):
            invisible_cycle: Optional[Tuple[State, ...]] = None
            if vector_has_cycle(
                kernel,
                core_flags,
                drop_self=fairness_ignores_stutter,
                image_of=image_of,
            ):
                # Reconstruct the witness exactly as the tuple engine
                # does, on the materialized system.
                analysis_system = analysis_system_of()
                invisible = [
                    (source, target)
                    for source in sorted(core, key=repr)
                    for target in analysis_system.successors(source)
                    if target in core and alpha(source) == alpha(target)
                ]
                invisible_system = System(
                    interner.schema,
                    invisible,
                    (),
                    name=f"{_source_name(concrete_source)}|invisible",
                )
                if states_on_cycles(invisible_system, core):
                    invisible_cycle = (
                        find_cycle_within(invisible_system, core) or ()
                    )
        if invisible_cycle is not None:
            return StabilizationResult(
                CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.DIVERGENT_CYCLE,
                        "cycle of abstract-invisible steps inside the core",
                        invisible_cycle,
                        interner.schema,
                    ),
                ),
                legitimate,
                core,
                None,
            )

    with instrumentation.span("check.worst_case"):
        if compute_steps and not vector_has_cycle(
            kernel, outside_flags, drop_self=fairness_ignores_stutter
        ):
            steps: Optional[int] = vector_longest_path(
                kernel, outside_flags, drop_self=fairness_ignores_stutter
            )
        else:
            # Under strong fairness the sup over fair runs may be
            # unbounded when cycles remain outside the core; report no
            # finite metric.
            steps = None
    return StabilizationResult(
        CheckResult(
            True,
            name,
            detail=(
                f"core has {len(core)} of {interner.schema.size()} states; "
                f"legitimate spec states: {len(legitimate)}"
            ),
        ),
        legitimate,
        core,
        steps,
    )


def _decide_stabilization_shared(
    concrete_source: SystemOrProgram,
    abstract_source: SystemOrProgram,
    alpha: Optional[AbstractionFunction],
    stutter_insensitive: bool,
    fairness: str,
    compute_steps: bool,
    instrumentation: Instrumentation,
    workers: int = 1,
) -> StabilizationResult:
    """:func:`_decide_stabilization` on the shared-memory mega engine.

    Phase for phase the vector decide — same spans, same witness
    messages, same counters — with the set computations streamed
    through :mod:`repro.kernel.shared`: membership flags are
    bit-packed (segment-backed when workers shard the rounds),
    successor evaluation is chunked through the table-free
    :class:`~repro.kernel.shared.SharedKernel`, and collections past
    the memory budget spill to the run's spill directory.  The
    abstract side runs on the in-RAM vector kernel (preflight
    guarantees it fits).  Witness construction on failure decodes and
    materializes exactly as the other engines do — failing verdicts
    are inherently explicit.
    """
    import numpy as np

    from ..kernel.shared import (
        BitField,
        SharedImage,
        SharedKernel,
        open_runtime,
        shared_core,
        shared_has_cycle,
        shared_longest_path,
        shared_terminals,
    )
    from ..kernel.vector import as_vector_kernel, vector_reachable

    name = f"{_source_name(concrete_source)} stabilizing to {_source_name(abstract_source)}"
    kernel = SharedKernel(concrete_source)
    abstract_kernel = as_vector_kernel(abstract_source)
    interner = kernel.interner
    size = kernel.size

    def decode_bits(bits: BitField, chunk: int) -> FrozenSet[State]:
        # Ascending-code decode: identical set layout to the other
        # engines, so order-dependent witness subroutines agree.
        return frozenset(
            interner.decode(int(code))
            for codes in bits.member_chunks(chunk)
            for code in codes
        )

    with open_runtime(
        kernel, workers=workers, instrumentation=instrumentation
    ) as runtime:
        with instrumentation.span("check.legitimate"):
            legitimate_flags = vector_reachable(
                abstract_kernel,
                abstract_kernel.initial_array,
                instrumentation=instrumentation,
            )
        legitimate = frozenset(
            abstract_kernel.interner.decode(int(code))
            for code in np.nonzero(legitimate_flags)[0]
        )
        fairness_ignores_stutter = fairness in ("weak", "strong")
        with instrumentation.span("check.core"):
            image = SharedImage(interner, abstract_kernel.interner, alpha)
            core_bits = shared_core(
                kernel,
                abstract_kernel,
                image,
                legitimate_flags,
                stutter_insensitive,
                fairness_ignores_stutter,
                runtime,
                instrumentation=instrumentation,
            )
        core = decode_bits(core_bits, runtime.chunk)

        if not core:
            return StabilizationResult(
                CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.CLOSURE_VIOLATION,
                        "no concrete state forever tracks the specification "
                        "(behavioural core is empty)",
                    ),
                ),
                legitimate,
                core,
                None,
            )

        outside_bits = BitField(size)
        core_bits.complement_into(outside_bits)
        instrumentation.count("check.outside.size", size - len(core))
        with instrumentation.span("check.deadlock_search"):
            deadlock_codes = shared_terminals(
                kernel,
                outside_bits,
                runtime,
                drop_self=fairness_ignores_stutter,
            )
        if deadlock_codes.size:
            stuck = min(
                (interner.decode(int(code)) for code in deadlock_codes),
                key=repr,
            )
            return StabilizationResult(
                CheckResult(
                    False,
                    name,
                    Witness(
                        WitnessKind.ILLEGITIMATE_DEADLOCK,
                        "a computation can end outside the legitimate core",
                        (stuck,),
                        interner.schema,
                    ),
                ),
                legitimate,
                core,
                None,
            )

        def decode_outside() -> FrozenSet[State]:
            return decode_bits(outside_bits, runtime.chunk)

        def analysis_system_of() -> System:
            system = kernel.materialize()
            return (
                system.without_self_loops()
                if fairness_ignores_stutter
                else system
            )

        if fairness == "strong":
            with instrumentation.span("check.cycle_search"):
                trap = None
                if shared_has_cycle(
                    kernel,
                    outside_bits,
                    runtime,
                    drop_self=fairness_ignores_stutter,
                ):
                    analysis_system = analysis_system_of()
                    trap = find_fair_trap(analysis_system, decode_outside())
            if trap is not None:
                cycle = find_cycle_within(analysis_system, trap)
                return StabilizationResult(
                    CheckResult(
                        False,
                        name,
                        Witness(
                            WitnessKind.DIVERGENT_CYCLE,
                            "a strongly fair computation can stay forever outside "
                            "the legitimate core (fair trap)",
                            cycle or tuple(sorted(trap, key=repr)[:4]),
                            interner.schema,
                        ),
                    ),
                    legitimate,
                    core,
                    None,
                )
        else:
            with instrumentation.span("check.cycle_search"):
                has_divergent = shared_has_cycle(
                    kernel,
                    outside_bits,
                    runtime,
                    drop_self=fairness_ignores_stutter,
                )
            if has_divergent:
                cycle = find_cycle_within(
                    analysis_system_of(), decode_outside()
                )
                return StabilizationResult(
                    CheckResult(
                        False,
                        name,
                        Witness(
                            WitnessKind.DIVERGENT_CYCLE,
                            "a computation can cycle forever outside the legitimate core",
                            cycle or (),
                            interner.schema,
                        ),
                    ),
                    legitimate,
                    core,
                    None,
                )

        if stutter_insensitive and alpha is not None:
            with instrumentation.span("check.invisible_cycles"):
                invisible_cycle: Optional[Tuple[State, ...]] = None
                if shared_has_cycle(
                    kernel,
                    core_bits,
                    runtime,
                    drop_self=fairness_ignores_stutter,
                    image=image,
                ):
                    # Reconstruct the witness exactly as the tuple
                    # engine does, on the materialized system.
                    analysis_system = analysis_system_of()
                    invisible = [
                        (source, target)
                        for source in sorted(core, key=repr)
                        for target in analysis_system.successors(source)
                        if target in core and alpha(source) == alpha(target)
                    ]
                    invisible_system = System(
                        interner.schema,
                        invisible,
                        (),
                        name=f"{_source_name(concrete_source)}|invisible",
                    )
                    if states_on_cycles(invisible_system, core):
                        invisible_cycle = (
                            find_cycle_within(invisible_system, core) or ()
                        )
            if invisible_cycle is not None:
                return StabilizationResult(
                    CheckResult(
                        False,
                        name,
                        Witness(
                            WitnessKind.DIVERGENT_CYCLE,
                            "cycle of abstract-invisible steps inside the core",
                            invisible_cycle,
                            interner.schema,
                        ),
                    ),
                    legitimate,
                    core,
                    None,
                )

        with instrumentation.span("check.worst_case"):
            if compute_steps and not shared_has_cycle(
                kernel,
                outside_bits,
                runtime,
                drop_self=fairness_ignores_stutter,
            ):
                steps: Optional[int] = shared_longest_path(
                    kernel,
                    outside_bits,
                    runtime,
                    drop_self=fairness_ignores_stutter,
                )
            else:
                # Under strong fairness the sup over fair runs may be
                # unbounded when cycles remain outside the core;
                # report no finite metric.
                steps = None
        return StabilizationResult(
            CheckResult(
                True,
                name,
                detail=(
                    f"core has {len(core)} of {interner.schema.size()} states; "
                    f"legitimate spec states: {len(legitimate)}"
                ),
            ),
            legitimate,
            core,
            steps,
        )


def check_self_stabilization(
    system: SystemOrProgram,
    fairness: str = "none",
    compute_steps: bool = True,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    state_budget: Optional[int] = None,
    workers: int = 1,
    engine: str = "tuple",
) -> StabilizationResult:
    """Decide whether a system is self-stabilizing (stabilizing to itself).

    The paper notes the definition "allows the possibility that A is
    stabilizing to A" — this helper instantiates exactly that case,
    with the identity abstraction.
    """
    return check_stabilization(
        system,
        system,
        alpha=None,
        fairness=fairness,
        compute_steps=compute_steps,
        instrumentation=instrumentation,
        state_budget=state_budget,
        workers=workers,
        engine=engine,
    )


def worst_case_schedule(
    concrete: System, core: FrozenSet[State], fairness: str = "none"
) -> Tuple[State, ...]:
    """An explicit worst-case recovery: the longest transition path that
    stays outside ``core``, ending with its first step into it.

    The checker's ``worst_case_steps`` is the *length* of this path;
    this function materializes the path itself so the adversarial
    schedule can be inspected, rendered
    (:func:`repro.simulation.visualize.render_trace` via the states'
    environments), or replayed.

    Args:
        concrete: the verified system.
        core: its behavioural core (from :func:`behavioural_core` or a
            :class:`StabilizationResult`).
        fairness: must match the mode of the verification (self-loops
            are skipped for ``'weak'``/``'strong'``).

    Returns:
        The state sequence, starting at the worst state and ending at
        the first core state reached (empty when every state is in the
        core).

    Raises:
        ValueError: if a cycle outside ``core`` exists (no finite worst
            case).
    """
    system = (
        concrete.without_self_loops() if fairness in ("weak", "strong") else concrete
    )
    outside = [state for state in system.schema.states() if state not in core]
    outside_set = set(outside)
    depth: Dict[State, int] = {}
    best_next: Dict[State, Optional[State]] = {}
    in_progress: Set[State] = set()
    for root in outside:
        if root in depth:
            continue
        stack: List[Tuple[State, bool]] = [(root, False)]
        while stack:
            state, expanded = stack.pop()
            if expanded:
                best = 0
                choice: Optional[State] = None
                for successor in sorted(system.successors(state), key=repr):
                    if successor in outside_set:
                        candidate = 1 + depth[successor]
                    else:
                        candidate = 1
                    if candidate > best:
                        best = candidate
                        choice = successor
                depth[state] = best
                best_next[state] = choice
                in_progress.discard(state)
                continue
            if state in depth:
                continue
            if state in in_progress:
                raise ValueError("cycle outside the core; check stabilization first")
            in_progress.add(state)
            stack.append((state, True))
            for successor in system.successors(state):
                if successor in outside_set and successor not in depth:
                    if successor in in_progress:
                        raise ValueError(
                            "cycle outside the core; check stabilization first"
                        )
                    stack.append((successor, False))
    if not depth:
        return ()
    start = max(depth, key=lambda state: (depth[state], repr(state)))
    path: List[State] = [start]
    current: Optional[State] = start
    while current is not None and current in outside_set:
        current = best_next.get(current)
        if current is not None:
            path.append(current)
    return tuple(path)


def convergence_profile(
    concrete: System, core: FrozenSet[State], fairness: str = "none"
) -> Dict[int, int]:
    """Histogram of recovery depths: how many states sit each number of
    steps away from the core, under the *best-case* daemon.

    Depth 0 counts the core itself; depth ``d`` counts the states whose
    shortest escape into the core takes ``d`` transitions.  States that
    cannot reach the core at all are reported under depth ``-1`` (a
    verified-stabilizing system has none).  Complements
    :func:`worst_case_convergence_steps`, which is the max over the
    *adversarial* daemon; together they bracket every real daemon.

    Args:
        concrete: the system.
        core: its behavioural core.
        fairness: ``'weak'``/``'strong'`` ignore self-loops, matching
            the verification mode.
    """
    system = (
        concrete.without_self_loops() if fairness in ("weak", "strong") else concrete
    )
    # Reverse-BFS from the core.
    predecessors: Dict[State, List[State]] = {}
    for source, target in system.transitions():
        predecessors.setdefault(target, []).append(source)
    depth_of: Dict[State, int] = {state: 0 for state in core}
    frontier: List[State] = list(core)
    depth = 0
    while frontier:
        depth += 1
        next_frontier: List[State] = []
        for state in frontier:
            for predecessor in predecessors.get(state, ()):  # may be outside core
                if predecessor not in depth_of:
                    depth_of[predecessor] = depth
                    next_frontier.append(predecessor)
        frontier = next_frontier
    histogram: Dict[int, int] = {}
    for state in system.schema.states():
        bucket = depth_of.get(state, -1)
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return histogram
