"""Command-line interface: verify and simulate guarded-command programs.

Subcommands::

    python -m repro check FILE [--spec FILE] [--fairness MODE] ...
    python -m repro verify-tree DIR [--tier T] [--manifest F] ...
    python -m repro refines CONCRETE ABSTRACT [--relation R] ...
    python -m repro ring SYSTEM -n N [--fairness MODE]
    python -m repro simulate FILE [--steps N] [--seed S] ...
    python -m repro campaign [--smoke] [--resume] [--checkpoint F] ...
    python -m repro report RUN.jsonl [--events]
    python -m repro render FILE
    python -m repro synthesize FILE [--spec FILE]

``check`` decides self-stabilization of a program (or stabilization to
a second program over the same variables); ``verify-tree`` brings a
whole directory of specs to a verified state incrementally — verdicts
replay from a fingerprint manifest unless the spec changed, and each
re-verified spec runs at an adaptively selected tier (see
:mod:`repro.tiering` and ``docs/PERFORMANCE.md``); ``refines`` decides
one of
the paper's refinement relations between two programs; ``ring`` runs a
named token-ring verification from the reproduction; ``simulate`` runs
the random-daemon simulator and prints the trace tail; ``report``
summarizes an observability file written with ``--obs-out`` /
``--trace-out``; ``campaign`` sweeps a resilient fault-injection grid
over the derived rings with checkpoint/resume (see
:mod:`repro.campaign` and ``docs/ROBUSTNESS.md``); ``render``
pretty-prints a parsed program (normalizing whitespace and sugar).

The ``check``, ``refines``, ``ring``, ``simulate``, and ``campaign``
subcommands accept ``--obs-out PATH``: the run is then instrumented
and its structured record (counters, gauges, histograms, the span
trace tree, events) is written to ``PATH`` as JSON Lines, readable by
``repro report`` or any JSONL consumer.  ``repro report`` can also
export the record as Chrome ``trace_event`` JSON (``--format=trace``)
or Prometheus text (``--format=prom``).  The same subcommands accept
``--progress`` (render throttled ``progress.*`` heartbeats as live
stderr ticker lines) and ``--profile-out PATH`` (wrap the whole
command in ``cProfile`` and store the pstats dump).

All commands exit with status 0 when the checked property holds (or
the run completes) and 1 otherwise, printing the witness, so the CLI
is usable from shell scripts and CI.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from .checker import (
    check_convergence_refinement,
    check_everywhere_eventually_refinement,
    check_everywhere_refinement,
    check_init_refinement,
    check_self_stabilization,
    check_stabilization,
)
from .gcl.parser import parse_program
from .gcl.pretty import render_program
from .obs import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    ProgressTicker,
    Recorder,
    TeeInstrumentation,
    write_jsonl,
)
from .obs.report import summarize_text
from .simulation.runner import simulate

__all__ = ["main", "build_parser"]

_RELATIONS: Dict[str, Callable] = {
    "init": check_init_refinement,
    "everywhere": check_everywhere_refinement,
    "convergence": check_convergence_refinement,
    "everywhere-eventually": check_everywhere_eventually_refinement,
}

_RING_SYSTEMS = (
    "btr",
    "c1",
    "dijkstra4",
    "c2-composed",
    "dijkstra3",
    "c3",
    "c3-composed",
    "kstate",
)

_CAMPAIGN_SYSTEMS = ("dijkstra4", "dijkstra3", "c3-composed", "kstate", "btr")
_CAMPAIGN_SCHEDULERS = (
    "random", "round-robin", "starve-wrappers", "greedy-tokens"
)
_CAMPAIGN_INJECTORS = ("corrupt-1", "corrupt-3", "corrupt-all")


def _int_at_least(minimum: int) -> Callable[[str], int]:
    """An argparse ``type`` that rejects integers below ``minimum``.

    Bad values die at parse time with a one-line ``error: argument
    --steps: must be at least 1, got -5`` instead of surfacing later
    as a confusing simulator or checker failure.
    """

    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected an integer, got {text!r}"
            )
        if value < minimum:
            raise argparse.ArgumentTypeError(
                f"must be at least {minimum}, got {value}"
            )
        return value

    return parse


def _positive_float(text: str) -> float:
    """An argparse ``type`` for strictly positive real arguments."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _mem_budget(text: str) -> int:
    """An argparse ``type`` for ``--mem-budget`` ('512M', '2G', bytes)."""
    from .kernel.shared import parse_mem_budget

    try:
        return parse_mem_budget(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for --help tests and shell completion)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Convergence-refinement toolkit "
        "(reproduction of Demirbas & Arora, ICDCS 2002)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser(
        "check", help="check (self-)stabilization of a GCL program"
    )
    check.add_argument("program", help="path to the GCL program file")
    check.add_argument(
        "--spec",
        help="path to a specification program over the same variables "
        "(default: the program itself, i.e. self-stabilization)",
    )
    check.add_argument(
        "--fairness",
        choices=("none", "weak", "strong"),
        default="none",
        help="daemon fairness assumption (default: none)",
    )
    check.add_argument(
        "--stutter-insensitive",
        action="store_true",
        help="compare behaviours modulo stuttering",
    )
    _add_engine_flag(check)
    _add_parallel_flags(check)
    _add_obs_out(check)

    vtree = commands.add_parser(
        "verify-tree",
        help="incrementally verify every GCL spec under a directory: "
        "unchanged specs replay manifest verdicts byte for byte, "
        "changed ones re-verify at an adaptively selected tier",
    )
    vtree.add_argument(
        "root", help="directory walked recursively for *.gcl spec files"
    )
    vtree.add_argument(
        "--manifest", metavar="PATH",
        help="fingerprint manifest from the previous run "
        "(default: ROOT/.repro-verify/manifest.json)",
    )
    vtree.add_argument(
        "--ledger", metavar="PATH",
        help="persisted per-spec risk ledger feeding tier selection "
        "(default: ROOT/.repro-verify/ledger.json)",
    )
    vtree.add_argument(
        "--tier", choices=("light", "standard", "thorough"), default=None,
        help="pin every re-verified spec to one tier instead of "
        "adaptive selection; manifest entries verified at another "
        "tier are re-verified (default: select per spec from size "
        "and verdict history)",
    )
    vtree.add_argument(
        "--fairness", choices=("none", "weak", "strong"), default="none",
        help="daemon fairness for the exhaustive tiers; part of the "
        "fingerprint, so changing it invalidates the manifest "
        "(default: none)",
    )
    vtree.add_argument(
        "--seed", type=_int_at_least(0), default=0,
        help="RNG seed for LIGHT-tier Monte-Carlo estimates; a "
        "manifest parameter (default: 0)",
    )
    vtree.add_argument(
        "--workers", type=_int_at_least(1), default=1, metavar="N",
        help="worker processes to fan re-verified specs across "
        "(default: 1; the verdict stream is identical at every count)",
    )
    _add_engine_flag(vtree)
    _add_obs_out(vtree)

    refines = commands.add_parser(
        "refines", help="check a refinement relation between two programs"
    )
    refines.add_argument("concrete", help="path to the implementation program")
    refines.add_argument("abstract", help="path to the specification program")
    refines.add_argument(
        "--relation",
        choices=sorted(_RELATIONS),
        default="convergence",
        help="which relation to decide (default: convergence)",
    )
    refines.add_argument("--stutter-insensitive", action="store_true")
    refines.add_argument(
        "--open-systems",
        action="store_true",
        help="treat both programs as open systems (wrappers): skip the "
        "maximality clauses",
    )
    _add_obs_out(refines)

    ring = commands.add_parser(
        "ring", help="verify a named token-ring system from the paper"
    )
    ring.add_argument("system", choices=_RING_SYSTEMS)
    ring.add_argument("-n", "--processes", type=_int_at_least(3), default=4)
    ring.add_argument("-k", type=_int_at_least(2), default=None,
                      help="counter modulus for kstate (default: n)")
    ring.add_argument(
        "--fairness", choices=("none", "weak", "strong"), default=None,
        help="daemon fairness (default: the weakest known-sufficient mode)",
    )
    _add_obs_out(ring)

    sim = commands.add_parser("simulate", help="simulate a GCL program")
    sim.add_argument("program", help="path to the GCL program file")
    sim.add_argument("--steps", type=_int_at_least(1), default=100)
    sim.add_argument(
        "--seed", type=_int_at_least(0), default=0,
        help="RNG seed for the random daemon (default 0; recorded in "
        "the run metadata)",
    )
    sim.add_argument(
        "--tail", type=_int_at_least(0), default=10,
        help="how many final events to print",
    )
    sim.add_argument(
        "--trace-out",
        metavar="PATH",
        help="archive the full trace as JSON Lines (replayable via "
        "'repro report' and Trace.from_jsonl)",
    )
    _add_obs_out(sim)

    camp = commands.add_parser(
        "campaign",
        help="sweep a resilient fault-injection campaign over the "
        "derived rings (checkpoint/resume, per-run timeouts, budgeted "
        "verification)",
    )
    camp.add_argument(
        "--systems", nargs="+", choices=_CAMPAIGN_SYSTEMS,
        default=None, metavar="SYSTEM",
        help="systems to sweep (default: every stabilizing ring; "
        f"known: {', '.join(_CAMPAIGN_SYSTEMS)})",
    )
    camp.add_argument(
        "--sizes", nargs="+", type=_int_at_least(3), default=[3, 4],
        metavar="N", help="ring sizes to sweep (default: 3 4)",
    )
    camp.add_argument(
        "--schedulers", nargs="+", choices=_CAMPAIGN_SCHEDULERS,
        default=["random"], metavar="SCHED",
        help="daemons to sweep (default: random; known: "
        f"{', '.join(_CAMPAIGN_SCHEDULERS)})",
    )
    camp.add_argument(
        "--injectors", nargs="+", choices=_CAMPAIGN_INJECTORS,
        default=["corrupt-all"], metavar="INJ",
        help="fault injectors to sweep (default: corrupt-all; known: "
        f"{', '.join(_CAMPAIGN_INJECTORS)})",
    )
    camp.add_argument(
        "--seeds", type=_int_at_least(1), default=3,
        help="seed indices per grid point (default: 3)",
    )
    camp.add_argument(
        "--seed", type=_int_at_least(0), default=0,
        help="campaign master seed; every cell derives its own "
        "sub-seed from it (default: 0)",
    )
    camp.add_argument(
        "--steps", type=_int_at_least(1), default=5000,
        help="step budget per simulation run (default: 5000)",
    )
    camp.add_argument(
        "--faults", type=_int_at_least(1), default=1,
        help="transient faults injected per run (default: 1)",
    )
    camp.add_argument(
        "--deadline", type=_positive_float, default=10.0,
        help="wall-clock budget per run in seconds (default: 10)",
    )
    camp.add_argument(
        "--retries", type=_int_at_least(0), default=1,
        help="extra attempts after a crashed cell (default: 1)",
    )
    camp.add_argument(
        "--state-budget", type=_int_at_least(1), default=500_000,
        help="state cap for verification cells; past it the checker "
        "reports PARTIAL instead of exhausting memory "
        "(default: 500000)",
    )
    camp.add_argument(
        "--with-check", action="store_true",
        help="also run one budget-capped stabilization check per "
        "(system, size)",
    )
    camp.add_argument(
        "--checkpoint", metavar="PATH",
        help="tagged-JSONL checkpoint file: one line per completed "
        "cell, flushed incrementally; required for --resume",
    )
    camp.add_argument(
        "--resume", action="store_true",
        help="continue from the checkpoint, skipping completed cells",
    )
    camp.add_argument(
        "--trace-out", metavar="DIR",
        help="archive the trace of every suspected-divergence run "
        "under DIR (replayable via 'repro report')",
    )
    camp.add_argument(
        "--early-stop", type=_int_at_least(1), default=None, metavar="N",
        help="stop sweeping a grid cell class (same system, size, "
        "scheduler, injector) once its last N outcomes are identical; "
        "skipped cells are recorded as first-class 'earlystop' "
        "results (default: sweep every seed)",
    )
    camp.add_argument(
        "--smoke", action="store_true",
        help="run the small fixed CI grid (two systems, one seed, "
        "budgeted checks) regardless of the axis flags",
    )
    _add_engine_flag(camp)
    _add_parallel_flags(camp)
    _add_obs_out(camp)

    report = commands.add_parser(
        "report",
        help="summarize an observability JSONL file (run records "
        "written with --obs-out, traces written with --trace-out)",
    )
    report.add_argument("run", help="path to the JSONL file")
    report.add_argument(
        "--events",
        action="store_true",
        help="list every event instead of aggregating by name",
    )
    report.add_argument(
        "--format",
        choices=("text", "trace", "prom"),
        default="text",
        help="output format: 'text' human summary (default), 'trace' "
        "Chrome trace_event JSON (open in chrome://tracing or "
        "Perfetto), 'prom' Prometheus text exposition (textfile "
        "collector compatible)",
    )

    render = commands.add_parser("render", help="parse and pretty-print a program")
    render.add_argument("program", help="path to the GCL program file")

    synth = commands.add_parser(
        "synthesize",
        help="synthesize a stabilization wrapper for a program and print "
        "it as GCL",
    )
    synth.add_argument("program", help="path to the GCL program file")
    synth.add_argument(
        "--spec",
        help="specification program over the same variables "
        "(default: the program itself)",
    )
    synth.add_argument("--stutter-insensitive", action="store_true")

    return parser


def _add_engine_flag(subparser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--engine`` flag (vector/packed kernels vs tuple)."""
    subparser.add_argument(
        "--engine", choices=("packed", "tuple", "vector", "shared"),
        default="packed",
        help="checker engine: 'shared' streams chunked frontiers through "
        "shared-memory segments with out-of-core spill (mega state spaces "
        "in bounded RSS; see --mem-budget); 'vector' batch-evaluates whole "
        "frontiers as NumPy arrays (needs the repro[vector] extra; falls "
        "back to packed without it); 'packed' runs dense state codes and "
        "bitset fixpoints (falls back to tuple automatically where packing "
        "cannot apply); 'tuple' is the reference set-based engine. "
        "Verdicts are identical either way (default: packed)",
    )
    subparser.add_argument(
        "--mem-budget", metavar="BYTES", type=_mem_budget, default=None,
        help="in-RAM budget for the shared engine's resident arrays, as "
        "bytes or a suffixed size ('512M', '2G'); activates a memory "
        "context, so '--engine vector' upgrades to the shared engine "
        "where it applies and collections past the budget spill to disk "
        "(default: no context; the shared engine runs with its built-in "
        "budget only when requested explicitly)",
    )
    subparser.add_argument(
        "--spill-dir", metavar="DIR", default=None,
        help="parent directory for the shared engine's run-scoped spill "
        "files (default: the system temp dir); the run's subdirectory "
        "is removed when the check ends, success or not",
    )


def _add_parallel_flags(subparser: argparse.ArgumentParser) -> None:
    """Attach the shared execution flags.

    ``--workers`` / ``--cache-dir`` select parallelism and caching;
    ``--task-timeout`` / ``--max-task-retries`` tune the supervision
    policy worker tasks run under; ``--chaos`` injects a deterministic
    fault plan (see :mod:`repro.resilience.chaos` and
    ``docs/ROBUSTNESS.md``) so the recovery paths can be exercised on
    demand — the ``REPRO_CHAOS`` environment variable is the
    flag-less equivalent.
    """
    subparser.add_argument(
        "--workers", type=_int_at_least(1), default=1, metavar="N",
        help="worker processes for the state-space phases (default: 1; "
        "the verdict is identical at every worker count)",
    )
    subparser.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed verification cache: verdicts are keyed "
        "by the canonical program fingerprint plus the checker "
        "parameters, so re-checking an unchanged spec is a file read",
    )
    subparser.add_argument(
        "--task-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help="wall-clock budget per worker task; a task past it is "
        "killed and retried under the supervision policy "
        "(default: no timeout)",
    )
    subparser.add_argument(
        "--max-task-retries", type=_int_at_least(0), default=None,
        metavar="N",
        help="abnormal failures (worker death, timeout) tolerated per "
        "task before it is quarantined to an inline sequential run "
        "(default: 2; the verdict is identical either way)",
    )
    subparser.add_argument(
        "--chaos", metavar="PLAN",
        help="deterministic fault plan to inject — inline JSON or a "
        "file path (see docs/ROBUSTNESS.md); also read from the "
        "REPRO_CHAOS environment variable when the flag is absent",
    )


def _add_obs_out(subparser: argparse.ArgumentParser) -> None:
    """Attach the shared observability flags.

    ``--obs-out`` records the run; ``--progress`` renders live
    heartbeat ticker lines; ``--profile-out`` wraps the whole command
    in ``cProfile``.  The three compose freely.
    """
    subparser.add_argument(
        "--obs-out",
        metavar="PATH",
        help="write the structured run record (counters, gauges, "
        "histograms, span trace tree, events) to PATH as JSON Lines; "
        "inspect with 'repro report' or export with --format=trace/prom",
    )
    subparser.add_argument(
        "--progress",
        action="store_true",
        help="render throttled progress.* heartbeats (round, frontier "
        "size, states/sec, RSS) as live stderr ticker lines",
    )
    subparser.add_argument(
        "--profile-out",
        metavar="PATH",
        help="profile the whole command under cProfile and store the "
        "pstats dump at PATH (inspect with python -m pstats)",
    )


@contextmanager
def _memory_context(args) -> Iterator[None]:
    """Activate the shared-engine memory context the flags ask for.

    A no-op unless ``--mem-budget`` or ``--spill-dir`` was given (or
    the command has no such flags).  With either flag the wrapped
    command runs under :func:`repro.kernel.shared.using_memory_budget`,
    which both parameterizes the shared engine and makes a
    ``--engine vector`` request upgrade to it where it applies.
    """
    budget = getattr(args, "mem_budget", None)
    spill_dir = getattr(args, "spill_dir", None)
    if budget is None and spill_dir is None:
        yield
        return
    from .kernel.shared import using_memory_budget

    with using_memory_budget(budget=budget, spill_dir=spill_dir):
        yield


@contextmanager
def _resilience_context(args) -> Iterator[None]:
    """Activate the supervision policy and fault plan the flags ask for.

    The chaos plan comes from ``--chaos`` (inline JSON or a file path)
    or, when the flag is absent, the ``REPRO_CHAOS`` environment
    variable.  Its seed is folded into the supervision policy, so one
    plan fully determines both the injected faults and the retry
    backoff schedule.  Commands without the execution flags run under
    the defaults — the wrapper is then a no-op.
    """
    from .resilience import (
        DEFAULT_POLICY,
        SupervisionPolicy,
        load_plan,
        using_chaos,
        using_policy,
    )

    spec = getattr(args, "chaos", None) or os.environ.get("REPRO_CHAOS")
    plan = load_plan(spec) if spec else None
    retries = getattr(args, "max_task_retries", None)
    policy = SupervisionPolicy(
        task_timeout=getattr(args, "task_timeout", None),
        max_task_retries=(
            DEFAULT_POLICY.max_task_retries if retries is None else retries
        ),
        seed=plan.seed if plan is not None else DEFAULT_POLICY.seed,
    )
    with using_policy(policy), using_chaos(plan):
        yield


def _recorder_for(args, kind: str):
    """The instrumentation stack the flags of ``args`` ask for.

    Returns ``(instrumentation, recorder_or_None)``: a
    :class:`Recorder` when ``--obs-out`` was given, a
    :class:`ProgressTicker` when ``--progress`` was given, both teed
    together when both were — and the null object when neither.
    """
    recorder: Optional[Recorder] = None
    sinks: List[Instrumentation] = []
    if getattr(args, "obs_out", None):
        recorder = Recorder(kind=kind)
        sinks.append(recorder)
    if getattr(args, "progress", False):
        sinks.append(ProgressTicker())
    if not sinks:
        return NULL_INSTRUMENTATION, None
    if len(sinks) == 1:
        return sinks[0], recorder
    return TeeInstrumentation(*sinks), recorder


def _flush_recorder(args, recorder: Optional[Recorder]) -> None:
    """Persist the run record when one was collected."""
    if recorder is not None:
        write_jsonl([recorder.record()], args.obs_out)
        print(f"run record written to {args.obs_out}", file=sys.stderr)


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_program(handle.read())


def _cmd_check(args) -> int:
    instrumentation, recorder = _recorder_for(args, "check")
    program = _load(args.program)
    spec_program = _load(args.spec) if args.spec else None
    cache = key = None
    if args.cache_dir:
        from .parallel import VerificationCache, cache_key, program_fingerprint

        # The semantics flags are part of the fingerprint: the same
        # source under a different daemon semantics or fairness mode is
        # a different transition system.  The engine (like the worker
        # count) is excluded — verdicts are identical across engines.
        semantics = {"keep_stutter": True, "fairness": args.fairness}
        fingerprints = [program_fingerprint(program, semantics=semantics)]
        if spec_program is not None:
            fingerprints.append(
                program_fingerprint(spec_program, semantics=semantics)
            )
        key = cache_key(
            "check",
            fingerprints,
            {
                "fairness": args.fairness,
                "stutter_insensitive": args.stutter_insensitive,
                "self": spec_program is None,
            },
        )
        cache = VerificationCache(args.cache_dir, instrumentation)
        hit = cache.get(key)
        if hit is not None:
            print(hit["text"])
            print("verification cache: hit", file=sys.stderr)
            _flush_recorder(args, recorder)
            return 0 if hit["holds"] else 1
    instrumentation.annotate(
        program=args.program, fairness=args.fairness,
        stutter_insensitive=args.stutter_insensitive, workers=args.workers,
        engine=args.engine,
    )
    # The program goes to the checker uncompiled: the packed engine
    # lowers it straight to a successor kernel (no transition table);
    # the tuple engine compiles it itself.  Verdicts are identical.
    if spec_program is not None:
        instrumentation.annotate(spec=args.spec)
        result = check_stabilization(
            program,
            spec_program,
            stutter_insensitive=args.stutter_insensitive,
            fairness=args.fairness,
            instrumentation=instrumentation,
            workers=args.workers,
            engine=args.engine,
        )
    else:
        result = check_self_stabilization(
            program, fairness=args.fairness, instrumentation=instrumentation,
            workers=args.workers, engine=args.engine,
        )
    print(result.format())
    if cache is not None and key is not None and not result.is_partial:
        cache.put(key, {"holds": result.holds, "text": result.format()})
        print("verification cache: stored", file=sys.stderr)
    _flush_recorder(args, recorder)
    return 0 if result.holds else 1


def _cmd_verify_tree(args) -> int:
    from .tiering import Tier, verify_tree

    instrumentation, recorder = _recorder_for(args, "verify-tree")
    instrumentation.annotate(
        root=args.root, fairness=args.fairness, engine=args.engine,
        workers=args.workers, tier=args.tier, seed=args.seed,
    )
    report = verify_tree(
        args.root,
        manifest_path=args.manifest,
        ledger_path=args.ledger,
        forced_tier=Tier(args.tier) if args.tier else None,
        fairness=args.fairness,
        engine=args.engine,
        seed=args.seed,
        workers=args.workers,
        instrumentation=instrumentation,
    )
    _flush_recorder(args, recorder)
    return 0 if report.ok else 1


def _cmd_refines(args) -> int:
    instrumentation, recorder = _recorder_for(args, "refines")
    concrete = _load(args.concrete).compile()
    abstract = _load(args.abstract).compile()
    instrumentation.annotate(
        concrete=args.concrete, abstract=args.abstract, relation=args.relation
    )
    checkfn = _RELATIONS[args.relation]
    kwargs = {"instrumentation": instrumentation}
    if args.relation != "everywhere-eventually":
        kwargs["stutter_insensitive"] = args.stutter_insensitive
        kwargs["open_systems"] = args.open_systems
    result = checkfn(concrete, abstract, **kwargs)
    print(result.format())
    _flush_recorder(args, recorder)
    return 0 if result.holds else 1


def _cmd_ring(args) -> int:
    from .rings import (
        btr3_abstraction,
        btr4_abstraction,
        btr_program,
        c1_program,
        c2_program,
        c3_composed,
        c3_program,
        dijkstra_four_state,
        dijkstra_three_state,
        kstate_program,
        utr_program,
        utr_abstraction,
        w1_local_program,
        w2_refined_program,
    )

    def c2_composed(n_processes: int):
        return (
            c2_program(n_processes)
            .merged_with(w1_local_program(n_processes))
            .merged_with(
                w2_refined_program(n_processes), name="C2 [] W1'' [] W2'"
            )
        )

    n = args.processes
    # (builder, spec builder, abstraction builder, weakest fairness, stutter)
    table = {
        "btr": (btr_program, btr_program, None, "none", False),
        "c1": (c1_program, btr_program, btr4_abstraction, "none", False),
        "dijkstra4": (dijkstra_four_state, btr_program, btr4_abstraction, "none", False),
        "c2-composed": (c2_composed, btr_program, btr3_abstraction, "strong", False),
        "dijkstra3": (dijkstra_three_state, btr_program, btr3_abstraction, "none", False),
        "c3": (c3_program, btr_program, btr3_abstraction, "strong", True),
        "c3-composed": (c3_composed, btr_program, btr3_abstraction, "strong", True),
        "kstate": (None, None, None, "none", False),
    }
    if args.system == "kstate":
        k = args.k or n
        system = kstate_program(n, k).compile()
        spec = utr_program(n).compile()
        alpha = utr_abstraction(n, k)
        fairness = args.fairness or "none"
        stutter = False
    else:
        builder, spec_builder, alpha_builder, default_fairness, stutter = table[
            args.system
        ]
        system = builder(n).compile()
        spec = spec_builder(n).compile()
        alpha = alpha_builder(n) if alpha_builder else None
        fairness = args.fairness or default_fairness
    instrumentation, recorder = _recorder_for(args, "ring")
    instrumentation.annotate(system=args.system, n=n, fairness=fairness)
    result = check_stabilization(
        system, spec, alpha, stutter_insensitive=stutter, fairness=fairness,
        instrumentation=instrumentation,
    )
    print(f"fairness assumption: {fairness}")
    print(result.format())
    _flush_recorder(args, recorder)
    return 0 if result.holds else 1


def _cmd_simulate(args) -> int:
    instrumentation, recorder = _recorder_for(args, "simulate")
    program = _load(args.program)
    trace = simulate(
        program, args.steps, seed=args.seed, instrumentation=instrumentation
    )
    schema = program.schema()
    print(f"initial: {schema.format_state(program.state_of(trace.initial))}")
    events = trace.events
    skipped = max(0, len(events) - args.tail)
    if skipped:
        print(f"... {skipped} earlier events ...")
    for event in events[skipped:]:
        state = program.state_of(event.env)
        print(f"[{event.kind}] {event.label}: {schema.format_state(state)}")
    print(f"total: {trace.step_count()} steps, {trace.fault_count()} faults")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(trace.to_jsonl())
        print(f"trace archived to {args.trace_out}", file=sys.stderr)
    _flush_recorder(args, recorder)
    return 0


def _cmd_campaign(args) -> int:
    from .campaign import (
        CampaignConfig,
        build_grid,
        run_campaign,
        summarize_campaign,
    )
    from .campaign.grid import DEFAULT_SYSTEMS

    if args.smoke:
        cells = build_grid(
            systems=("dijkstra4", "dijkstra3"), sizes=(3,),
            schedulers=("random",), injectors=("corrupt-all",),
            seeds=1, with_check=True,
        )
        config = CampaignConfig(
            steps=1000, deadline=30.0, retries=args.retries,
            seed=args.seed, state_budget=100_000,
            checkpoint=args.checkpoint, trace_dir=args.trace_out,
            workers=args.workers, cache_dir=args.cache_dir,
            engine=args.engine, early_stop=args.early_stop,
        )
    else:
        cells = build_grid(
            systems=tuple(args.systems or DEFAULT_SYSTEMS),
            sizes=tuple(args.sizes),
            schedulers=tuple(args.schedulers),
            injectors=tuple(args.injectors),
            seeds=args.seeds,
            with_check=args.with_check,
        )
        config = CampaignConfig(
            steps=args.steps, deadline=args.deadline,
            retries=args.retries, seed=args.seed,
            fault_count=args.faults, state_budget=args.state_budget,
            checkpoint=args.checkpoint, trace_dir=args.trace_out,
            workers=args.workers, cache_dir=args.cache_dir,
            engine=args.engine, early_stop=args.early_stop,
        )
    instrumentation, recorder = _recorder_for(args, "campaign")

    def progress(cell, result) -> None:
        print(
            f"[{result.status.value}] {result.cell_id} "
            f"({result.seconds:.2f}s)",
            file=sys.stderr,
        )

    result = run_campaign(
        cells, config, resume=args.resume,
        instrumentation=instrumentation, on_cell=progress,
    )
    print(summarize_campaign(result))
    if result.interrupted:
        print(
            "interrupted; resume with --resume and the same axes",
            file=sys.stderr,
        )
    _flush_recorder(args, recorder)
    return 0 if result.ok else 1


def _cmd_report(args) -> int:
    with open(args.run, "r", encoding="utf-8") as handle:
        text = handle.read()
    if args.format != "text":
        from .obs import chrome_trace, loads_jsonl, prometheus_text

        records = loads_jsonl(text)
        if args.format == "trace":
            print(chrome_trace(records))
        else:
            sys.stdout.write(prometheus_text(records))
        return 0
    print(summarize_text(text, events=args.events))
    return 0


def _cmd_render(args) -> int:
    print(render_program(_load(args.program)))
    return 0


def _cmd_synthesize(args) -> int:
    from .synthesis import synthesize_wrapper, system_to_program

    program = _load(args.program)
    system = program.compile()
    spec = _load(args.spec).compile() if args.spec else system
    result = synthesize_wrapper(
        system, spec, stutter_insensitive=args.stutter_insensitive
    )
    print(f"# {result.summary()}", file=sys.stderr)
    wrapper_program = system_to_program(
        result.wrapper, list(program.variables),
        name=f"{program.name}_wrapper",
    )
    print(render_program(wrapper_program))
    return 0 if result.holds else 1


_DISPATCH = {
    "check": _cmd_check,
    "verify-tree": _cmd_verify_tree,
    "refines": _cmd_refines,
    "ring": _cmd_ring,
    "simulate": _cmd_simulate,
    "campaign": _cmd_campaign,
    "report": _cmd_report,
    "render": _cmd_render,
    "synthesize": _cmd_synthesize,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    command = _DISPATCH[args.command]
    try:
        with _resilience_context(args), _memory_context(args):
            profile_out = getattr(args, "profile_out", None)
            if profile_out:
                import cProfile

                profiler = cProfile.Profile()
                try:
                    return profiler.runcall(command, args)
                finally:
                    profiler.dump_stats(profile_out)
                    print(
                        f"profile written to {profile_out}", file=sys.stderr
                    )
            return command(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. `repro report ... | head`);
        # suppress the interpreter's close-time flush error too.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # surfaced as a clean CLI error, not a traceback
        from .core.errors import ReproError

        if isinstance(exc, ReproError):
            print(f"error: {exc}", file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
