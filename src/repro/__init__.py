"""repro — a reproduction of *Convergence Refinement* (Demirbas & Arora, ICDCS 2002).

The library provides, from scratch:

* the paper's core theory — systems, computations, convergence
  isomorphism, refinement relations, stabilization, box composition,
  abstraction functions, and executable theorem schemas
  (:mod:`repro.core`);
* a guarded-command language with parser, pretty-printer, and daemon
  semantics (:mod:`repro.gcl`);
* the complete token-ring protocol family of Sections 3-6 plus the
  K-state protocol of the companion report (:mod:`repro.rings`);
* finite-state decision procedures with counterexample witnesses
  (:mod:`repro.checker`);
* a fault-injection simulation substrate for scales beyond exhaustive
  checking (:mod:`repro.simulation`);
* the paper's introductory counterexamples (:mod:`repro.counterexamples`);
* sweep/statistics helpers used by the benchmark harness
  (:mod:`repro.analysis`).

Quickstart::

    from repro.rings import dijkstra_three_state, btr_token_mapping, btr_program
    from repro.checker import check_stabilization

    concrete = dijkstra_three_state(n_processes=4).compile()
    abstract = btr_program(n_processes=4).compile()
    alpha = btr_token_mapping(n_processes=4, k=3)
    print(check_stabilization(concrete, abstract, alpha).format())
"""

__version__ = "1.0.0"

__all__ = ["core", "gcl", "rings", "checker", "simulation", "counterexamples", "analysis"]
