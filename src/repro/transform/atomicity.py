"""Atomicity refinement: a compiler pass that splits guarded actions.

The paper opens with a compiler that destroys fault-tolerance: javac
turns the atomic ``while (x == x) x := 0`` into bytecode whose guard
evaluation straddles two reads, and a corruption between them escapes
the loop.  This module implements that phenomenon as a *generic,
reusable pass* over guarded-command programs — the kind of refinement
tool whose tolerance behaviour the paper says should be studied:

``sequentialize_action`` compiles one atomic action

.. code-block:: text

    act :: g --> x := e, y := f

into a fetch/execute pair over an explicit program counter and value
latches (the compiled registers of the bytecode example):

.. code-block:: text

    act.fetch :: pc.act == 0 && g --> lat.act.x := e,
                                      lat.act.y := f, pc.act := 1
    act.exec  :: pc.act == 1      --> x := lat.act.x,
                                      y := lat.act.y, pc.act := 0

In the absence of faults the pair refines the original action modulo
stuttering (the fetch is invisible at the original state space) as
long as no *other* action invalidates the latched values in between —
and with faults, the new registers are corruptible state, exactly the
extra challenge the paper's introduction describes.  The reproduction
uses the pass to show mechanically which systems survive this
refinement and which need a (synthesizable) repair wrapper; see
``bench_atomicity.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.errors import GCLError
from ..gcl.action import GuardedAction
from ..gcl.domain import IntRange
from ..gcl.expr import And, Const, Eq, Expr, Var
from ..gcl.program import Program
from ..gcl.variable import Variable

__all__ = ["pc_name", "latch_name", "sequentialize_action", "sequentialize"]


def pc_name(action_name: str) -> str:
    """The program-counter variable introduced for ``action_name``."""
    return f"pc.{action_name}"


def latch_name(action_name: str, variable: str) -> str:
    """The value latch introduced for ``variable`` in ``action_name``."""
    return f"lat.{action_name}.{variable}"


def sequentialize_action(program: Program, action_name: str) -> Program:
    """Split one action of ``program`` into a fetch/execute pair.

    Args:
        program: the source program.
        action_name: name of the action to compile; every other action
            is kept verbatim.

    Returns:
        A new program with the added ``pc.<action>`` counter and one
        ``lat.<action>.<var>`` latch per assigned variable (latch
        domains equal the assigned variables' domains); initial states
        extend the originals with ``pc = 0`` and latches at their
        domains' first value.

    Raises:
        GCLError: if no such action exists or the introduced names
            collide with declared variables.
    """
    by_name = {action.name: action for action in program.actions}
    if action_name not in by_name:
        raise GCLError(f"program has no action named {action_name!r}")
    action = by_name[action_name]

    pc_var = pc_name(action_name)
    new_variables: List[Variable] = list(program.variables)
    declared = {variable.name for variable in new_variables}
    if pc_var in declared:
        raise GCLError(f"variable name collision on {pc_var!r}")
    new_variables.append(Variable(pc_var, IntRange(0, 1)))
    latch_of: Dict[str, str] = {}
    for target in sorted(action.assignments):
        latch = latch_name(action_name, target)
        if latch in declared:
            raise GCLError(f"variable name collision on {latch!r}")
        latch_of[target] = latch
        new_variables.append(
            Variable(latch, program.variable(target).domain)
        )

    fetch_effects: Dict[str, Expr] = {
        latch_of[target]: expr for target, expr in action.assignments.items()
    }
    fetch_effects[pc_var] = Const(1)
    fetch = GuardedAction(
        f"{action_name}.fetch",
        And(Eq(Var(pc_var), Const(0)), action.guard),
        fetch_effects,
    )
    exec_effects: Dict[str, Expr] = {
        target: Var(latch_of[target]) for target in action.assignments
    }
    exec_effects[pc_var] = Const(0)
    execute = GuardedAction(
        f"{action_name}.exec", Eq(Var(pc_var), Const(1)), exec_effects
    )

    new_actions: List[GuardedAction] = []
    for existing in program.actions:
        if existing.name == action_name:
            new_actions.extend((fetch, execute))
        else:
            new_actions.append(existing)

    original_init = list(program.initial_states())
    extended_init = []
    for state in original_init:
        assignment = dict(program.env_of(state))
        assignment[pc_var] = 0
        for target, latch in latch_of.items():
            assignment[latch] = program.variable(target).domain.values[0]
        extended_init.append(assignment)

    return Program(
        f"{program.name}|seq({action_name})",
        new_variables,
        new_actions,
        init=extended_init or None,
    )


def sequentialize(
    program: Program, actions: Optional[Sequence[str]] = None
) -> Program:
    """Split several (default: all) actions into fetch/execute pairs.

    The passes compose left to right; each adds its own counter and
    latches.  State-space growth is the product of the added domains —
    intended for the small instances the checker verifies.
    """
    names = list(actions) if actions is not None else [
        action.name for action in program.actions
    ]
    result = program
    for name in names:
        result = sequentialize_action(result, name)
    final_name = f"{program.name}|seq"
    return result.with_actions(result.actions, name=final_name).with_init(
        list(
            dict(result.env_of(state)) for state in result.initial_states()
        )
        or None,
        name=final_name,
    )
