"""Program mutation: robustness probes for protocols and checker alike.

A verifier that accepts everything is worthless; a protocol whose
every detail can be perturbed without consequence was over-specified.
This module generates small syntactic mutants of a guarded-command
program — swapped variable references, constant tweaks, dropped
actions, guard negations — so the test- and benchmark-suites can
measure how many mutants the stabilization checker *kills*.  On
Dijkstra's rings nearly every mutant dies, which simultaneously
certifies the protocol's economy and the checker's discrimination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..gcl.action import GuardedAction
from ..gcl.expr import (
    Add,
    AddMod,
    And,
    Const,
    Eq,
    Expr,
    Ge,
    Gt,
    Implies,
    Ite,
    Le,
    Lt,
    Mod,
    Mul,
    Ne,
    Not,
    Or,
    Sub,
    SubMod,
    Var,
)
from ..gcl.program import Program

__all__ = ["Mutant", "mutants"]


@dataclass(frozen=True)
class Mutant:
    """One generated mutant.

    Attributes:
        description: what was changed, human-readable.
        program: the mutated program (same variables and initial
            characterization as the original).
    """

    description: str
    program: Program


def _substitute_var(expr: Expr, old: str, new: str) -> Expr:
    """Rebuild ``expr`` with every ``Var(old)`` replaced by ``Var(new)``."""
    if isinstance(expr, Var):
        return Var(new) if expr.name == old else expr
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Not):
        return Not(_substitute_var(expr.operand, old, new))
    if isinstance(expr, (AddMod, SubMod)):
        rebuilt = type(expr)(
            _substitute_var(expr.left, old, new),
            _substitute_var(expr.right, old, new),
            expr.modulus,
        )
        return rebuilt
    if isinstance(expr, Ite):
        return Ite(
            _substitute_var(expr.condition, old, new),
            _substitute_var(expr.then, old, new),
            _substitute_var(expr.otherwise, old, new),
        )
    if isinstance(expr, (And, Or, Implies, Eq, Ne, Lt, Le, Gt, Ge, Add, Sub,
                         Mul, Mod)):
        return type(expr)(
            _substitute_var(expr.left, old, new),
            _substitute_var(expr.right, old, new),
        )
    raise TypeError(f"unhandled expression node {type(expr).__name__}")


def _with_replaced_action(
    program: Program, index: int, replacement: GuardedAction
) -> Program:
    actions = list(program.actions)
    actions[index] = replacement
    return program.with_actions(actions, name=f"{program.name}~mut")


def mutants(program: Program, limit: Optional[int] = None) -> List[Mutant]:
    """Generate syntactic mutants of ``program``.

    Operators applied, in order, deduplicated against the original:

    * **drop-action** — remove one action entirely;
    * **negate-guard** — wrap one action's guard in ``!``;
    * **swap-variable** — in one action's guard, replace the first
      occurrence of one variable by a different declared variable of
      the same domain;
    * **swap-assignment-variable** — the same inside one assignment's
      right-hand side.

    Args:
        program: the source (never modified).
        limit: optional cap on the number of mutants returned.

    Returns:
        The list of mutants, each with a description of the change.
        Mutants that fail to build (e.g. a swap creating an
        out-of-domain write is impossible here since domains match)
        are skipped.
    """
    produced: List[Mutant] = []
    variables_by_domain: Dict[object, List[str]] = {}
    for variable in program.variables:
        variables_by_domain.setdefault(variable.domain, []).append(variable.name)

    def same_domain_alternatives(name: str) -> List[str]:
        domain = program.variable(name).domain
        return [other for other in variables_by_domain[domain] if other != name]

    # drop-action
    if len(program.actions) > 1:
        for index, action in enumerate(program.actions):
            actions = [a for i, a in enumerate(program.actions) if i != index]
            produced.append(
                Mutant(
                    f"drop action {action.name}",
                    program.with_actions(actions, name=f"{program.name}~mut"),
                )
            )

    # negate-guard
    for index, action in enumerate(program.actions):
        mutated = GuardedAction(action.name, Not(action.guard), action.assignments)
        produced.append(
            Mutant(
                f"negate guard of {action.name}",
                _with_replaced_action(program, index, mutated),
            )
        )

    # swap-variable in guards
    for index, action in enumerate(program.actions):
        for name in sorted(action.guard.free_variables()):
            for other in same_domain_alternatives(name):
                new_guard = _substitute_var(action.guard, name, other)
                if new_guard == action.guard:
                    continue
                mutated = GuardedAction(action.name, new_guard, action.assignments)
                produced.append(
                    Mutant(
                        f"in guard of {action.name}: {name} -> {other}",
                        _with_replaced_action(program, index, mutated),
                    )
                )
                break  # one alternative per variable keeps the set small

    # swap-variable in assignments
    for index, action in enumerate(program.actions):
        for target, expr in sorted(action.assignments.items()):
            for name in sorted(expr.free_variables()):
                for other in same_domain_alternatives(name):
                    new_expr = _substitute_var(expr, name, other)
                    if new_expr == expr:
                        continue
                    assignments = dict(action.assignments)
                    assignments[target] = new_expr
                    mutated = GuardedAction(action.name, action.guard, assignments)
                    produced.append(
                        Mutant(
                            f"in {action.name}'s write to {target}: "
                            f"{name} -> {other}",
                            _with_replaced_action(program, index, mutated),
                        )
                    )
                    break
                break  # one mutation per assignment

    if limit is not None:
        produced = produced[:limit]
    return produced
