"""Program transformations (refinement passes) and their tolerance behaviour.

Currently: atomicity refinement (:mod:`repro.transform.atomicity`) —
the paper's compiled-code scenario as a generic fetch/execute pass.
"""

from .atomicity import latch_name, pc_name, sequentialize, sequentialize_action
from .mutate import Mutant, mutants

__all__ = [
    "latch_name",
    "pc_name",
    "sequentialize",
    "sequentialize_action",
    "Mutant",
    "mutants",
]
