"""The runtime engine degradation chain.

Engine *preflight* fallback (unpackable schema, missing NumPy, tight
budget) has existed since the packed engine landed; this module adds
the *runtime* half: the recoverable faults an engine can raise
mid-fixpoint and the order the checker retries cheaper engines in.

The chain is sound because every engine computes the identical
verdict (CI pins the three-way byte-identity differential): rerunning
a check on the next engine down cannot change the answer, only the
wall-clock.  The checker re-raises when the last engine in the chain
faults — ``tuple`` has no cheaper fallback, and masking its failure
would turn a crash into a silent wrong answer.

``BudgetExceeded`` is deliberately *not* recoverable: it is a
structured PARTIAL verdict in flight, not an engine fault.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

__all__ = [
    "EngineFault",
    "RECOVERABLE_ENGINE_FAULTS",
    "DEGRADATION_CHAIN",
    "next_engine",
]


class EngineFault(RuntimeError):
    """A kernel-level failure an engine wants handled by degradation.

    Raised by engine internals for faults that are neither memory
    exhaustion nor a missing import but still mean "this engine cannot
    finish — a simpler one can" (e.g. an interner overflow discovered
    mid-run).
    """


#: Exception classes that trigger a runtime fallback instead of
#: aborting the check.  ``MemoryError``: the vector/packed arrays
#: outgrew RAM mid-fixpoint.  ``ImportError``: a lazily imported
#: accelerator disappeared between preflight and use (broken NumPy
#: installs raise on first array op, not on ``import numpy``).
RECOVERABLE_ENGINE_FAULTS: Tuple[Type[BaseException], ...] = (
    MemoryError,
    ImportError,
    EngineFault,
)

#: For each selected engine, the engines to try in order.  Strictly
#: decreasing exoticism: shared (streamed chunks + shm segments) →
#: vector (whole-space arrays) → packed (bitsets + successor closures)
#: → tuple (plain sets, the reference).  The checker filters a chain
#: to the engines whose preflight passes before walking it.
DEGRADATION_CHAIN: Dict[str, Tuple[str, ...]] = {
    "shared": ("shared", "vector", "packed", "tuple"),
    "vector": ("vector", "packed", "tuple"),
    "packed": ("packed", "tuple"),
    "tuple": ("tuple",),
}


def next_engine(engine: str) -> Optional[str]:
    """The engine one step down the chain, or ``None`` at the floor."""
    chain = DEGRADATION_CHAIN[engine]
    return chain[1] if len(chain) > 1 else None
