"""Supervision policy: timeouts, bounded retries, deterministic backoff.

A :class:`SupervisionPolicy` is the contract between a driver and the
supervised executor (:mod:`repro.resilience.supervisor`): how long one
task may run, how many *abnormal* failures (worker death, timeout) it
may accumulate before quarantine, and how long to back off between
retry attempts.

The backoff is deterministic by construction: the delay for attempt
``a`` of task ``i`` is derived from ``sha256(seed, i, a)``, never from
a wall clock or a process-global RNG.  Two runs of the same plan
produce the same retry schedule, which is what lets the chaos harness
(:mod:`repro.resilience.chaos`) assert byte-identical verdicts across
fault injections.

The active policy travels through a process-global stack
(:func:`using_policy` / :func:`current_policy`) rather than a
parameter thread: the pool call sites sit several layers below the
CLI, and a forked worker inherits the slot copy-on-write like the
worker context itself.
"""

from __future__ import annotations

import hashlib
import struct
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = [
    "SupervisionPolicy",
    "DEFAULT_POLICY",
    "current_policy",
    "using_policy",
    "backoff_delay",
]


@dataclass(frozen=True)
class SupervisionPolicy:
    """Tunables of the supervised executor.

    Attributes:
        task_timeout: wall-clock seconds one task attempt may run
            before the supervisor kills and retries it (``None``
            disables the deadline).
        max_task_retries: abnormal failures (death or timeout) a task
            may accumulate before it is quarantined and run inline in
            the driver — the guaranteed sequential fallback.
        backoff_base: first-retry backoff ceiling in seconds; attempt
            ``a`` waits up to ``backoff_base * 2**(a-1)``, capped.
        backoff_cap: upper bound on any single backoff delay.
        seed: the deterministic stream every backoff fraction derives
            from.

    Raises:
        ValueError: on a non-positive timeout, negative retry bound,
            or negative backoff parameters.
    """

    task_timeout: Optional[float] = None
    max_task_retries: int = 2
    backoff_base: float = 0.01
    backoff_cap: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task timeout must be positive seconds, got {self.task_timeout}"
            )
        if self.max_task_retries < 0:
            raise ValueError(
                f"max task retries must be >= 0, got {self.max_task_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff parameters must be non-negative")


DEFAULT_POLICY = SupervisionPolicy()

#: Stack of installed policies; index -1 is the active one.  A list
#: (not a bare slot) so nested ``using_policy`` contexts restore
#: correctly even when an inner context outlives an exception.
_POLICY_STACK: List[SupervisionPolicy] = [DEFAULT_POLICY]


def current_policy() -> SupervisionPolicy:
    """The policy the supervised executor runs under in this process."""
    return _POLICY_STACK[-1]


@contextmanager
def using_policy(policy: SupervisionPolicy) -> Iterator[SupervisionPolicy]:
    """Install ``policy`` as the active supervision policy.

    The CLI wraps whole commands in this; library callers can scope it
    tighter.  Forked workers inherit whatever was active at fork time.
    """
    _POLICY_STACK.append(policy)
    try:
        yield policy
    finally:
        _POLICY_STACK.pop()


def _fraction(seed: int, task_index: int, attempt: int) -> float:
    """A deterministic jitter fraction in ``[0, 1)`` for one retry."""
    material = f"{seed}:{task_index}:{attempt}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    (value,) = struct.unpack(">Q", digest[:8])
    return value / 2**64


def backoff_delay(
    policy: SupervisionPolicy, task_index: int, attempt: int
) -> float:
    """Seconds to wait before retry ``attempt`` (1-based) of a task.

    Exponential ceiling with deterministic jitter: the delay is a
    seeded fraction of ``backoff_base * 2**(attempt-1)``, capped at
    ``backoff_cap``.  The same (seed, task, attempt) triple always
    yields the same delay, on every platform.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    ceiling = min(policy.backoff_base * 2 ** (attempt - 1), policy.backoff_cap)
    return ceiling * _fraction(policy.seed, task_index, attempt)
