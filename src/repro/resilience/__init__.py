"""Supervised execution and deterministic chaos for the verification
stack.

The paper's graybox wrappers keep a *system* correct under transient
faults; this package applies the same philosophy to the verification
runtime itself.  Three layers:

* :mod:`repro.resilience.policy` — the supervision contract: per-task
  timeouts, bounded retries, deterministic seeded backoff.
* :mod:`repro.resilience.supervisor` — the fork-per-task executor
  behind :class:`repro.parallel.pool.WorkerPool`: worker death and
  timeouts become bounded retries; poison tasks quarantine to an
  inline (sequential) run with the identical result.
* :mod:`repro.resilience.chaos` — seeded fault plans (kill a worker,
  delay a task, raise ``MemoryError`` at a state threshold, corrupt a
  cache entry, truncate a checkpoint) injectable via ``--chaos`` /
  ``REPRO_CHAOS``, so every recovery path is provable in tests and CI.
* :mod:`repro.resilience.degrade` — the runtime engine degradation
  chain (vector → packed → tuple) the checker walks when an engine
  faults mid-fixpoint.

Recovery is observable: the supervisor and its callers emit
``resilience.*`` counters and events (see ``docs/ROBUSTNESS.md`` for
the recovery-invariants table).
"""

from .chaos import (
    ChaosPlanError,
    FaultAction,
    FaultPlan,
    active_plan,
    load_plan,
    using_chaos,
)
from .degrade import (
    DEGRADATION_CHAIN,
    RECOVERABLE_ENGINE_FAULTS,
    EngineFault,
    next_engine,
)
from .policy import (
    DEFAULT_POLICY,
    SupervisionPolicy,
    backoff_delay,
    current_policy,
    using_policy,
)
from .supervisor import WorkerTaskError, supervised_map, supervised_unordered

__all__ = [
    "SupervisionPolicy",
    "DEFAULT_POLICY",
    "current_policy",
    "using_policy",
    "backoff_delay",
    "WorkerTaskError",
    "supervised_map",
    "supervised_unordered",
    "FaultAction",
    "FaultPlan",
    "ChaosPlanError",
    "load_plan",
    "using_chaos",
    "active_plan",
    "EngineFault",
    "RECOVERABLE_ENGINE_FAULTS",
    "DEGRADATION_CHAIN",
    "next_engine",
]
