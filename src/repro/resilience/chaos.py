"""Deterministic chaos harness: seeded fault plans for the runtime.

The verification stack claims to survive worker death, runtime memory
exhaustion, and storage corruption.  This module makes those claims
testable: a :class:`FaultPlan` is a small, JSON-serializable list of
:class:`FaultAction` entries that the runtime consults at well-defined
hook points and that *deterministically* injects the fault — the same
plan always kills the same task attempt, raises at the same state
count, corrupts the same cache entry.  CI and tests then assert the
recovery, not the failure.

Fault kinds and the hook that honours each:

==================  ====================================================
``kill-worker``     :func:`on_worker_task` — the supervised child
                    SIGKILLs itself before running the matched task
                    attempt (models an OOM kill mid-shard).
``delay-task``      :func:`on_worker_task` — the child sleeps
                    ``seconds`` first (models a stalled worker; with a
                    task timeout, the supervisor reaps it).
``raise-memory``    :func:`engine_states` — raises ``MemoryError``
                    once the named engine has enumerated ``at_states``
                    states (models mid-fixpoint exhaustion; the
                    checker degrades vector→packed→tuple).
``corrupt-cache``   :func:`cache_stored` — flips one byte of the
                    ``index``-th entry written by this process (the
                    digest check reads it back as a miss).
``truncate-checkpoint``  :func:`checkpoint_appended` — cuts the
                    ``index``-th appended line in half, newline
                    included (models a crash mid-append; resume drops
                    the partial line).
==================  ====================================================

Matching is stateless and cross-process-safe: a fault names a task
index, attempt, and phase label, and every hook call carries those
coordinates — no shared mutation beyond this process's own
store/append counters.  Activation is a process-global slot
(:func:`using_chaos`), inherited copy-on-write by forked workers, and
loadable from the ``REPRO_CHAOS`` environment variable or the
``--chaos`` CLI flag (inline JSON or a file path).
"""

from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from ..core.errors import ReproError

__all__ = [
    "FAULT_KINDS",
    "ChaosPlanError",
    "FaultAction",
    "FaultPlan",
    "load_plan",
    "using_chaos",
    "active_plan",
    "on_worker_task",
    "engine_states",
    "cache_stored",
    "checkpoint_appended",
]

FAULT_KINDS = (
    "kill-worker",
    "delay-task",
    "raise-memory",
    "corrupt-cache",
    "truncate-checkpoint",
)

#: Wildcard accepted by the task/attempt/phase/engine selectors.
WILDCARD = "*"


class ChaosPlanError(ReproError):
    """A fault plan could not be parsed or validated."""


@dataclass(frozen=True)
class FaultAction:
    """One injectable fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        task: task index selector for worker faults (``"*"`` = any).
        attempt: attempt selector for worker faults; ``0`` (the
            default) hits only the first attempt, so the retry
            recovers — ``"*"`` hits every attempt and exercises
            quarantine.
        phase: task-label selector for worker faults (the pool task
            function's name, e.g. ``"_expand_batch"``).
        seconds: sleep duration for ``delay-task``.
        engine: engine selector for ``raise-memory`` (``"vector"``,
            ``"packed"``, or ``"*"``).
        at_states: state-count threshold for ``raise-memory``.
        index: which store/append (0-based, per process) a
            ``corrupt-cache`` / ``truncate-checkpoint`` fault hits.
    """

    kind: str
    task: Union[int, str] = WILDCARD
    attempt: Union[int, str] = 0
    phase: str = WILDCARD
    seconds: float = 0.05
    engine: str = WILDCARD
    at_states: int = 1
    index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ChaosPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        for name in ("task", "attempt"):
            value = getattr(self, name)
            if value != WILDCARD and not isinstance(value, int):
                raise ChaosPlanError(
                    f"fault {name} selector must be an int or '*', got {value!r}"
                )
        if self.seconds < 0:
            raise ChaosPlanError(f"delay must be >= 0, got {self.seconds}")
        if self.at_states < 0:
            raise ChaosPlanError(
                f"state threshold must be >= 0, got {self.at_states}"
            )
        if self.index < 0:
            raise ChaosPlanError(f"index must be >= 0, got {self.index}")

    def matches_task(self, phase: str, task: int, attempt: int) -> bool:
        """Whether this fault selects the given worker task attempt."""
        if self.phase not in (WILDCARD, phase):
            return False
        if self.task != WILDCARD and self.task != task:
            return False
        if self.attempt != WILDCARD and self.attempt != attempt:
            return False
        return True

    def to_dict(self) -> Dict[str, object]:
        """The JSON shape (defaults elided for readability)."""
        payload: Dict[str, object] = {"kind": self.kind}
        defaults = FaultAction(kind=self.kind)
        for name in (
            "task", "attempt", "phase", "seconds", "engine", "at_states",
            "index",
        ):
            value = getattr(self, name)
            if value != getattr(defaults, name):
                payload[name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultAction":
        """Parse one fault entry, rejecting unknown keys loudly."""
        known = {
            "kind", "task", "attempt", "phase", "seconds", "engine",
            "at_states", "index",
        }
        unknown = set(payload) - known
        if unknown:
            raise ChaosPlanError(
                f"unknown fault field(s): {', '.join(sorted(map(str, unknown)))}"
            )
        if "kind" not in payload:
            raise ChaosPlanError("fault entry is missing its 'kind'")
        return cls(**{str(key): value for key, value in payload.items()})  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered list of faults to inject.

    The seed names the deterministic stream the run retries under
    (the CLI folds it into the supervision policy's backoff seed), so
    "plan P" fully describes both the injected faults and the recovery
    schedule.
    """

    seed: int = 0
    faults: Tuple[FaultAction, ...] = field(default_factory=tuple)

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "faults": [fault.to_dict() for fault in self.faults],
            },
            sort_keys=True,
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultPlan":
        unknown = set(payload) - {"seed", "faults"}
        if unknown:
            raise ChaosPlanError(
                f"unknown plan field(s): {', '.join(sorted(map(str, unknown)))}"
            )
        raw_faults = payload.get("faults", [])
        if not isinstance(raw_faults, list):
            raise ChaosPlanError("plan 'faults' must be a list")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int):
            raise ChaosPlanError(f"plan seed must be an int, got {seed!r}")
        return cls(
            seed=seed,
            faults=tuple(FaultAction.from_dict(entry) for entry in raw_faults),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ChaosPlanError(f"fault plan is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ChaosPlanError("fault plan must be a JSON object")
        return cls.from_dict(payload)


def load_plan(spec: str) -> FaultPlan:
    """A plan from a CLI/env spec: inline JSON or a file path.

    A spec whose first non-space character is ``{`` parses as inline
    JSON; anything else is read as a file.
    """
    text = spec.strip()
    if text.startswith("{"):
        return FaultPlan.from_json(text)
    path = Path(spec)
    try:
        return FaultPlan.from_json(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ChaosPlanError(f"cannot read fault plan {spec!r}: {exc}")


#: The active plan slot (index 0) — a list so forked children share
#: the parent's binding copy-on-write, exactly like the worker
#: context.  ``None`` keeps every hook a single attribute test.
_ACTIVE: List[Optional[FaultPlan]] = [None]

#: Per-process hit counters for the store/append-indexed faults.
_COUNTS: Dict[str, int] = {}


def active_plan() -> Optional[FaultPlan]:
    """The plan this process currently injects, or ``None``."""
    return _ACTIVE[0]


@contextmanager
def using_chaos(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Activate ``plan`` for the duration (``None`` is a no-op pass).

    Resets the per-process store/append counters on entry so a plan's
    ``index`` selectors count from the context boundary.
    """
    previous = _ACTIVE[0]
    saved_counts = dict(_COUNTS)
    _ACTIVE[0] = plan
    _COUNTS.clear()
    try:
        yield plan
    finally:
        _ACTIVE[0] = previous
        _COUNTS.clear()
        _COUNTS.update(saved_counts)


def on_worker_task(phase: str, task: int, attempt: int) -> None:
    """Worker-side hook: apply kill/delay faults to this task attempt.

    Called by the supervised child *only* (never by the driver or a
    quarantined inline run), immediately before the task body — so a
    ``kill-worker`` fault models SIGKILL/OOM on a worker, and the
    driver's recovery path is what gets exercised.
    """
    plan = _ACTIVE[0]
    if plan is None:
        return
    for fault in plan.faults:
        if fault.kind == "delay-task" and fault.matches_task(
            phase, task, attempt
        ):
            time.sleep(fault.seconds)
        elif fault.kind == "kill-worker" and fault.matches_task(
            phase, task, attempt
        ):
            os.kill(os.getpid(), signal.SIGKILL)


def engine_states(engine: str, states: int) -> None:
    """Engine hook: raise ``MemoryError`` past a state-count threshold.

    The packed and vector fixpoints call this with their cumulative
    enumerated-state counts; a matching ``raise-memory`` fault turns
    into the exact exception class a real exhaustion would raise, so
    the checker's degradation chain — not a special test path — does
    the recovery.
    """
    plan = _ACTIVE[0]
    if plan is None:
        return
    for fault in plan.faults:
        if (
            fault.kind == "raise-memory"
            and fault.engine in (WILDCARD, engine)
            and states >= fault.at_states
        ):
            raise MemoryError(
                f"chaos: injected MemoryError in the {engine} engine "
                f"at {states} states"
            )


def cache_stored(path: Union[str, Path]) -> None:
    """Cache hook: corrupt the just-written entry when selected.

    Counts this process's ``put`` calls; when a ``corrupt-cache``
    fault's ``index`` matches, one byte in the middle of the entry
    file is flipped — enough to trip either the JSON parse or the
    payload digest on the next read.
    """
    plan = _ACTIVE[0]
    if plan is None:
        return
    count = _COUNTS.get("cache.store", 0)
    _COUNTS["cache.store"] = count + 1
    for fault in plan.faults:
        if fault.kind == "corrupt-cache" and fault.index == count:
            target = Path(path)
            data = bytearray(target.read_bytes())
            if data:
                data[len(data) // 2] ^= 0x01
                target.write_bytes(bytes(data))


def checkpoint_appended(path: Union[str, Path]) -> None:
    """Checkpoint hook: truncate the just-appended line when selected.

    Counts this process's appends; when a ``truncate-checkpoint``
    fault's ``index`` matches, the final line of the file is cut to
    half its bytes with no trailing newline — byte-for-byte what a
    crash mid-append leaves behind.
    """
    plan = _ACTIVE[0]
    if plan is None:
        return
    count = _COUNTS.get("checkpoint.append", 0)
    _COUNTS["checkpoint.append"] = count + 1
    for fault in plan.faults:
        if fault.kind == "truncate-checkpoint" and fault.index == count:
            target = Path(path)
            data = target.read_bytes()
            head, _, last = data.rstrip(b"\n").rpartition(b"\n")
            prefix = head + b"\n" if head else b""
            target.write_bytes(prefix + last[: max(1, len(last) // 2)])
