"""The supervised fork-per-task executor.

``multiprocessing.Pool.map`` has a failure mode the campaign and the
sharded fixpoints cannot afford: a worker killed by the kernel (OOM,
SIGKILL) takes its task's result with it and ``map`` waits forever.
This module replaces the pool with direct supervision — every task
attempt runs in its own forked child with a dedicated result pipe, and
the driver multiplexes ``multiprocessing.connection.wait`` over the
pipes with per-task deadlines:

* a child that **dies without reporting** (EOF on its pipe) is
  detected immediately: the task is retried, not hung;
* a child that **outlives the task timeout** is SIGKILLed and retried;
* retries are **bounded** (``SupervisionPolicy.max_task_retries``)
  with deterministic seeded backoff (:func:`~repro.resilience.policy.
  backoff_delay`), so a poison task cannot spin the driver;
* a task that exhausts its retries is **quarantined**: it runs inline
  in the driver — the guaranteed degradation to the sequential path,
  which produces the identical result by the package's byte-identity
  invariant;
* a task that **raises an ordinary exception** is not a supervision
  failure: the exception travels back over the pipe and re-raises in
  the driver, exactly like ``Pool.map``.

Fork-per-task keeps the copy-on-write property the old pool relied
on: each attempt forks *at dispatch*, inheriting the staged worker
context (and the active chaos plan) for free; only results cross the
pipe as pickles.

Every recovery emits a ``resilience.*`` counter and event on the
instrumentation passed in, so the chaos harness can assert not just
that a faulted run succeeded but that the intended path recovered it.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..obs import NULL_INSTRUMENTATION, Instrumentation
from . import chaos
from .policy import SupervisionPolicy, backoff_delay, current_policy

__all__ = [
    "WorkerTaskError",
    "supervised_map",
    "supervised_unordered",
]

T = TypeVar("T")
R = TypeVar("R")


class WorkerTaskError(RuntimeError):
    """Stand-in for a task exception that could not be pickled back."""


def _child_entry(
    conn: Any,
    task: Callable[[Any], Any],
    item: Any,
    label: str,
    index: int,
    attempt: int,
) -> None:
    """Body of one forked task attempt.

    Reports ``(True, result)`` or ``(False, exception)`` over the
    pipe; anything unpicklable degrades to a :class:`WorkerTaskError`
    carrying the repr.  The chaos hook runs first — only here, in the
    child, so an injected SIGKILL can never hit the driver.
    """
    try:
        chaos.on_worker_task(label, index, attempt)
        result = task(item)
    except BaseException as exc:
        try:
            conn.send((False, exc))
        except Exception:
            conn.send(
                (False, WorkerTaskError(f"{type(exc).__name__}: {exc}"))
            )
    else:
        try:
            conn.send((True, result))
        except Exception as exc:
            conn.send(
                (
                    False,
                    WorkerTaskError(
                        f"task result could not be pickled: "
                        f"{type(exc).__name__}: {exc}"
                    ),
                )
            )
    finally:
        conn.close()


@dataclass
class _Running:
    """One in-flight task attempt under supervision."""

    index: int
    attempt: int
    process: Any
    conn: Any
    deadline: Optional[float]


def _reap(run: _Running) -> None:
    """Forcefully end one attempt (timeout or generator teardown)."""
    try:
        if run.process.is_alive():
            os.kill(run.process.pid, signal.SIGKILL)
    except (OSError, AttributeError):
        pass
    run.process.join()
    try:
        run.conn.close()
    except OSError:
        pass


def supervised_unordered(
    task: Callable[[T], R],
    items: Sequence[T],
    workers: int,
    policy: Optional[SupervisionPolicy] = None,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    label: Optional[str] = None,
) -> Iterator[Tuple[int, R]]:
    """Yield ``(index, result)`` pairs as task attempts complete.

    Args:
        task: a module-level function (it crosses into the child by
            fork, not pickle, so closures staged in the worker context
            work too).
        items: the work items; ``index`` in the yields refers to this
            sequence.
        workers: maximum concurrent children.
        policy: supervision tunables; defaults to the process's active
            policy (:func:`~repro.resilience.policy.current_policy`).
        instrumentation: sink for the ``resilience.*`` recovery
            counters and events.
        label: phase label for events and chaos matching; defaults to
            the task function's name.

    Raises:
        BaseException: whatever a task attempt itself raised — task
            exceptions are transported, not retried (a deterministic
            task would fail identically on every attempt, and the
            sequential path would have raised too).
    """
    ctx = multiprocessing.get_context("fork")
    active_policy = policy if policy is not None else current_policy()
    phase = label if label is not None else getattr(task, "__name__", "task")
    work = list(items)
    #: Abnormal failures (death/timeout) accumulated per task.
    failures = [0] * len(work)
    #: (index, attempt) pairs ready to fork now.
    ready: List[Tuple[int, int]] = [(index, 0) for index in range(len(work))]
    ready.reverse()  # pop() from the front, preserving dispatch order
    #: (not_before, index, attempt) retries waiting out their backoff.
    delayed: List[Tuple[float, int, int]] = []
    running: dict = {}

    def quarantine(index: int) -> R:
        instrumentation.count("resilience.task.quarantined")
        instrumentation.count("resilience.sequential_fallback")
        instrumentation.event(
            "resilience.task.quarantined",
            phase=phase,
            task=index,
            failures=failures[index],
        )
        return task(work[index])

    def schedule_retry(run: _Running, reason: str) -> Optional[int]:
        """Book one abnormal failure; returns the index to quarantine
        inline when the retry budget is spent, else ``None``."""
        index = run.index
        failures[index] += 1
        if failures[index] > active_policy.max_task_retries:
            return index
        delay = backoff_delay(active_policy, index, failures[index])
        instrumentation.count("resilience.task.retries")
        instrumentation.event(
            "resilience.task.retry",
            phase=phase,
            task=index,
            attempt=failures[index],
            delay=round(delay, 6),
            reason=reason,
        )
        heapq.heappush(
            delayed, (time.monotonic() + delay, index, failures[index])
        )
        return None

    try:
        while ready or delayed or running:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, index, attempt = heapq.heappop(delayed)
                ready.append((index, attempt))
            while ready and len(running) < workers:
                index, attempt = ready.pop()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_child_entry,
                    args=(child_conn, task, work[index], phase, index, attempt),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                deadline = (
                    time.monotonic() + active_policy.task_timeout
                    if active_policy.task_timeout is not None
                    else None
                )
                running[parent_conn] = _Running(
                    index, attempt, process, parent_conn, deadline
                )
            if not running:
                if delayed:
                    time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                continue
            timeout: Optional[float] = None
            deadlines = [
                run.deadline
                for run in running.values()
                if run.deadline is not None
            ]
            if deadlines:
                timeout = max(0.0, min(deadlines) - time.monotonic())
            if delayed:
                wake = max(0.0, delayed[0][0] - time.monotonic())
                timeout = wake if timeout is None else min(timeout, wake)
            completed = connection_wait(list(running), timeout=timeout)
            if not completed:
                # A deadline (or a backoff) expired with nothing
                # readable: reap every attempt past its deadline.
                now = time.monotonic()
                for conn, run in list(running.items()):
                    if run.deadline is not None and run.deadline <= now:
                        del running[conn]
                        _reap(run)
                        instrumentation.count("resilience.task.timeout")
                        instrumentation.event(
                            "resilience.task.timeout",
                            phase=phase,
                            task=run.index,
                            attempt=run.attempt,
                            timeout=active_policy.task_timeout,
                        )
                        poisoned = schedule_retry(
                            run,
                            f"timeout after {active_policy.task_timeout}s",
                        )
                        if poisoned is not None:
                            yield poisoned, quarantine(poisoned)
                continue
            for conn in completed:
                run = running.pop(conn)
                try:
                    ok, payload = conn.recv()
                except Exception:
                    # EOF (or a half-written pickle): the child died
                    # without reporting — SIGKILL, OOM kill, hard
                    # crash.  This is the hang the raw pool turns into;
                    # here it is one bounded retry.
                    run.process.join()
                    exitcode = run.process.exitcode
                    try:
                        conn.close()
                    except OSError:
                        pass
                    instrumentation.count("resilience.worker.death")
                    instrumentation.event(
                        "resilience.worker.death",
                        phase=phase,
                        task=run.index,
                        attempt=run.attempt,
                        exitcode=exitcode,
                    )
                    poisoned = schedule_retry(
                        run, f"worker died (exit {exitcode})"
                    )
                    if poisoned is not None:
                        yield poisoned, quarantine(poisoned)
                    continue
                conn.close()
                run.process.join()
                if ok:
                    yield run.index, payload
                else:
                    raise payload
    finally:
        for run in running.values():
            _reap(run)
        running.clear()


def supervised_map(
    task: Callable[[T], R],
    items: Sequence[T],
    workers: int,
    policy: Optional[SupervisionPolicy] = None,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    label: Optional[str] = None,
) -> List[R]:
    """Run ``task`` over ``items`` under supervision, results in order.

    The ordered counterpart of :func:`supervised_unordered` — the
    drop-in replacement for ``Pool.map`` with the same result order
    and exception semantics, plus recovery from worker death and
    timeouts.
    """
    results: List[Optional[R]] = [None] * len(items)
    for index, value in supervised_unordered(
        task,
        items,
        workers,
        policy=policy,
        instrumentation=instrumentation,
        label=label,
    ):
        results[index] = value
    return results  # type: ignore[return-value]
