"""Human-readable rendering of run records and archived traces.

This is the presentation layer behind ``repro report``: given the
JSONL text of an observability file, it summarizes every run record
(metadata, counters, phase timings, events) and every archived
simulator trace found in it.
"""

from __future__ import annotations

from typing import Dict, List

from .record import RunRecord, loads_jsonl
from .trace import render_span_tree

__all__ = ["summarize_record", "summarize_text"]


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def summarize_record(record: RunRecord, events: bool = False) -> str:
    """Render one :class:`RunRecord` as an indented text block.

    Args:
        record: the record to render.
        events: show every event individually instead of aggregating
            the event log by name.
    """
    lines = [f"run: {record.kind} ({_format_seconds(record.wall_seconds)} wall)"]
    if record.meta:
        rendered = ", ".join(
            f"{key}={record.meta[key]!r}" for key in sorted(record.meta)
        )
        lines.append(f"  meta: {rendered}")
    if record.counters:
        lines.append("  counters:")
        width = max(len(name) for name in record.counters)
        for name in sorted(record.counters):
            lines.append(f"    {name.ljust(width)}  {record.counters[name]}")
    if record.gauges:
        lines.append("  gauges:")
        width = max(len(name) for name in record.gauges)
        for name in sorted(record.gauges):
            lines.append(
                f"    {name.ljust(width)}  {record.gauges[name].value:g}"
            )
    if record.histograms:
        lines.append("  histograms:")
        for name in sorted(record.histograms):
            stats = record.histograms[name]
            mean = stats.total / stats.count if stats.count else 0.0
            lines.append(
                f"    {name}  n={stats.count} mean={mean:.2f} "
                f"total={stats.total:g}"
            )
    if record.spans:
        lines.append("  phases:")
        width = max(len(name) for name in record.spans)
        for name in sorted(record.spans):
            stats = record.spans[name]
            suffix = f"  ({stats.calls} calls)" if stats.calls != 1 else ""
            lines.append(
                f"    {name.ljust(width)}  "
                f"{_format_seconds(stats.seconds)}{suffix}"
            )
    if record.tree:
        lines.append("  trace:")
        for tree_line in render_span_tree(record.tree).splitlines():
            lines.append(f"    {tree_line}")
    if record.events:
        if events:
            lines.append("  events:")
            for event in record.events:
                rendered = ", ".join(
                    f"{key}={event.fields[key]!r}" for key in sorted(event.fields)
                )
                lines.append(
                    f"    [{_format_seconds(event.at)}] {event.name}"
                    + (f": {rendered}" if rendered else "")
                )
        else:
            tally: Dict[str, int] = {}
            for event in record.events:
                tally[event.name] = tally.get(event.name, 0) + 1
            rendered = ", ".join(
                f"{name} x{tally[name]}" for name in sorted(tally)
            )
            lines.append(f"  events: {len(record.events)} ({rendered})")
    return "\n".join(lines)


def _summarize_traces(text: str) -> List[str]:
    """Summary blocks for any archived traces found in the text."""
    # Imported lazily: repro.simulation.runner imports repro.obs, so a
    # module-level import here would be circular during package init.
    from ..simulation.trace import Trace

    blocks: List[str] = []
    for trace in Trace.all_from_jsonl(text):
        kinds: Dict[str, int] = {}
        for event in trace.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        breakdown = ", ".join(f"{kinds[kind]} {kind}" for kind in sorted(kinds))
        blocks.append(
            f"trace: {len(trace)} events"
            + (f" ({breakdown})" if breakdown else "")
            + f"\n  steps: {trace.step_count()}  faults: {trace.fault_count()}"
            + f"\n  variables: {len(trace.initial)}"
        )
    return blocks


def summarize_text(text: str, events: bool = False) -> str:
    """Summarize every run record and archived trace in JSONL text.

    Returns an explanatory placeholder when the file holds neither.
    """
    blocks = [
        summarize_record(record, events=events) for record in loads_jsonl(text)
    ]
    blocks.extend(_summarize_traces(text))
    if not blocks:
        return "no run records or traces found"
    return "\n\n".join(blocks)
