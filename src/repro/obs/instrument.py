"""Instrumentation protocol, null object, and the recording implementation.

The hot paths of the library (the stabilization fixpoint, the
refinement transition scan, the simulator's step loop) accept an
:class:`Instrumentation` and report what they do through seven verbs:

* ``count(name, delta)`` — bump a monotonic counter;
* ``gauge(name, value)`` — set a last-value-wins measurement;
* ``observe(name, value)`` — add an observation to a fixed-bucket
  histogram;
* ``event(name, **fields)`` — record a discrete occurrence;
* ``span(name, **attrs)`` — a context manager timing one phase, with
  optional per-span attributes; spans nest, forming a trace tree;
* ``annotate(**fields)`` — attach run-level metadata;
* ``absorb(record)`` — fold a finished worker's
  :class:`~repro.obs.record.RunRecord` into this run (cross-process
  aggregation).

:class:`NullInstrumentation` is the default everywhere: every verb is
a no-op, ``span`` hands back one shared, reusable context manager, and
the instance carries no state at all (``__slots__ = ()``), so an
uninstrumented caller pays exactly one attribute lookup and one call
per reported event — no allocation, no branching in the engine code.
:class:`Recorder` captures everything into an in-memory
:class:`~repro.obs.record.RunRecord` that can be persisted as JSONL
and rendered or exported by ``repro report``.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import (
    Callable,
    Dict,
    IO,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .record import EventRecord, RunRecord, SpanStats
from .registry import GaugeStats, MetricsRegistry
from .trace import SpanNode, rebase_nodes

__all__ = [
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "Recorder",
    "ProgressEmitter",
    "ProgressTicker",
    "TeeInstrumentation",
]


class _NullSpan:
    """The shared no-op context manager returned by the null object."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Instrumentation:
    """The protocol instrumented code talks to.

    The base class *is* the null behaviour: subclasses override the
    verbs they care about.  Instrumented code must treat the verbs as
    fire-and-forget — none of them returns a value (``span`` returns a
    context manager) and none may raise.
    """

    __slots__ = ()

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to the monotonic counter ``name``."""

    def gauge(self, name: str, value: float) -> None:
        """Set the last-value-wins measurement ``name``."""

    def observe(self, name: str, value: float) -> None:
        """Add one observation to the fixed-bucket histogram ``name``."""

    def event(self, name: str, /, **fields: object) -> None:
        """Record a discrete event with arbitrary JSON-safe fields."""

    def span(self, name: str, /, **attrs: object):
        """A context manager timing the phase ``name``.

        Spans nest: a span entered while another is open becomes its
        child in the trace tree.  ``attrs`` attach JSON-safe
        attributes to this span instance (batch sizes, engine names,
        round counts).
        """
        return _NULL_SPAN

    def annotate(self, **fields: object) -> None:
        """Merge run-level metadata (program name, seed, flags, ...)."""

    def absorb(self, record: RunRecord) -> None:
        """Fold a finished worker record into this run (no-op here)."""


class NullInstrumentation(Instrumentation):
    """Explicit zero-overhead implementation (identical to the base).

    Kept as a distinct class so call sites can default to
    ``NULL_INSTRUMENTATION`` and tests can assert the null path is
    allocation-free: the instance has no ``__dict__``, and ``span``
    always returns the same shared object.
    """

    __slots__ = ()


#: Module-level singleton used as the default argument everywhere.
NULL_INSTRUMENTATION = NullInstrumentation()


def _is_null(instrumentation: Instrumentation) -> bool:
    """True when ``instrumentation`` is the no-op base/null object."""
    return type(instrumentation) in (Instrumentation, NullInstrumentation)


class _RecorderSpan:
    """Context manager that reports its duration back to the recorder."""

    __slots__ = ("_recorder", "_name", "_attrs", "_start", "_index")

    def __init__(
        self, recorder: "Recorder", name: str, attrs: Dict[str, object]
    ):
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._start = 0.0
        self._index = -1

    def __enter__(self) -> "_RecorderSpan":
        self._start, self._index = self._recorder._enter_span(
            self._name, self._attrs
        )
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._recorder._exit_span(self._name, self._start, self._index)
        return False


class Recorder(Instrumentation):
    """Instrumentation that captures a structured run record in memory.

    Spans are aggregated per name (total seconds + number of entries)
    *and* recorded individually as a trace tree — nesting is tracked
    with a per-thread stack, so spans opened on different threads form
    independent subtrees rather than false parent/child edges.
    Counters are summed, gauges keep their last value, histogram
    observations land in fixed buckets, and events are kept in order
    with a timestamp relative to the recorder's creation.

    All verbs are safe to call from several threads at once: updates
    happen under one internal lock.  (The lock is uncontended in the
    common single-threaded case and the engines' hot loops batch their
    reporting, so this costs nothing measurable.)

    Args:
        kind: what the run is (``"check"``, ``"simulate"``, ...);
            stored on the resulting :class:`RunRecord`.
        clock: monotonic time source in seconds (injectable for
            deterministic tests; default ``time.perf_counter``).
        wall: absolute epoch time source (injectable for deterministic
            tests; default ``time.time``).  Read once at creation and
            stored as the record's ``wall_base`` so records from
            several processes can merge onto one timeline.
    """

    def __init__(
        self,
        kind: str = "run",
        clock: Callable[[], float] = time.perf_counter,
        wall: Callable[[], float] = time.time,
    ):
        self.kind = kind
        self._clock = clock
        self._t0 = clock()
        self._wall_base = wall()
        self._lock = threading.Lock()
        self._meta: Dict[str, object] = {}
        self._counters: Dict[str, int] = {}
        self._metrics = MetricsRegistry()
        self._spans: Dict[str, SpanStats] = {}
        self._tree: List[SpanNode] = []
        self._events: List[EventRecord] = []
        self._stack = threading.local()

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        at = self._clock() - self._t0
        with self._lock:
            self._metrics.set_gauge(name, value, at)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self._metrics.observe(name, value)

    def event(self, name: str, /, **fields: object) -> None:
        at = self._clock() - self._t0
        with self._lock:
            self._events.append(EventRecord(name, at, dict(fields)))

    def span(self, name: str, /, **attrs: object) -> _RecorderSpan:
        return _RecorderSpan(self, name, attrs)

    def annotate(self, **fields: object) -> None:
        with self._lock:
            self._meta.update(fields)

    def absorb(self, record: RunRecord) -> None:
        """Fold a finished worker's record into this run.

        The worker's event timestamps and span starts are rebased from
        its ``wall_base`` onto this recorder's, its tree is appended
        behind the existing nodes (worker roots stay roots), and its
        counters/gauges/histograms/span aggregates merge with the same
        semantics as :func:`repro.obs.record.merge_records`.
        """
        offset = record.wall_base - self._wall_base
        with self._lock:
            self._meta.update(record.meta)
            for name, value in record.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, stats in record.gauges.items():
                self._metrics.merge_gauge(
                    name, GaugeStats(stats.value, stats.at + offset)
                )
            for name, hist in record.histograms.items():
                self._metrics.merge_histogram(name, hist)
            for name, span_stats in record.spans.items():
                current = self._spans.get(name)
                if current is None:
                    self._spans[name] = span_stats
                else:
                    self._spans[name] = SpanStats(
                        current.seconds + span_stats.seconds,
                        current.calls + span_stats.calls,
                    )
            self._tree.extend(
                rebase_nodes(record.tree, offset, len(self._tree))
            )
            self._events.extend(
                EventRecord(event.name, event.at + offset, dict(event.fields))
                for event in record.events
            )

    def _span_stack(self) -> List[int]:
        stack = getattr(self._stack, "open", None)
        if stack is None:
            stack = []
            self._stack.open = stack
        return stack

    def _enter_span(
        self, name: str, attrs: Dict[str, object]
    ) -> Tuple[float, int]:
        start = self._clock() - self._t0
        stack = self._span_stack()
        parent = stack[-1] if stack else -1
        with self._lock:
            index = len(self._tree)
            self._tree.append(SpanNode(name, start, 0.0, parent, dict(attrs)))
        stack.append(index)
        return start, index

    def _exit_span(self, name: str, start: float, index: int) -> None:
        seconds = self._clock() - self._t0 - start
        stack = self._span_stack()
        if stack and stack[-1] == index:
            stack.pop()
        with self._lock:
            self._tree[index].seconds = seconds
            stats = self._spans.get(name)
            if stats is None:
                self._spans[name] = SpanStats(seconds, 1)
            else:
                self._spans[name] = SpanStats(
                    stats.seconds + seconds, stats.calls + 1
                )

    @property
    def counters(self) -> Dict[str, int]:
        """Current counter values (live view as a copy)."""
        with self._lock:
            return dict(self._counters)

    def counter(self, name: str, default: int = 0) -> int:
        """One counter's current value."""
        with self._lock:
            return self._counters.get(name, default)

    def record(self) -> RunRecord:
        """Snapshot everything captured so far as a :class:`RunRecord`."""
        wall_seconds = self._clock() - self._t0
        with self._lock:
            return RunRecord(
                kind=self.kind,
                meta=dict(self._meta),
                counters=dict(self._counters),
                gauges=self._metrics.gauges(),
                histograms=self._metrics.histograms(),
                spans=dict(self._spans),
                tree=[
                    SpanNode(
                        node.name,
                        node.start,
                        node.seconds,
                        node.parent,
                        dict(node.attrs),
                    )
                    for node in self._tree
                ],
                events=list(self._events),
                wall_seconds=wall_seconds,
                wall_base=self._wall_base,
            )


def _rss_kib() -> int:
    """The process's peak resident set size, in KiB (0 if unknowable).

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalise to KiB.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        peak //= 1024
    return int(peak)


class ProgressEmitter:
    """Throttled live-progress heartbeats for long-running fixpoints.

    Engines create one per loop and call :meth:`tick` every round (or
    every few thousand expansions); the emitter rate-limits the actual
    reporting so hot loops stay hot.  Each emitted heartbeat is a
    ``progress.<name>`` event carrying the round index, the current
    frontier size, cumulative states processed, the states/second rate
    since the loop started, and the sampled peak RSS — plus a
    ``proc.rss.kib`` gauge so the memory high-water mark survives into
    the merged record.

    The first tick always emits (so short runs and deterministic tests
    still see one heartbeat); later ticks emit at most once per
    ``interval`` seconds.  When ``instrumentation`` is the null object
    the emitter disables itself entirely — check :attr:`enabled` to
    skip even the tick call in the hottest loops.

    Args:
        instrumentation: where heartbeats go.
        name: the loop's name; events are ``progress.<name>``.
        interval: minimum seconds between emitted heartbeats.
        clock: injectable monotonic time source for tests.
    """

    __slots__ = ("enabled", "_instrumentation", "_name", "_interval",
                 "_clock", "_start", "_last")

    def __init__(
        self,
        instrumentation: Instrumentation,
        name: str,
        interval: float = 0.5,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.enabled = not _is_null(instrumentation)
        self._instrumentation = instrumentation
        self._name = name
        self._interval = interval
        self._clock = clock
        self._start = clock() if self.enabled else 0.0
        self._last: Optional[float] = None

    def tick(self, round_index: int, frontier: int, states: int) -> None:
        """Report progress; emits only when the throttle allows.

        Args:
            round_index: the current round / iteration number.
            frontier: current frontier (or pending-work) size.
            states: cumulative states processed so far.
        """
        if not self.enabled:
            return
        now = self._clock()
        if self._last is not None and now - self._last < self._interval:
            return
        self._last = now
        elapsed = now - self._start
        rate = states / elapsed if elapsed > 0 else 0.0
        rss = _rss_kib()
        self._instrumentation.event(
            f"progress.{self._name}",
            round=round_index,
            frontier=frontier,
            states=states,
            states_per_sec=round(rate, 1),
            rss_kib=rss,
        )
        self._instrumentation.gauge("proc.rss.kib", rss)


class ProgressTicker(Instrumentation):
    """Renders ``progress.*`` heartbeat events as live ticker lines.

    Attach it (usually inside a :class:`TeeInstrumentation`, next to a
    :class:`Recorder`) to get one stderr line per heartbeat::

        [check.fixpoint] frontier=152 round=3 rss_kib=81532 ...

    Every other verb is inherited null behaviour, so the ticker is
    safe to compose into any instrumented run.

    Args:
        stream: where to write (default: current ``sys.stderr``,
            resolved at write time so pytest capture works).
    """

    __slots__ = ("_stream",)

    def __init__(self, stream: Optional[IO[str]] = None):
        self._stream = stream

    def event(self, name: str, /, **fields: object) -> None:
        if not name.startswith("progress."):
            return
        stream = self._stream if self._stream is not None else sys.stderr
        rendered = " ".join(
            f"{key}={fields[key]}" for key in sorted(fields)
        )
        print(
            f"[{name[len('progress.'):]}] {rendered}",
            file=stream,
            flush=True,
        )


class _TeeSpan:
    """Context manager fanning one span out to several children."""

    __slots__ = ("_spans",)

    def __init__(self, spans: Sequence[object]):
        self._spans = spans

    def __enter__(self) -> "_TeeSpan":
        for span in self._spans:
            span.__enter__()  # type: ignore[attr-defined]
        return self

    def __exit__(self, *exc_info: object) -> bool:
        for span in reversed(self._spans):
            span.__exit__(*exc_info)  # type: ignore[attr-defined]
        return False


class TeeInstrumentation(Instrumentation):
    """Fans every verb out to several instrumentations.

    Used by the CLI to drive a :class:`Recorder` (for ``--obs-out``)
    and a :class:`ProgressTicker` (for ``--progress``) from the same
    run without the engines knowing.
    """

    __slots__ = ("_sinks",)

    def __init__(self, *sinks: Instrumentation):
        self._sinks = tuple(sinks)

    def count(self, name: str, delta: int = 1) -> None:
        for sink in self._sinks:
            sink.count(name, delta)

    def gauge(self, name: str, value: float) -> None:
        for sink in self._sinks:
            sink.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        for sink in self._sinks:
            sink.observe(name, value)

    def event(self, name: str, /, **fields: object) -> None:
        for sink in self._sinks:
            sink.event(name, **fields)

    def span(self, name: str, /, **attrs: object) -> _TeeSpan:
        return _TeeSpan([sink.span(name, **attrs) for sink in self._sinks])

    def annotate(self, **fields: object) -> None:
        for sink in self._sinks:
            sink.annotate(**fields)

    def absorb(self, record: RunRecord) -> None:
        for sink in self._sinks:
            sink.absorb(record)
