"""Instrumentation protocol, null object, and the recording implementation.

The hot paths of the library (the stabilization fixpoint, the
refinement transition scan, the simulator's step loop) accept an
:class:`Instrumentation` and report what they do through four verbs:

* ``count(name, delta)`` — bump a monotonic counter;
* ``event(name, **fields)`` — record a discrete occurrence;
* ``span(name)`` — a context manager timing one phase;
* ``annotate(**fields)`` — attach run-level metadata.

Two implementations exist.  :class:`NullInstrumentation` is the
default everywhere: every verb is a no-op, ``span`` hands back one
shared, reusable context manager, and the instance carries no state at
all (``__slots__ = ()``), so an uninstrumented caller pays exactly one
attribute lookup and one call per reported event — no allocation, no
branching in the engine code.  :class:`Recorder` captures everything
into an in-memory :class:`~repro.obs.record.RunRecord` that can be
persisted as JSONL and rendered by ``repro report``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from .record import EventRecord, RunRecord, SpanStats

__all__ = [
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "Recorder",
]


class _NullSpan:
    """The shared no-op context manager returned by the null object."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Instrumentation:
    """The protocol instrumented code talks to.

    The base class *is* the null behaviour: subclasses override the
    verbs they care about.  Instrumented code must treat the verbs as
    fire-and-forget — none of them returns a value (``span`` returns a
    context manager) and none may raise.
    """

    __slots__ = ()

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to the monotonic counter ``name``."""

    def event(self, name: str, /, **fields: object) -> None:
        """Record a discrete event with arbitrary JSON-safe fields."""

    def span(self, name: str):
        """A context manager timing the phase ``name``."""
        return _NULL_SPAN

    def annotate(self, **fields: object) -> None:
        """Merge run-level metadata (program name, seed, flags, ...)."""


class NullInstrumentation(Instrumentation):
    """Explicit zero-overhead implementation (identical to the base).

    Kept as a distinct class so call sites can default to
    ``NULL_INSTRUMENTATION`` and tests can assert the null path is
    allocation-free: the instance has no ``__dict__``, and ``span``
    always returns the same shared object.
    """

    __slots__ = ()


#: Module-level singleton used as the default argument everywhere.
NULL_INSTRUMENTATION = NullInstrumentation()


class _RecorderSpan:
    """Context manager that reports its duration back to the recorder."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "Recorder", name: str):
        self._recorder = recorder
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_RecorderSpan":
        self._start = self._recorder._clock()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._recorder._finish_span(
            self._name, self._recorder._clock() - self._start
        )
        return False


class Recorder(Instrumentation):
    """Instrumentation that captures a structured run record in memory.

    Spans are aggregated per name (total seconds + number of entries),
    counters are summed, events are kept in order with a timestamp
    relative to the recorder's creation.

    Args:
        kind: what the run is (``"check"``, ``"simulate"``, ...);
            stored on the resulting :class:`RunRecord`.
        clock: monotonic time source in seconds (injectable for
            deterministic tests; default ``time.perf_counter``).
    """

    def __init__(
        self,
        kind: str = "run",
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.kind = kind
        self._clock = clock
        self._t0 = clock()
        self._meta: Dict[str, object] = {}
        self._counters: Dict[str, int] = {}
        self._spans: Dict[str, SpanStats] = {}
        self._events: List[EventRecord] = []

    def count(self, name: str, delta: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + delta

    def event(self, name: str, /, **fields: object) -> None:
        self._events.append(
            EventRecord(name, self._clock() - self._t0, dict(fields))
        )

    def span(self, name: str) -> _RecorderSpan:
        return _RecorderSpan(self, name)

    def annotate(self, **fields: object) -> None:
        self._meta.update(fields)

    def _finish_span(self, name: str, seconds: float) -> None:
        stats = self._spans.get(name)
        if stats is None:
            self._spans[name] = SpanStats(seconds, 1)
        else:
            self._spans[name] = SpanStats(
                stats.seconds + seconds, stats.calls + 1
            )

    @property
    def counters(self) -> Dict[str, int]:
        """Current counter values (live view as a copy)."""
        return dict(self._counters)

    def counter(self, name: str, default: int = 0) -> int:
        """One counter's current value."""
        return self._counters.get(name, default)

    def record(self) -> RunRecord:
        """Snapshot everything captured so far as a :class:`RunRecord`."""
        return RunRecord(
            kind=self.kind,
            meta=dict(self._meta),
            counters=dict(self._counters),
            spans=dict(self._spans),
            events=list(self._events),
            wall_seconds=self._clock() - self._t0,
        )
