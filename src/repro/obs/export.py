"""Export run records to external tooling formats.

Two exporters back ``repro report --format=...``:

* :func:`chrome_trace` — Chrome ``trace_event`` JSON (load it in
  ``chrome://tracing`` or Perfetto).  Every record becomes its own
  ``pid`` lane; each span-tree node is a complete ("X") event with
  microsecond start/duration, and each recorded event is an instant
  ("i") mark, so merged multi-worker records render as interleaved
  per-worker timelines.
* :func:`prometheus_text` — the Prometheus text exposition format
  (textfile-collector compatible).  Counters, gauges, and fixed-bucket
  histograms (with cumulative ``le`` buckets, ``_sum`` and ``_count``)
  are emitted under sanitized all-lowercase ``repro_``-prefixed names;
  multiple records in a file are merged deterministically first.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Sequence

from .record import RunRecord, merge_records

__all__ = ["chrome_trace", "prometheus_text", "metric_name"]

_NAME_RE = re.compile(r"[^a-z_]")


def metric_name(name: str, prefix: str = "repro_") -> str:
    """A Prometheus-safe metric name: lowercase letters and ``_`` only.

    ``check.states.enumerated`` becomes
    ``repro_check_states_enumerated``.  Any character outside
    ``[a-z_]`` (after lowercasing) maps to ``_``, which keeps the
    output inside the strict name grammar the CI smoke validates.
    """
    return prefix + _NAME_RE.sub("_", name.lower())


def _format_value(value: float) -> str:
    """Render a sample value without stray float noise."""
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def chrome_trace(records: Sequence[RunRecord]) -> str:
    """Chrome ``trace_event`` JSON for the given records.

    Timestamps are microseconds relative to the earliest record's
    ``wall_base``; each record gets its own ``pid`` so worker lanes
    stay visually separate even after a merge.
    """
    base = min((record.wall_base for record in records), default=0.0)
    trace_events: List[Dict[str, object]] = []
    for pid, record in enumerate(records):
        offset_us = (record.wall_base - base) * 1e6
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{record.kind}[{pid}]"},
            }
        )
        for node in record.tree:
            trace_events.append(
                {
                    "name": node.name,
                    "cat": record.kind,
                    "ph": "X",
                    "ts": node.start * 1e6 + offset_us,
                    "dur": node.seconds * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": dict(node.attrs),
                }
            )
        for event in record.events:
            trace_events.append(
                {
                    "name": event.name,
                    "cat": record.kind,
                    "ph": "i",
                    "ts": event.at * 1e6 + offset_us,
                    "pid": pid,
                    "tid": 0,
                    "s": "p",
                    "args": dict(event.fields),
                }
            )
    return json.dumps(
        {"traceEvents": trace_events, "displayTimeUnit": "ms"},
        sort_keys=True,
    )


def prometheus_text(records: Sequence[RunRecord]) -> str:
    """Prometheus text exposition of the records' metrics.

    Multiple records are merged first
    (:func:`~repro.obs.record.merge_records`), so the output reflects
    run totals.  Returns lines terminated by a trailing newline; every
    sample line matches ``^[a-z_]+(\\{.*\\})? [0-9.eE+-]+$``.
    """
    if not records:
        return ""
    merged = records[0] if len(records) == 1 else merge_records(list(records))
    lines: List[str] = []
    for name in sorted(merged.counters):
        metric = metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(merged.counters[name])}")
    for name in sorted(merged.gauges):
        metric = metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(merged.gauges[name].value)}")
    for name in sorted(merged.histograms):
        metric = metric_name(name)
        stats = merged.histograms[name]
        lines.append(f"# TYPE {metric} histogram")
        cumulative = stats.cumulative()
        for bound, running in zip(stats.bounds, cumulative):
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} {running}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {stats.count}')
        lines.append(f"{metric}_sum {_format_value(stats.total)}")
        lines.append(f"{metric}_count {stats.count}")
    for name in sorted(merged.spans):
        metric = metric_name(name + ".seconds")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {repr(float(merged.spans[name].seconds))}")
    return "\n".join(lines) + "\n"
