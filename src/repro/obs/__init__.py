"""Structured observability for checker, simulator, and benchmark runs.

The package provides three layers:

* :mod:`repro.obs.instrument` — the :class:`Instrumentation` protocol
  the engines report through, the zero-overhead
  :class:`NullInstrumentation` default, and the :class:`Recorder`
  that captures timed spans, monotonic counters, and discrete events;
* :mod:`repro.obs.record` — the :class:`RunRecord` artifact and its
  JSONL sink/loader, so every run can be archived and inspected later;
* :mod:`repro.obs.report` — the human-readable summary renderer used
  by the ``repro report`` CLI subcommand.

Instrumented entry points (``check_stabilization``, the refinement
checks, ``simulate``/``run_until``) take ``instrumentation=`` and
default to :data:`NULL_INSTRUMENTATION`, so uninstrumented callers pay
one attribute call per reported event and nothing else.
"""

from .instrument import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    NullInstrumentation,
    Recorder,
)
from .record import (
    EventRecord,
    RunRecord,
    RunRecordError,
    SpanStats,
    append_jsonl_line,
    load_jsonl,
    load_tagged_lines,
    loads_jsonl,
    write_jsonl,
)
from .report import summarize_record, summarize_text

__all__ = [
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "Recorder",
    "EventRecord",
    "RunRecord",
    "RunRecordError",
    "SpanStats",
    "append_jsonl_line",
    "load_jsonl",
    "load_tagged_lines",
    "loads_jsonl",
    "write_jsonl",
    "summarize_record",
    "summarize_text",
]
