"""Structured observability for checker, simulator, and benchmark runs.

The package provides five layers:

* :mod:`repro.obs.instrument` — the :class:`Instrumentation` protocol
  the engines report through (counters, gauges, histograms, events,
  nested spans, worker-record absorption), the zero-overhead
  :class:`NullInstrumentation` default, the :class:`Recorder` that
  captures everything, plus :class:`ProgressEmitter` (throttled
  ``progress.*`` heartbeats), :class:`ProgressTicker` (live stderr
  rendering), and :class:`TeeInstrumentation` (verb fan-out);
* :mod:`repro.obs.registry` — the gauge/histogram metrics registry
  and its deterministic merge helpers;
* :mod:`repro.obs.trace` — the hierarchical span tree
  (:class:`SpanNode`) behind every record;
* :mod:`repro.obs.record` — the :class:`RunRecord` artifact, its
  JSONL sink/loader, and :func:`merge_records` for folding per-worker
  records into run totals;
* :mod:`repro.obs.report` / :mod:`repro.obs.export` — the summary
  renderer and the Chrome ``trace_event`` / Prometheus exporters
  behind the ``repro report`` CLI subcommand.

Instrumented entry points (``check_stabilization``, the refinement
checks, ``simulate``/``run_until``) take ``instrumentation=`` and
default to :data:`NULL_INSTRUMENTATION`, so uninstrumented callers pay
one attribute call per reported event and nothing else.
"""

from .export import chrome_trace, metric_name, prometheus_text
from .instrument import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    NullInstrumentation,
    ProgressEmitter,
    ProgressTicker,
    Recorder,
    TeeInstrumentation,
)
from .record import (
    EventRecord,
    RunRecord,
    RunRecordError,
    SpanStats,
    append_jsonl_line,
    load_jsonl,
    load_tagged_lines,
    loads_jsonl,
    merge_records,
    write_jsonl,
)
from .registry import (
    DEFAULT_BUCKETS,
    GaugeStats,
    HistogramStats,
    MetricsRegistry,
    merge_gauges,
    merge_histograms,
)
from .report import summarize_record, summarize_text
from .trace import SpanNode, render_span_tree

__all__ = [
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "Recorder",
    "ProgressEmitter",
    "ProgressTicker",
    "TeeInstrumentation",
    "EventRecord",
    "RunRecord",
    "RunRecordError",
    "SpanStats",
    "SpanNode",
    "GaugeStats",
    "HistogramStats",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "append_jsonl_line",
    "load_jsonl",
    "load_tagged_lines",
    "loads_jsonl",
    "merge_records",
    "merge_gauges",
    "merge_histograms",
    "write_jsonl",
    "chrome_trace",
    "prometheus_text",
    "metric_name",
    "render_span_tree",
    "summarize_record",
    "summarize_text",
]
