"""The hierarchical span tree behind a run record.

PR 1's spans were flat per-name aggregates (total seconds + call
count); those aggregates remain — they are what the summary report and
the long-lived metrics files key on — but every span *instance* is now
additionally recorded as a :class:`SpanNode` in a trace tree, carrying
its start offset, duration, nesting parent, and per-span attributes.

The tree is stored flat, in **enter order**, with parent links as
indices into the same list (``-1`` marks a root).  Enter order makes
the representation appendable while spans are still open (a node is
created on ``__enter__`` and its duration filled on ``__exit__``), is
trivially JSONL-serializable, and guarantees a parent always precedes
its children — the property :func:`render_span_tree` and the Chrome
``trace_event`` exporter rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["SpanNode", "render_span_tree", "rebase_nodes"]


@dataclass
class SpanNode:
    """One timed span instance in the trace tree.

    Attributes:
        name: the span name (dotted phase name, e.g. ``"check.core"``).
        start: seconds since the owning record's clock base when the
            span was entered.
        seconds: the span's duration (``0.0`` while still open).
        parent: index of the enclosing span in the flat node list, or
            ``-1`` for a root span.
        attrs: JSON-safe per-span attributes (batch sizes, engine
            names, round indices).
    """

    name: str
    start: float
    seconds: float = 0.0
    parent: int = -1
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }


def rebase_nodes(
    nodes: Sequence[SpanNode], offset: float, parent_shift: int
) -> List[SpanNode]:
    """Copies of ``nodes`` shifted in time and in parent-index space.

    Used when folding a worker's span tree into a parent record:
    ``offset`` moves the start times onto the parent's clock base and
    ``parent_shift`` re-anchors the parent indices after the worker's
    nodes are appended behind the parent's existing ones.  Roots stay
    roots.
    """
    return [
        SpanNode(
            node.name,
            node.start + offset,
            node.seconds,
            node.parent if node.parent < 0 else node.parent + parent_shift,
            dict(node.attrs),
        )
        for node in nodes
    ]


def render_span_tree(nodes: Sequence[SpanNode], indent: str = "  ") -> str:
    """An indented text rendering of the span tree, in enter order.

    Example::

        check.total  12.480 ms
          check.legitimate  1.204 ms
          check.core  9.911 ms  {rounds: 4}
    """
    children: Dict[int, List[int]] = {}
    roots: List[int] = []
    for index, node in enumerate(nodes):
        if node.parent < 0:
            roots.append(index)
        else:
            children.setdefault(node.parent, []).append(index)
    lines: List[str] = []

    def visit(index: int, depth: int) -> None:
        node = nodes[index]
        rendered_attrs = ""
        if node.attrs:
            inner = ", ".join(
                f"{key}: {node.attrs[key]!r}" for key in sorted(node.attrs)
            )
            rendered_attrs = f"  {{{inner}}}"
        lines.append(
            f"{indent * depth}{node.name}  "
            f"{_format_seconds(node.seconds)}{rendered_attrs}"
        )
        for child in children.get(index, ()):
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"
