"""Run records and their JSONL persistence.

A :class:`RunRecord` is the durable artifact of an instrumented run:
metadata, monotonic counters, gauges, histograms, aggregated span
timings, the hierarchical span tree, and the ordered event log.
Records serialize to JSON Lines — one self-describing object per
line, distinguished by a ``"t"`` tag::

    {"t": "run", "kind": "check", "wall_seconds": 0.012,
     "wall_base": 1754556000.2, "meta": {...}}
    {"t": "counter", "name": "check.states.enumerated", "value": 64}
    {"t": "gauge", "name": "proc.rss.kib", "value": 81532, "at": 0.01}
    {"t": "hist", "name": "check.frontier.size",
     "bounds": [1.0, 2.0], "counts": [3, 1, 0], "total": 5.0, "count": 4}
    {"t": "span", "name": "check.core", "seconds": 0.008, "calls": 1}
    {"t": "span-node", "name": "check.core", "start": 0.002,
     "seconds": 0.008, "parent": 0, "attrs": {}}
    {"t": "event", "name": "check.fixpoint.iteration", "at": 0.004,
     "fields": {"index": 1, "evicted": 3}}

A ``"run"`` line opens a record; the lines that follow attach to it,
so one file can archive several runs back to back.  ``wall_base`` is
the absolute epoch time of the record's clock zero: event ``at``
offsets and span ``start`` offsets are relative to it, which is what
lets records from several worker processes merge into one coherent
timeline (:func:`merge_records`).  ``span-node`` lines appear in enter
order; their ``parent`` indices refer to positions in that order.
The same tagged-line convention is used by
:meth:`repro.simulation.trace.Trace.to_jsonl`, which lets ``repro
report`` summarize run records and archived traces from the same file
format — readers skip tags they do not know.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from ..core.errors import ReproError
from .registry import (
    GaugeStats,
    HistogramStats,
    merge_gauges,
    merge_histograms,
)
from .trace import SpanNode, rebase_nodes

__all__ = [
    "SpanStats",
    "EventRecord",
    "RunRecord",
    "RunRecordError",
    "merge_records",
    "write_jsonl",
    "append_jsonl_line",
    "load_tagged_lines",
    "load_jsonl",
    "loads_jsonl",
]


class RunRecordError(ReproError):
    """A run-record file or line could not be parsed."""


@dataclass(frozen=True)
class SpanStats:
    """Aggregated timing of one named phase.

    Attributes:
        seconds: total wall time spent inside the span.
        calls: how many times the span was entered.
    """

    seconds: float
    calls: int


@dataclass(frozen=True)
class EventRecord:
    """One discrete event.

    Attributes:
        name: event name (dotted, e.g. ``"sim.progress"``).
        at: seconds since the record's clock base (``wall_base``).
        fields: JSON-safe payload.
    """

    name: str
    at: float
    fields: Dict[str, object] = field(default_factory=dict)


@dataclass
class RunRecord:
    """Everything one instrumented run reported.

    Attributes:
        kind: the run flavour (``"check"``, ``"refines"``,
            ``"simulate"``, ``"ring"``, ...).
        meta: run-level annotations (program name, seed, flags).
        counters: monotonic counter totals.
        gauges: last-value metrics with their sample offsets.
        histograms: fixed-bucket distributions.
        spans: per-phase aggregated timings (flat, by name).
        tree: the hierarchical span instances, in enter order.
        events: the ordered event log.
        wall_seconds: total wall time of the run.
        wall_base: absolute epoch seconds of the record's clock zero;
            ``0.0`` on legacy records that predate cross-process
            merging.
    """

    kind: str
    meta: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, GaugeStats] = field(default_factory=dict)
    histograms: Dict[str, HistogramStats] = field(default_factory=dict)
    spans: Dict[str, SpanStats] = field(default_factory=dict)
    tree: List[SpanNode] = field(default_factory=list)
    events: List[EventRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    wall_base: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """A plain-JSON view (used by the benchmark metrics sink)."""
        return {
            "kind": self.kind,
            "wall_seconds": self.wall_seconds,
            "wall_base": self.wall_base,
            "meta": dict(self.meta),
            "counters": dict(self.counters),
            "gauges": {
                name: {"value": stats.value, "at": stats.at}
                for name, stats in self.gauges.items()
            },
            "histograms": {
                name: stats.to_dict() for name, stats in self.histograms.items()
            },
            "spans": {
                name: {"seconds": stats.seconds, "calls": stats.calls}
                for name, stats in self.spans.items()
            },
            "tree": [node.to_dict() for node in self.tree],
            "events": [
                {"name": event.name, "at": event.at, "fields": dict(event.fields)}
                for event in self.events
            ],
        }

    def to_jsonl_lines(self) -> List[str]:
        """Serialize as the tagged JSONL lines described in the module doc."""
        lines = [
            json.dumps(
                {
                    "t": "run",
                    "kind": self.kind,
                    "wall_seconds": self.wall_seconds,
                    "wall_base": self.wall_base,
                    "meta": self.meta,
                },
                sort_keys=True,
            )
        ]
        for name in sorted(self.counters):
            lines.append(
                json.dumps(
                    {"t": "counter", "name": name, "value": self.counters[name]},
                    sort_keys=True,
                )
            )
        for name in sorted(self.gauges):
            stats = self.gauges[name]
            lines.append(
                json.dumps(
                    {
                        "t": "gauge",
                        "name": name,
                        "value": stats.value,
                        "at": stats.at,
                    },
                    sort_keys=True,
                )
            )
        for name in sorted(self.histograms):
            payload: Dict[str, object] = {"t": "hist", "name": name}
            payload.update(self.histograms[name].to_dict())
            lines.append(json.dumps(payload, sort_keys=True))
        for name in sorted(self.spans):
            span_stats = self.spans[name]
            lines.append(
                json.dumps(
                    {
                        "t": "span",
                        "name": name,
                        "seconds": span_stats.seconds,
                        "calls": span_stats.calls,
                    },
                    sort_keys=True,
                )
            )
        for node in self.tree:
            node_payload: Dict[str, object] = {"t": "span-node"}
            node_payload.update(node.to_dict())
            lines.append(json.dumps(node_payload, sort_keys=True))
        for event in self.events:
            lines.append(
                json.dumps(
                    {
                        "t": "event",
                        "name": event.name,
                        "at": event.at,
                        "fields": event.fields,
                    },
                    sort_keys=True,
                )
            )
        return lines


def _record_sort_key(record: RunRecord) -> "tuple[float, str, str]":
    """A deterministic total order over records, for commutative merges."""
    return (
        record.wall_base,
        record.kind,
        json.dumps(record.meta, sort_keys=True, default=str),
    )


def _event_sort_key(event: EventRecord) -> "tuple[float, str, str]":
    return (
        event.at,
        event.name,
        json.dumps(event.fields, sort_keys=True, default=str),
    )


def merge_records(records: Sequence[RunRecord], kind: str = "") -> RunRecord:
    """Deterministically combine per-process records into one.

    The merge is **commutative and associative up to the sort**: the
    inputs are first ordered by ``(wall_base, kind, meta)``, so
    ``merge([A, B]) == merge([B, A])`` field for field.  Semantics per
    family:

    * ``counters`` and ``histograms`` sum; ``spans`` aggregate
      (seconds and call counts add);
    * ``gauges`` keep the sample with the latest *absolute* timestamp
      (``wall_base + at``), value tie-break;
    * ``events`` and span ``tree`` nodes are rebased onto the earliest
      ``wall_base`` and interleaved in absolute-time order (stable
      name/fields tie-break for events, record order for tree nodes so
      parent links stay valid);
    * ``wall_base`` becomes the earliest base and ``wall_seconds`` the
      covered envelope ``max(base + wall) - min(base)``.

    Args:
        records: the records to merge (at least one).
        kind: the merged record's kind; defaults to the first record's
            (in sorted order).

    Raises:
        RunRecordError: on an empty sequence or diverging histogram
            bucket bounds.
    """
    if not records:
        raise RunRecordError("cannot merge zero run records")
    ordered = sorted(records, key=_record_sort_key)
    base = min(record.wall_base for record in ordered)
    merged = RunRecord(
        kind=kind or ordered[0].kind,
        wall_base=base,
        wall_seconds=max(
            record.wall_base + record.wall_seconds for record in ordered
        )
        - base,
    )
    for record in ordered:
        offset = record.wall_base - base
        merged.meta.update(record.meta)
        for name, value in record.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
        for name, span_stats in record.spans.items():
            current = merged.spans.get(name)
            if current is None:
                merged.spans[name] = span_stats
            else:
                merged.spans[name] = SpanStats(
                    current.seconds + span_stats.seconds,
                    current.calls + span_stats.calls,
                )
        shift = len(merged.tree)
        merged.tree.extend(rebase_nodes(record.tree, offset, shift))
        merged.events.extend(
            EventRecord(event.name, event.at + offset, dict(event.fields))
            for event in record.events
        )
    merged.events.sort(key=_event_sort_key)
    try:
        merged.gauges = merge_gauges(
            [
                {
                    name: GaugeStats(
                        stats.value, stats.at + record.wall_base - base
                    )
                    for name, stats in record.gauges.items()
                }
                for record in ordered
            ]
        )
        merged.histograms = merge_histograms(
            [record.histograms for record in ordered]
        )
    except ValueError as exc:
        raise RunRecordError(str(exc))
    return merged


def write_jsonl(
    records: Iterable[RunRecord], path: Union[str, Path]
) -> None:
    """Persist run records to ``path``, one tagged JSON object per line."""
    lines: List[str] = []
    for record in records:
        lines.extend(record.to_jsonl_lines())
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def append_jsonl_line(path: Union[str, Path], payload: Dict[str, object]) -> None:
    """Append one tagged JSON object to ``path`` and flush it to disk.

    This is the incremental-checkpoint primitive: the campaign engine
    appends one self-describing line per completed cell, so a crash or
    SIGINT between cells loses nothing.  ``payload`` must carry a
    ``"t"`` tag (enforced) so the file stays readable by every tagged-
    JSONL consumer in :mod:`repro.obs` — readers skip tags they do not
    know.

    Raises:
        RunRecordError: when the payload has no ``"t"`` tag.
    """
    if "t" not in payload:
        raise RunRecordError("tagged JSONL lines require a 't' tag")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, sort_keys=True) + "\n")
        handle.flush()


def load_tagged_lines(path: Union[str, Path], tag: str) -> List[Dict[str, object]]:
    """All JSONL objects in ``path`` carrying ``"t": tag``, in file order.

    Lines with other tags are skipped (the file may interleave run
    records, traces, and checkpoint lines).  A missing file yields an
    empty list — the natural reading for "no checkpoint yet".

    Raises:
        RunRecordError: on malformed JSON.
    """
    file = Path(path)
    if not file.exists():
        return []
    rows: List[Dict[str, object]] = []
    for index, line in enumerate(
        file.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RunRecordError(f"line {index}: not valid JSON ({exc})")
        if isinstance(payload, dict) and payload.get("t") == tag:
            rows.append(payload)
    return rows


def loads_jsonl(text: str) -> List[RunRecord]:
    """Parse run records out of JSONL text.

    Lines with unknown tags (e.g. archived trace lines) are skipped so
    mixed files remain loadable; record lines appearing before any
    ``"run"`` line are an error.

    Raises:
        RunRecordError: on malformed JSON or an orphaned record line.
    """
    records: List[RunRecord] = []
    current: Union[RunRecord, None] = None
    known = ("counter", "gauge", "hist", "span", "span-node", "event")
    for index, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RunRecordError(f"line {index}: not valid JSON ({exc})")
        if not isinstance(payload, dict):
            raise RunRecordError(f"line {index}: expected a JSON object")
        tag = payload.get("t")
        if tag == "run":
            current = RunRecord(
                kind=str(payload.get("kind", "run")),
                meta=dict(payload.get("meta", {})),
                wall_seconds=float(payload.get("wall_seconds", 0.0)),
                wall_base=float(payload.get("wall_base", 0.0)),
            )
            records.append(current)
            continue
        if tag in known:
            if current is None:
                raise RunRecordError(
                    f"line {index}: {tag!r} line before any 'run' line"
                )
            if tag == "counter":
                current.counters[str(payload["name"])] = int(payload["value"])
            elif tag == "gauge":
                current.gauges[str(payload["name"])] = GaugeStats(
                    float(payload["value"]), float(payload.get("at", 0.0))
                )
            elif tag == "hist":
                current.histograms[str(payload["name"])] = HistogramStats(
                    tuple(float(b) for b in payload["bounds"]),
                    tuple(int(c) for c in payload["counts"]),
                    float(payload.get("total", 0.0)),
                    int(payload.get("count", 0)),
                )
            elif tag == "span":
                current.spans[str(payload["name"])] = SpanStats(
                    float(payload["seconds"]), int(payload["calls"])
                )
            elif tag == "span-node":
                current.tree.append(
                    SpanNode(
                        str(payload["name"]),
                        float(payload.get("start", 0.0)),
                        float(payload.get("seconds", 0.0)),
                        int(payload.get("parent", -1)),
                        dict(payload.get("attrs", {})),
                    )
                )
            else:
                current.events.append(
                    EventRecord(
                        str(payload["name"]),
                        float(payload.get("at", 0.0)),
                        dict(payload.get("fields", {})),
                    )
                )
            continue
        # Unknown tag (trace archive lines, future extensions): skip.
    return records


def load_jsonl(path: Union[str, Path]) -> List[RunRecord]:
    """Load run records from a JSONL file (see :func:`loads_jsonl`)."""
    return loads_jsonl(Path(path).read_text(encoding="utf-8"))
