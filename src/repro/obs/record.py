"""Run records and their JSONL persistence.

A :class:`RunRecord` is the durable artifact of an instrumented run:
metadata, monotonic counters, aggregated span timings, and the ordered
event log.  Records serialize to JSON Lines — one self-describing
object per line, distinguished by a ``"t"`` tag::

    {"t": "run", "kind": "check", "wall_seconds": 0.012, "meta": {...}}
    {"t": "counter", "name": "check.states.enumerated", "value": 64}
    {"t": "span", "name": "check.core", "seconds": 0.008, "calls": 1}
    {"t": "event", "name": "check.fixpoint.iteration", "at": 0.004,
     "fields": {"index": 1, "evicted": 3}}

A ``"run"`` line opens a record; the counter/span/event lines that
follow attach to it, so one file can archive several runs back to
back.  The same tagged-line convention is used by
:meth:`repro.simulation.trace.Trace.to_jsonl`, which lets ``repro
report`` summarize run records and archived traces from the same file
format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Union

from ..core.errors import ReproError

__all__ = [
    "SpanStats",
    "EventRecord",
    "RunRecord",
    "RunRecordError",
    "write_jsonl",
    "append_jsonl_line",
    "load_tagged_lines",
    "load_jsonl",
    "loads_jsonl",
]


class RunRecordError(ReproError):
    """A run-record file or line could not be parsed."""


@dataclass(frozen=True)
class SpanStats:
    """Aggregated timing of one named phase.

    Attributes:
        seconds: total wall time spent inside the span.
        calls: how many times the span was entered.
    """

    seconds: float
    calls: int


@dataclass(frozen=True)
class EventRecord:
    """One discrete event.

    Attributes:
        name: event name (dotted, e.g. ``"sim.progress"``).
        at: seconds since the recorder was created.
        fields: JSON-safe payload.
    """

    name: str
    at: float
    fields: Dict[str, object] = field(default_factory=dict)


@dataclass
class RunRecord:
    """Everything one instrumented run reported.

    Attributes:
        kind: the run flavour (``"check"``, ``"refines"``,
            ``"simulate"``, ``"ring"``, ...).
        meta: run-level annotations (program name, seed, flags).
        counters: monotonic counter totals.
        spans: per-phase aggregated timings.
        events: the ordered event log.
        wall_seconds: total wall time of the run.
    """

    kind: str
    meta: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    spans: Dict[str, SpanStats] = field(default_factory=dict)
    events: List[EventRecord] = field(default_factory=list)
    wall_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """A plain-JSON view (used by the benchmark metrics sink)."""
        return {
            "kind": self.kind,
            "wall_seconds": self.wall_seconds,
            "meta": dict(self.meta),
            "counters": dict(self.counters),
            "spans": {
                name: {"seconds": stats.seconds, "calls": stats.calls}
                for name, stats in self.spans.items()
            },
            "events": [
                {"name": event.name, "at": event.at, "fields": dict(event.fields)}
                for event in self.events
            ],
        }

    def to_jsonl_lines(self) -> List[str]:
        """Serialize as the tagged JSONL lines described in the module doc."""
        lines = [
            json.dumps(
                {
                    "t": "run",
                    "kind": self.kind,
                    "wall_seconds": self.wall_seconds,
                    "meta": self.meta,
                },
                sort_keys=True,
            )
        ]
        for name in sorted(self.counters):
            lines.append(
                json.dumps(
                    {"t": "counter", "name": name, "value": self.counters[name]},
                    sort_keys=True,
                )
            )
        for name in sorted(self.spans):
            stats = self.spans[name]
            lines.append(
                json.dumps(
                    {
                        "t": "span",
                        "name": name,
                        "seconds": stats.seconds,
                        "calls": stats.calls,
                    },
                    sort_keys=True,
                )
            )
        for event in self.events:
            lines.append(
                json.dumps(
                    {
                        "t": "event",
                        "name": event.name,
                        "at": event.at,
                        "fields": event.fields,
                    },
                    sort_keys=True,
                )
            )
        return lines


def write_jsonl(
    records: Iterable[RunRecord], path: Union[str, Path]
) -> None:
    """Persist run records to ``path``, one tagged JSON object per line."""
    lines: List[str] = []
    for record in records:
        lines.extend(record.to_jsonl_lines())
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def append_jsonl_line(path: Union[str, Path], payload: Dict[str, object]) -> None:
    """Append one tagged JSON object to ``path`` and flush it to disk.

    This is the incremental-checkpoint primitive: the campaign engine
    appends one self-describing line per completed cell, so a crash or
    SIGINT between cells loses nothing.  ``payload`` must carry a
    ``"t"`` tag (enforced) so the file stays readable by every tagged-
    JSONL consumer in :mod:`repro.obs` — readers skip tags they do not
    know.

    Raises:
        RunRecordError: when the payload has no ``"t"`` tag.
    """
    if "t" not in payload:
        raise RunRecordError("tagged JSONL lines require a 't' tag")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, sort_keys=True) + "\n")
        handle.flush()


def load_tagged_lines(path: Union[str, Path], tag: str) -> List[Dict[str, object]]:
    """All JSONL objects in ``path`` carrying ``"t": tag``, in file order.

    Lines with other tags are skipped (the file may interleave run
    records, traces, and checkpoint lines).  A missing file yields an
    empty list — the natural reading for "no checkpoint yet".

    Raises:
        RunRecordError: on malformed JSON.
    """
    file = Path(path)
    if not file.exists():
        return []
    rows: List[Dict[str, object]] = []
    for index, line in enumerate(
        file.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RunRecordError(f"line {index}: not valid JSON ({exc})")
        if isinstance(payload, dict) and payload.get("t") == tag:
            rows.append(payload)
    return rows


def loads_jsonl(text: str) -> List[RunRecord]:
    """Parse run records out of JSONL text.

    Lines with unknown tags (e.g. archived trace lines) are skipped so
    mixed files remain loadable; counter/span/event lines appearing
    before any ``"run"`` line are an error.

    Raises:
        RunRecordError: on malformed JSON or an orphaned record line.
    """
    records: List[RunRecord] = []
    current: Union[RunRecord, None] = None
    for index, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RunRecordError(f"line {index}: not valid JSON ({exc})")
        if not isinstance(payload, dict):
            raise RunRecordError(f"line {index}: expected a JSON object")
        tag = payload.get("t")
        if tag == "run":
            current = RunRecord(
                kind=str(payload.get("kind", "run")),
                meta=dict(payload.get("meta", {})),
                wall_seconds=float(payload.get("wall_seconds", 0.0)),
            )
            records.append(current)
            continue
        if tag in ("counter", "span", "event"):
            if current is None:
                raise RunRecordError(
                    f"line {index}: {tag!r} line before any 'run' line"
                )
            if tag == "counter":
                current.counters[str(payload["name"])] = int(payload["value"])
            elif tag == "span":
                current.spans[str(payload["name"])] = SpanStats(
                    float(payload["seconds"]), int(payload["calls"])
                )
            else:
                current.events.append(
                    EventRecord(
                        str(payload["name"]),
                        float(payload.get("at", 0.0)),
                        dict(payload.get("fields", {})),
                    )
                )
            continue
        # Unknown tag (trace archive lines, future extensions): skip.
    return records


def load_jsonl(path: Union[str, Path]) -> List[RunRecord]:
    """Load run records from a JSONL file (see :func:`loads_jsonl`)."""
    return loads_jsonl(Path(path).read_text(encoding="utf-8"))
