"""Gauges and fixed-bucket histograms — the metrics registry.

Counters (monotonic sums) have been part of the instrumentation
protocol since PR 1; this module adds the two metric families the
convergence-distribution workloads need:

* **gauges** — "last value wins" measurements (sampled RSS, current
  frontier size).  A gauge remembers *when* it was last set (seconds
  since the recorder's creation) so that merging records from several
  worker processes can pick the latest sample deterministically.
* **histograms** — fixed-bucket distributions (convergence rounds,
  frontier sizes, successor fan-out).  Buckets are cumulative-style
  upper bounds, Prometheus-compatible: ``counts[i]`` counts the
  observations ``<= bounds[i]`` and ``counts[-1]`` is the overflow
  bucket (``+Inf``).  Bucket bounds are fixed at the first
  observation, so merging is a plain element-wise sum.

The :class:`MetricsRegistry` is the mutable store a
:class:`~repro.obs.instrument.Recorder` owns; the frozen snapshots
(:class:`GaugeStats`, :class:`HistogramStats`) live on the
:class:`~repro.obs.record.RunRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "GaugeStats",
    "HistogramStats",
    "MetricsRegistry",
    "merge_gauges",
    "merge_histograms",
]

#: Default histogram bucket upper bounds: powers of two up to 2^20.
#: Wide enough for round counts, frontier sizes, and per-state fan-out
#: without per-metric tuning; observations above the last bound land in
#: the overflow (+Inf) bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(float(2**i) for i in range(21))


@dataclass(frozen=True)
class GaugeStats:
    """One gauge's last-set value.

    Attributes:
        value: the most recent sample.
        at: seconds (relative to the owning record's clock base) when
            the sample was taken — the merge tie-breaker.
    """

    value: float
    at: float


@dataclass(frozen=True)
class HistogramStats:
    """A frozen fixed-bucket distribution snapshot.

    Attributes:
        bounds: ascending bucket upper bounds (inclusive); the implicit
            final bucket is ``+Inf``.
        counts: per-bucket observation counts, ``len(bounds) + 1`` long
            (the last entry is the overflow bucket).
        total: sum of every observed value.
        count: number of observations.
    """

    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]
    total: float
    count: int

    def cumulative(self) -> Tuple[int, ...]:
        """Prometheus-style cumulative bucket counts (``le`` semantics)."""
        running = 0
        out: List[int] = []
        for value in self.counts:
            running += value
            out.append(running)
        return tuple(out)

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }


class _Histogram:
    """The mutable accumulation behind one histogram name."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float]):
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered or any(
            upper <= lower for upper, lower in zip(ordered[1:], ordered)
        ):
            raise ValueError(
                f"histogram bounds must be ascending and non-empty, got {ordered}"
            )
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    def snapshot(self) -> HistogramStats:
        return HistogramStats(
            self.bounds, tuple(self.counts), self.total, self.count
        )


class MetricsRegistry:
    """The recorder-side store for gauges and histograms.

    Not thread-safe on its own: the owning
    :class:`~repro.obs.instrument.Recorder` serializes access under its
    lock (one registry is only ever written through one recorder).
    """

    __slots__ = ("_gauges", "_histograms")

    def __init__(self) -> None:
        self._gauges: Dict[str, GaugeStats] = {}
        self._histograms: Dict[str, _Histogram] = {}

    def set_gauge(self, name: str, value: float, at: float) -> None:
        """Record the latest sample of gauge ``name``."""
        self._gauges[name] = GaugeStats(float(value), at)

    def observe(
        self,
        name: str,
        value: float,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        """Add one observation to histogram ``name``.

        The first observation fixes the bucket bounds
        (:data:`DEFAULT_BUCKETS` unless ``bounds`` is given); later
        ``bounds`` arguments are ignored so hot loops do not have to
        thread bucket configuration through every call.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = _Histogram(bounds if bounds is not None else DEFAULT_BUCKETS)
            self._histograms[name] = histogram
        histogram.observe(float(value))

    def merge_gauge(self, name: str, stats: GaugeStats) -> None:
        """Fold a foreign gauge snapshot in (latest ``at`` wins)."""
        current = self._gauges.get(name)
        if current is None or _gauge_order(stats) > _gauge_order(current):
            self._gauges[name] = stats

    def merge_histogram(self, name: str, stats: HistogramStats) -> None:
        """Fold a foreign histogram snapshot in (element-wise sum)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = _Histogram(stats.bounds)
            self._histograms[name] = histogram
        elif histogram.bounds != stats.bounds:
            raise ValueError(
                f"histogram {name!r} bucket bounds diverge: "
                f"{histogram.bounds} != {stats.bounds}"
            )
        for index, count in enumerate(stats.counts):
            histogram.counts[index] += count
        histogram.total += stats.total
        histogram.count += stats.count

    def gauges(self) -> Dict[str, GaugeStats]:
        return dict(self._gauges)

    def histograms(self) -> Dict[str, HistogramStats]:
        return {
            name: histogram.snapshot()
            for name, histogram in self._histograms.items()
        }


def _gauge_order(stats: GaugeStats) -> Tuple[float, float]:
    """Total order for "which gauge sample is newer" (value tie-break)."""
    return (stats.at, stats.value)


def merge_gauges(
    sides: Sequence[Dict[str, GaugeStats]],
) -> Dict[str, GaugeStats]:
    """Combine gauge maps: per name, the sample with the latest ``at``.

    The ``at`` values must share a time base (the caller rebases worker
    records onto the parent's ``wall_base`` before merging).  The value
    tie-break makes the fold commutative even for equal timestamps.
    """
    merged: Dict[str, GaugeStats] = {}
    for side in sides:
        for name, stats in side.items():
            current = merged.get(name)
            if current is None or _gauge_order(stats) > _gauge_order(current):
                merged[name] = stats
    return merged


def merge_histograms(
    sides: Sequence[Dict[str, HistogramStats]],
) -> Dict[str, HistogramStats]:
    """Combine histogram maps by element-wise bucket sums.

    Raises:
        ValueError: when two sides disagree on a histogram's bounds.
    """
    merged: Dict[str, HistogramStats] = {}
    for side in sides:
        for name, stats in side.items():
            current = merged.get(name)
            if current is None:
                merged[name] = stats
                continue
            if current.bounds != stats.bounds:
                raise ValueError(
                    f"histogram {name!r} bucket bounds diverge: "
                    f"{current.bounds} != {stats.bounds}"
                )
            merged[name] = HistogramStats(
                current.bounds,
                tuple(a + b for a, b in zip(current.counts, stats.counts)),
                current.total + stats.total,
                current.count + stats.count,
            )
    return merged
