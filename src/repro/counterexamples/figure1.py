"""Figure 1: initial-state refinement does not preserve stabilization.

The figure's systems share states ``s0, s1, s2, s3, ...`` and ``s*``:

* ``A`` has the chain transitions *and* the recovery edge
  ``s* -> s2``;
* ``C`` has only the chain transitions.

Both have the single initial state ``s0`` and the single
initial-state computation ``s0 s1 s2 s3 ...``, so
``[C (= A]_init`` holds.  But after a transient fault drops the
system at ``s*``, ``A`` recovers through ``s2`` while ``C`` is stuck
— ``C`` is not stabilizing to ``A``.

The infinite chain is folded into a finite lasso (``s3 -> s1``) so
computations are infinite and the automata stay finite; this changes
nothing about the argument.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.state import StateSchema
from ..core.system import System

__all__ = ["figure1_schema", "figure1_abstract", "figure1_concrete", "STAR"]

#: The fault target state of Figure 1.
STAR = "s*"

_STATES: Tuple[str, ...] = ("s0", "s1", "s2", "s3", STAR)


def figure1_schema() -> StateSchema:
    """One variable ranging over the five named states."""
    return StateSchema({"at": _STATES})


def _chain_transitions() -> List[Tuple[Tuple[str], Tuple[str]]]:
    return [
        (("s0",), ("s1",)),
        (("s1",), ("s2",)),
        (("s2",), ("s3",)),
        (("s3",), ("s1",)),  # lasso back: the "..." of the figure
    ]


def figure1_abstract() -> System:
    """``A``: the chain plus the recovery edge ``s* -> s2``."""
    schema = figure1_schema()
    transitions = _chain_transitions() + [((STAR,), ("s2",))]
    return System(schema, transitions, initial=[("s0",)], name="Figure1-A")


def figure1_concrete() -> System:
    """``C``: the chain only — identical from ``s0``, stuck at ``s*``."""
    schema = figure1_schema()
    return System(schema, _chain_transitions(), initial=[("s0",)], name="Figure1-C")
