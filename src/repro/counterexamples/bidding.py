"""The paper's second example: the bidding server.

Specification: store the highest ``k`` bids seen; ``bid(v)`` replaces
the minimum stored bid when ``v`` exceeds it.  The spec tolerates one
corrupted stored bid in the sense that it still ends up with ``k - 1``
of the true best-``k`` bids.

Sorted-list implementation: keeps the bids sorted with the minimum at
the head and compares incoming bids against the head only.  Correct in
the absence of faults — but if the head is corrupted to ``MAX_INT``,
*every* subsequent bid is rejected, and the ``k - 1`` guarantee is
lost.

Both components are implemented from scratch and exercised by the same
driver; :func:`demonstrate` replays the paper's scenario and returns
the machine-checkable verdicts.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "MAX_INT",
    "SpecBiddingServer",
    "SortedListBiddingServer",
    "best_k",
    "tolerance_holds",
    "demonstrate",
]

#: Stand-in for the paper's MAX_INTEGER corruption value.
MAX_INT = 2**31 - 1


class SpecBiddingServer:
    """The specification component: a multiset of the k highest bids.

    Args:
        k: number of winning bids to retain.

    Raises:
        ValueError: on non-positive ``k``.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self._stored: List[int] = []

    def bid(self, value: int) -> bool:
        """Process one bid; returns whether it was accepted.

        Before ``k`` bids have been stored every bid is accepted;
        afterwards ``value`` replaces the minimum stored bid iff it is
        greater than that minimum — comparing against the *recomputed*
        minimum each time, which is what makes the spec tolerant.
        """
        if len(self._stored) < self.k:
            self._stored.append(value)
            return True
        minimum = min(self._stored)
        if value > minimum:
            self._stored.remove(minimum)
            self._stored.append(value)
            return True
        return False

    def winners(self) -> Tuple[int, ...]:
        """The stored bids, descending."""
        return tuple(sorted(self._stored, reverse=True))

    def corrupt(self, index: int, value: int) -> None:
        """Transient fault: overwrite one stored bid."""
        self._stored[index] = value

    def min_index(self) -> int:
        """Index (into internal storage) of the minimum stored bid."""
        return self._stored.index(min(self._stored))


class SortedListBiddingServer:
    """The sorted-list implementation with the head-only comparison.

    The list is kept ascending (minimum at the head).  ``bid(v)``
    compares ``v`` against the *head element only*; when a corruption
    plants a huge value at the head, the comparison rejects everything
    — the implementation bug the paper describes.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self._list: List[int] = []

    def bid(self, value: int) -> bool:
        """Process one bid; returns whether it was accepted."""
        if len(self._list) < self.k:
            self._insert(value)
            return True
        if value > self._list[0]:
            del self._list[0]
            self._insert(value)
            return True
        return False

    def _insert(self, value: int) -> None:
        position = 0
        while position < len(self._list) and self._list[position] < value:
            position += 1
        self._list.insert(position, value)

    def winners(self) -> Tuple[int, ...]:
        """The stored bids, descending."""
        return tuple(reversed(self._list))

    def corrupt(self, index: int, value: int) -> None:
        """Transient fault: overwrite one list cell (no re-sorting —
        faults do not helpfully repair invariants)."""
        self._list[index] = value


def best_k(bids: Sequence[int], k: int) -> Tuple[int, ...]:
    """The true k highest bids of a stream, descending."""
    return tuple(sorted(bids, reverse=True)[:k])


def tolerance_holds(
    winners: Sequence[int], all_bids: Sequence[int], k: int
) -> bool:
    """The paper's tolerance criterion: the declared winners contain at
    least ``k - 1`` of the true best-``k`` bids (as a multiset)."""
    expected = list(best_k(all_bids, k))
    remaining = list(winners)
    hits = 0
    for value in expected:
        if value in remaining:
            remaining.remove(value)
            hits += 1
    return hits >= k - 1


def demonstrate(
    k: int = 3,
    pre_fault_bids: Iterable[int] = (10, 20, 30),
    post_fault_bids: Iterable[int] = (40, 50, 60),
) -> dict:
    """Replay the paper's scenario on both components.

    A fault corrupts one stored bid (the implementation's head) to
    ``MAX_INT`` between two batches of bids.

    Returns:
        dict with the winners of both components, the true best-k,
        and the tolerance verdicts — the spec's should be ``True``,
        the implementation's ``False``.
    """
    pre = list(pre_fault_bids)
    post = list(post_fault_bids)
    spec = SpecBiddingServer(k)
    impl = SortedListBiddingServer(k)
    for value in pre:
        spec.bid(value)
        impl.bid(value)
    # The transient fault: one stored bid becomes MAX_INT.  For the
    # sorted list that cell is the head (index 0); for the spec the
    # position is immaterial — corrupt the minimum for symmetry.
    spec.corrupt(spec.min_index(), MAX_INT)
    impl.corrupt(0, MAX_INT)
    for value in post:
        spec.bid(value)
        impl.bid(value)
    legitimate_bids = pre + post
    return {
        "true_best_k": best_k(legitimate_bids, k),
        "spec_winners": spec.winners(),
        "impl_winners": impl.winners(),
        "spec_tolerant": tolerance_holds(spec.winners(), legitimate_bids, k),
        "impl_tolerant": tolerance_holds(impl.winners(), legitimate_bids, k),
    }
