"""The paper's opening example: compilation does not preserve tolerance.

Source program (trivially tolerant — it keeps forcing ``x = 0``)::

    int x = 0;
    while (x == x) { x = 0; }

Compiled bytecode (the paper's javac output)::

     0  iconst_0
     1  istore_1
     2  goto 7
     5  iconst_0
     6  istore_1
     7  iload_1
     8  iload_1
     9  if_icmpeq 5
    12  return

If the local variable is corrupted *between* the two ``iload_1``
instructions, the comparison at 9 sees two different values and the
program falls through to ``return`` — it terminates, never restoring
``x = 0``.

This module builds both levels from scratch: the abstract one-variable
system, and a faithful little stack VM over whose configurations the
bytecode is a finite-state system.  The abstraction function projects
a VM configuration to the current value of the local; VM micro-steps
that do not change the local are stuttering steps of the abstract
system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.abstraction import AbstractionFunction
from ..core.state import State, StateSchema
from ..core.system import System

__all__ = [
    "Instruction",
    "BYTECODE",
    "vm_step",
    "abstract_loop_system",
    "bytecode_system",
    "bytecode_abstraction",
    "corruption_states",
]

#: Values the integer variable may take in the finite model.  Two
#: suffice: 0 (the program's target) and 1 (a corrupted value).
VALUES: Tuple[int, ...] = (0, 1)

#: Marker for an empty operand-stack slot.
EMPTY = -1


@dataclass(frozen=True)
class Instruction:
    """One bytecode instruction: an opcode and an optional operand."""

    opcode: str
    operand: Optional[int] = None

    def render(self) -> str:
        """Disassembly-style rendering."""
        if self.operand is None:
            return self.opcode
        return f"{self.opcode} {self.operand}"


#: The paper's compiled program, keyed by instruction address.
BYTECODE: Dict[int, Instruction] = {
    0: Instruction("iconst_0"),
    1: Instruction("istore_1"),
    2: Instruction("goto", 7),
    5: Instruction("iconst_0"),
    6: Instruction("istore_1"),
    7: Instruction("iload_1"),
    8: Instruction("iload_1"),
    9: Instruction("if_icmpeq", 5),
    12: Instruction("return"),
}

#: VM configuration: (pc, local1, stack0, stack1) — the operand stack
#: of this program never exceeds depth two.
_PCS: Tuple[int, ...] = tuple(sorted(BYTECODE)) + (13,)  # 13 = halted


def vm_step(config: Tuple[int, int, int, int]) -> Optional[Tuple[int, int, int, int]]:
    """Execute one instruction; ``None`` when halted (or at a bad pc).

    The stack is modelled as two slots filled bottom-up; ``EMPTY``
    marks an unused slot.
    """
    pc, local, s0, s1 = config
    instruction = BYTECODE.get(pc)
    if instruction is None:
        return None
    opcode, operand = instruction.opcode, instruction.operand
    if opcode == "iconst_0":
        if s0 == EMPTY:
            return (pc + 1, local, 0, s1)
        return (pc + 1, local, s0, 0)
    if opcode == "istore_1":
        if s1 != EMPTY:
            return (pc + 1, s1, s0, EMPTY)
        return (pc + 1, s0, EMPTY, EMPTY)
    if opcode == "goto":
        return (operand, local, s0, s1)
    if opcode == "iload_1":
        if s0 == EMPTY:
            return (pc + 1, local, local, s1)
        return (pc + 1, local, s0, local)
    if opcode == "if_icmpeq":
        if s0 == EMPTY or s1 == EMPTY:
            # Malformed stack (possible only in corrupted configurations):
            # fall through with whatever is there, clearing the stack.
            return (pc + 3, local, EMPTY, EMPTY)
        target = operand if s0 == s1 else pc + 3
        return (target, local, EMPTY, EMPTY)
    if opcode == "return":
        return (13, local, EMPTY, EMPTY)
    raise AssertionError(f"unknown opcode {opcode!r}")  # pragma: no cover


def abstract_loop_system() -> System:
    """The source-level system: ``x`` is repeatedly set to 0.

    States are the values of ``x``; from every value there is the
    single transition to 0 (the loop body), and from 0 a self-loop.
    Trivially stabilizing to itself: every computation is eventually
    constantly 0.
    """
    schema = StateSchema({"x": VALUES})
    transitions = [((value,), (0,)) for value in VALUES]
    return System(schema, transitions, initial=[(0,)], name="abstract-loop")


def bytecode_system() -> System:
    """The bytecode program as a finite system over VM configurations.

    The state space is pc x local x two stack slots; the single
    initial state is the entry configuration.  ``return`` leads to the
    halted configuration, which is terminal.
    """
    stack_values = VALUES + (EMPTY,)
    schema = StateSchema(
        {"pc": _PCS, "local": VALUES, "s0": stack_values, "s1": stack_values}
    )
    transitions: List[Tuple[State, State]] = []
    for config in schema.states():
        successor = vm_step(config)  # type: ignore[arg-type]
        if successor is not None and schema.is_valid(successor):
            transitions.append((config, successor))
    initial = [(0, 0, EMPTY, EMPTY)]
    return System(schema, transitions, initial, name="bytecode-loop")


def bytecode_abstraction() -> AbstractionFunction:
    """Project a VM configuration to the abstract variable ``x``."""
    concrete = bytecode_system().schema
    abstract = abstract_loop_system().schema

    def mapping(state: State) -> State:
        return (concrete.value(state, "local"),)

    return AbstractionFunction(concrete, abstract, mapping, name="alpha-vm")


def corruption_states() -> List[State]:
    """The paper's fault: configurations at pc=8 whose stacked copy of
    ``x`` disagrees with the (just corrupted) local.

    From any of these the VM inevitably reaches ``return`` — the
    terminating computation that breaks stabilization.
    """
    system = bytecode_system()
    schema = system.schema
    result: List[State] = []
    for state in schema.states():
        pc = schema.value(state, "pc")
        s0 = schema.value(state, "s0")
        s1 = schema.value(state, "s1")
        local = schema.value(state, "local")
        if pc == 8 and s1 == EMPTY and s0 != EMPTY and s0 != local:
            result.append(state)
    return result
