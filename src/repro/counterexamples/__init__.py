"""The paper's Section 1 counterexamples, built from scratch.

* :mod:`repro.counterexamples.java_compile` — the compiled-loop
  example with a miniature stack VM;
* :mod:`repro.counterexamples.bidding` — the bidding-server spec vs
  its sorted-list implementation;
* :mod:`repro.counterexamples.figure1` — Figure 1's refinement that
  is not stabilization-preserving.
"""

from .bidding import (
    MAX_INT,
    SortedListBiddingServer,
    SpecBiddingServer,
    best_k,
    demonstrate,
    tolerance_holds,
)
from .figure1 import STAR, figure1_abstract, figure1_concrete, figure1_schema
from .recovery_paths import (
    even_path_concrete,
    odd_path_abstract,
    recovery_schema,
)
from .java_compile import (
    BYTECODE,
    Instruction,
    abstract_loop_system,
    bytecode_abstraction,
    bytecode_system,
    corruption_states,
    vm_step,
)

__all__ = [
    "MAX_INT",
    "SortedListBiddingServer",
    "SpecBiddingServer",
    "best_k",
    "demonstrate",
    "tolerance_holds",
    "STAR",
    "even_path_concrete",
    "odd_path_abstract",
    "recovery_schema",
    "figure1_abstract",
    "figure1_concrete",
    "figure1_schema",
    "BYTECODE",
    "Instruction",
    "abstract_loop_system",
    "bytecode_abstraction",
    "bytecode_system",
    "corruption_states",
    "vm_step",
]
