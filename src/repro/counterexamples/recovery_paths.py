"""Section 7's separating example: everywhere-eventually vs convergence.

The paper distinguishes convergence refinement from the more
permissive *everywhere-eventually refinement* of the earlier graybox
work with a recovery-path example: ``A`` recovers to ``s0`` through
the odd-numbered states (``s* s3 s1 s0``) while ``C`` recovers through
the even-numbered ones (``s* s4 s2 s0``).  ``C`` is an
everywhere-eventually refinement of ``A`` — every computation is a
finite prefix followed by the legitimate behaviour at ``s0`` — but not
a convergence refinement: ``C``'s first recovery step ``s* -> s4``
tracks no path of ``A`` at all.

Both automata handle the full six-state space (each repairs the other
family's states by crossing over to its own path), so neither has
spurious deadlocks.
"""

from __future__ import annotations

from repro.core.state import StateSchema
from repro.core.system import System

__all__ = ["recovery_schema", "odd_path_abstract", "even_path_concrete"]

_STATES = ("s0", "s1", "s2", "s3", "s4", "s*")


def recovery_schema() -> StateSchema:
    """One variable over the six named states."""
    return StateSchema({"at": _STATES})


def odd_path_abstract() -> System:
    """``A``: recovery through odd states; even states cross over."""
    transitions = [
        (("s0",), ("s0",)),   # legitimate behaviour: sit at s0
        (("s*",), ("s3",)),
        (("s3",), ("s1",)),
        (("s1",), ("s0",)),
        (("s4",), ("s3",)),   # crossover from the even family
        (("s2",), ("s1",)),
    ]
    return System(recovery_schema(), transitions, initial=[("s0",)], name="A-odd")


def even_path_concrete() -> System:
    """``C``: recovery through even states; odd states cross over."""
    transitions = [
        (("s0",), ("s0",)),
        (("s*",), ("s4",)),
        (("s4",), ("s2",)),
        (("s2",), ("s0",)),
        (("s3",), ("s4",)),   # crossover from the odd family
        (("s1",), ("s2",)),
    ]
    return System(recovery_schema(), transitions, initial=[("s0",)], name="C-even")
