"""Sharded parallel exploration primitives.

Three primitives cover everything the checkers parallelize; each one
computes exactly the set (or classification) its sequential
counterpart computes, so the calling checker's verdict logic does not
change at all:

* :func:`parallel_reachable` — sharded BFS.  The frontier is
  partitioned across workers by the stable state hash
  (:func:`repro.parallel.hashing.shard_of`); each worker expands its
  shard's batch and hands the successors back to the driver, which
  routes every newly discovered state to its owning shard for the
  next round (the *batched cross-shard handoff*).  The result is the
  same reachable set BFS computes, found level by level.
* :func:`parallel_filter_states` — a partitioned filter over any
  state collection with an arbitrary (closure) predicate.  Used for
  the behavioural-core candidate scan and for the fixpoint eviction
  rounds, whose predicate closes over the current core snapshot.
* :func:`parallel_transition_scan` — the convergence-refinement
  transition classification, chunked contiguously so the *first*
  violating transition in sequential order is recoverable from the
  per-chunk results (witness-identical to the sequential scan).

Budget composition: every primitive accepts the caller's
:class:`~repro.checker.budget.BudgetMeter` and charges it in the
driver, batch by batch, before dispatch — a budget overrun raises the
same :class:`~repro.checker.budget.BudgetExceeded` the sequential
code raises and the caller's ``PARTIAL`` machinery takes over
unchanged.  (Because charging is batch-granular, the ``explored``
tally of a parallel ``PARTIAL`` verdict can differ from the
sequential one by up to a batch; completed runs always charge the
same total.)
"""

from __future__ import annotations

from typing import (
    Callable,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..checker.budget import BudgetMeter
from ..core.state import State
from ..core.system import System, Transition
from ..obs import NULL_INSTRUMENTATION, Instrumentation, ProgressEmitter
from .pool import (
    WorkerPool,
    contiguous_chunks,
    shard_batches,
    worker_context,
    worker_instrumentation,
)

__all__ = [
    "parallel_reachable",
    "parallel_filter_states",
    "parallel_transition_scan",
    "TransitionScan",
]

#: Default number of batches dispatched per worker per round — small
#: enough to amortize pickling, large enough to smooth stragglers.
_BATCHES_PER_WORKER = 4


def _expand_batch(states: List[State]) -> List[State]:
    """Worker task: successors of a batch, deduplicated batch-locally."""
    system: System = worker_context()["system"]  # type: ignore[assignment]
    obs = worker_instrumentation()
    seen = set(states)
    out: List[State] = []
    with obs.span("parallel.worker.expand", batch=len(states)):
        for state in states:
            fan_out = 0
            for successor in system.successors(state):
                fan_out += 1
                if successor not in seen:
                    seen.add(successor)
                    out.append(successor)
            obs.observe("parallel.worker.fan_out", fan_out)
    obs.count("parallel.worker.batches")
    obs.count("parallel.worker.states.expanded", len(states))
    return out


def _filter_batch(states: List[State]) -> List[State]:
    """Worker task: the subset of a batch satisfying the predicate."""
    predicate: Callable[[State], bool] = worker_context()[  # type: ignore[assignment]
        "predicate"
    ]
    obs = worker_instrumentation()
    with obs.span("parallel.worker.filter", batch=len(states)):
        kept = [state for state in states if predicate(state)]
    obs.count("parallel.worker.batches")
    obs.count("parallel.worker.states.scanned", len(states))
    return kept


def parallel_reachable(
    system: System,
    sources: Iterable[State],
    workers: int,
    meter: Optional[BudgetMeter] = None,
    phase: str = "parallel.reachable",
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> FrozenSet[State]:
    """All states reachable from ``sources``, explored shard-parallel.

    Equal (as a set) to ``system.reachable_from(sources)``.

    Args:
        system: the automaton to explore (inherited by the workers at
            fork time; never pickled).
        sources: the BFS roots.
        workers: worker processes; must be >= 2 (callers route 1 to
            the sequential path).
        meter: optional shared state budget, charged one unit per
            state at the moment its round is dispatched — mirroring
            the sequential per-expansion charge.
        phase: the budget/obs phase label.
        instrumentation: observability sink for the round, batch, and
            expansion counters.

    Raises:
        BudgetExceeded: via ``meter`` when the budget runs out.
    """
    seen = set(sources)
    frontier: List[State] = list(seen)
    progress = ProgressEmitter(instrumentation, phase)
    rounds = 0
    expanded = 0
    with WorkerPool(workers, system=system) as pool:
        while frontier:
            if meter is not None:
                meter.charge(phase, count=len(frontier), frontier=len(frontier))
            batches = shard_batches(frontier, workers * _BATCHES_PER_WORKER)
            instrumentation.count("parallel.rounds")
            instrumentation.count("parallel.batches", len(batches))
            instrumentation.count("parallel.states.expanded", len(frontier))
            instrumentation.observe("parallel.frontier.size", len(frontier))
            rounds += 1
            expanded += len(frontier)
            progress.tick(rounds, len(frontier), expanded)
            frontier = []
            for successors in pool.map_observed(
                _expand_batch, batches, instrumentation
            ):
                for state in successors:
                    if state not in seen:
                        seen.add(state)
                        frontier.append(state)
    return frozenset(seen)


def parallel_filter_states(
    states: Sequence[State],
    predicate: Callable[[State], bool],
    workers: int,
    meter: Optional[BudgetMeter] = None,
    phase: str = "parallel.filter",
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> List[State]:
    """The states satisfying ``predicate``, scanned shard-parallel.

    Order-preserving over ``states`` (chunks are contiguous and
    results are concatenated in chunk order), so callers that build
    sets or iterate the survivors see the sequential order.

    Args:
        states: the collection to filter (materialized by the caller).
        predicate: any callable, including closures over large frozen
            sets — workers inherit it via fork, nothing is pickled.
        workers: worker processes (>= 2).
        meter: optional budget, charged per chunk before dispatch.
        phase: the budget/obs phase label.
        instrumentation: observability sink.
    """
    chunks = contiguous_chunks(states, workers * _BATCHES_PER_WORKER)
    if not chunks:
        return []
    survivors: List[State] = []
    with WorkerPool(workers, predicate=predicate) as pool:
        if meter is not None:
            for chunk in chunks:
                meter.charge(phase, count=len(chunk), frontier=0)
        instrumentation.count("parallel.batches", len(chunks))
        instrumentation.count("parallel.states.expanded", len(states))
        for kept in pool.map_observed(_filter_batch, chunks, instrumentation):
            survivors.extend(kept)
    return survivors


class TransitionScan:
    """Aggregated result of a parallel refinement transition scan.

    Attributes:
        exact: transitions whose image is a single abstract step.
        stutters: image-stuttering transitions, in sequential order
            (only collected under ``stutter_insensitive``).
        compressions: multi-step-compressing transitions, in
            sequential order.
        violation: ``None``, or ``(kind, source, target)`` for the
            *first* violating transition in sequential order, where
            ``kind`` is ``"stutter-no-self-loop"`` or ``"no-path"``.
    """

    __slots__ = ("exact", "stutters", "compressions", "violation")

    def __init__(
        self,
        exact: int,
        stutters: List[Transition],
        compressions: List[Transition],
        violation: Optional[Tuple[str, State, State]],
    ):
        self.exact = exact
        self.stutters = stutters
        self.compressions = compressions
        self.violation = violation


def _scan_chunk(
    chunk: List[Tuple[int, Transition]]
) -> Tuple[int, List[Transition], List[Transition], Optional[Tuple[int, str, State, State]]]:
    """Worker task: classify one contiguous chunk of transitions.

    Returns the per-chunk tallies plus the first violation's *global*
    index, so the driver can pick the globally first violation.
    """
    from ..checker.graph import shortest_path

    ctx = worker_context()
    obs = worker_instrumentation()
    obs.count("parallel.worker.batches")
    obs.count("parallel.worker.transitions.scanned", len(chunk))
    mapping = ctx["mapping"]
    abstract: System = ctx["abstract"]  # type: ignore[assignment]
    stutter_insensitive: bool = ctx["stutter_insensitive"]  # type: ignore[assignment]
    exact = 0
    stutters: List[Transition] = []
    compressions: List[Transition] = []
    for index, (source, target) in chunk:
        image_source, image_target = mapping(source), mapping(target)  # type: ignore[operator]
        if image_source == image_target:
            if stutter_insensitive:
                stutters.append((source, target))
                continue
            if abstract.has_transition(image_source, image_target):
                exact += 1
                continue
            return exact, stutters, compressions, (
                index, "stutter-no-self-loop", source, target,
            )
        if abstract.has_transition(image_source, image_target):
            exact += 1
            continue
        if shortest_path(abstract, image_source, image_target, min_length=2) is None:
            return exact, stutters, compressions, (index, "no-path", source, target)
        compressions.append((source, target))
    return exact, stutters, compressions, None


def parallel_transition_scan(
    transitions: Sequence[Transition],
    abstract: System,
    mapping: Callable[[State], State],
    stutter_insensitive: bool,
    workers: int,
    meter: Optional[BudgetMeter] = None,
    phase: str = "refine.transition_scan",
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> TransitionScan:
    """Classify every transition for the convergence-refinement check.

    Produces exactly what the sequential scan in
    :func:`repro.checker.refinement_check.check_convergence_refinement`
    produces: the same tallies in the same order, and — when any
    transition violates — the violation the sequential scan would have
    reported first (chunks are contiguous, each worker reports its
    first violation's global index, the driver takes the minimum).

    Args:
        transitions: the concrete transitions in sequential iteration
            order (materialized by the caller).
        abstract: the specification automaton.
        mapping: the abstraction function (fork-inherited closure).
        stutter_insensitive: accept image-stuttering transitions.
        workers: worker processes (>= 2).
        meter: optional budget, charged per chunk (in transitions).
        phase: the budget/obs phase label.
        instrumentation: observability sink.
    """
    indexed = list(enumerate(transitions))
    chunks = contiguous_chunks(indexed, workers * _BATCHES_PER_WORKER)
    if not chunks:
        return TransitionScan(0, [], [], None)
    with WorkerPool(
        workers,
        mapping=mapping,
        abstract=abstract,
        stutter_insensitive=stutter_insensitive,
    ) as pool:
        if meter is not None:
            for chunk in chunks:
                meter.charge(phase, count=len(chunk), unit="transitions")
        instrumentation.count("parallel.batches", len(chunks))
        results = pool.map_observed(_scan_chunk, chunks, instrumentation)
    first: Optional[Tuple[int, str, State, State]] = None
    for _, _, _, found in results:
        if found is not None and (first is None or found[0] < first[0]):
            first = found
    if first is not None:
        return TransitionScan(0, [], [], (first[1], first[2], first[3]))
    exact = 0
    stutters: List[Transition] = []
    compressions: List[Transition] = []
    for chunk_exact, chunk_stutters, chunk_compressions, _ in results:
        exact += chunk_exact
        stutters.extend(chunk_stutters)
        compressions.extend(chunk_compressions)
    return TransitionScan(exact, stutters, compressions, None)
