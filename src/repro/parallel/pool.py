"""The fork-based worker pool behind sharded exploration.

The pool exploits copy-on-write ``fork`` semantics instead of pickling
work context: the driver stashes the per-phase context (the system
under exploration, abstraction closures, auxiliary state sets) in a
module-level slot and *then* forks the workers, which inherit it for
free.  Only the small per-task batches (lists of states or indices)
cross the process boundary as pickles.  This is what lets abstraction
functions — arbitrary Python closures, unpicklable by design — ride
along into the workers untouched.

Consequences callers must respect:

* a :class:`WorkerPool`'s context is frozen at ``__enter__``; a phase
  whose shared data changes between rounds (the fixpoint eviction
  passes) opens a fresh pool per round, which on Linux is a handful of
  milliseconds of fork cost;
* on platforms without ``fork`` (or inside a daemonic worker process,
  where nested pools are forbidden) :func:`resolve_workers` degrades
  to ``1`` and every caller falls back to the sequential path — the
  verdict is identical either way, only the wall-clock changes.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

__all__ = [
    "WorkerPool",
    "parallel_available",
    "resolve_workers",
    "worker_context",
    "contiguous_chunks",
    "shard_batches",
]

T = TypeVar("T")
R = TypeVar("R")

#: The per-phase context inherited by forked workers.  Written by
#: :meth:`WorkerPool.__enter__` in the parent immediately before the
#: fork; read by the task functions in :mod:`repro.parallel.sharding`
#: running in the children.
_WORKER_CONTEXT: Dict[str, object] = {}


def worker_context() -> Dict[str, object]:
    """The live context mapping (parent: staging; child: inherited)."""
    return _WORKER_CONTEXT


def parallel_available() -> bool:
    """Whether fork-based worker pools can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: int) -> int:
    """Clamp a requested worker count to what this process can use.

    Args:
        workers: requested degree of parallelism (``1`` = sequential).

    Returns:
        ``workers`` when fork-based pools are usable here, else ``1``
        (no ``fork`` start method, or we are already inside a daemonic
        pool worker, which may not spawn children).

    Raises:
        ValueError: when ``workers`` is not positive.
    """
    if workers < 1:
        raise ValueError(f"worker count must be positive, got {workers}")
    if workers == 1:
        return 1
    if not parallel_available():
        return 1
    if multiprocessing.current_process().daemon:
        return 1
    return workers


class WorkerPool:
    """A context-managed fork pool with copy-on-write work context.

    Args:
        workers: number of worker processes (must be >= 2; callers
            resolve ``1`` to the sequential path before getting here).
        context: the phase context the workers inherit (systems,
            abstraction closures, frozen state sets).

    Example::

        with WorkerPool(4, system=system) as pool:
            results = pool.map(_expand_batch, batches)
    """

    def __init__(self, workers: int, **context: object):
        if workers < 2:
            raise ValueError(
                f"WorkerPool needs at least 2 workers, got {workers}"
            )
        self.workers = workers
        self._context = context
        self._pool: Optional[object] = None
        self._saved: Optional[Dict[str, object]] = None

    def __enter__(self) -> "WorkerPool":
        self._saved = dict(_WORKER_CONTEXT)
        _WORKER_CONTEXT.clear()
        _WORKER_CONTEXT.update(self._context)
        ctx = multiprocessing.get_context("fork")
        self._pool = ctx.Pool(processes=self.workers)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.terminate()  # type: ignore[attr-defined]
            pool.join()  # type: ignore[attr-defined]
        _WORKER_CONTEXT.clear()
        if self._saved is not None:
            _WORKER_CONTEXT.update(self._saved)
            self._saved = None
        return False

    def map(
        self, task: Callable[[T], R], batches: Sequence[T]
    ) -> List[R]:
        """Run ``task`` over ``batches`` across the workers, in order."""
        if self._pool is None:
            raise RuntimeError("WorkerPool used outside its context")
        return self._pool.map(task, batches)  # type: ignore[attr-defined]

    def imap_unordered(
        self, task: Callable[[T], R], items: Sequence[T]
    ) -> Iterable[R]:
        """Yield ``task`` results as they complete, in any order.

        The campaign executor consumes this so finished cells can be
        checkpointed the moment they land, regardless of grid order.
        """
        if self._pool is None:
            raise RuntimeError("WorkerPool used outside its context")
        return self._pool.imap_unordered(task, items)  # type: ignore[attr-defined]


def contiguous_chunks(items: Sequence[T], chunk_count: int) -> List[List[T]]:
    """Split ``items`` into at most ``chunk_count`` contiguous chunks.

    Index order is preserved across the concatenation of the chunks,
    which is what lets the transition scan reconstruct the *first*
    violation in sequential order from per-chunk results.
    """
    if chunk_count < 1:
        raise ValueError(f"chunk count must be positive, got {chunk_count}")
    total = len(items)
    if total == 0:
        return []
    size = (total + chunk_count - 1) // chunk_count
    return [list(items[i : i + size]) for i in range(0, total, size)]


def shard_batches(states: Iterable[T], shards: int) -> List[List[T]]:
    """Group ``states`` into per-shard batches by stable state hash.

    The same state always lands in the same batch index, so a frontier
    is partitioned identically regardless of the order states were
    discovered in — the cross-shard "handoff" of sharded BFS is just
    the driver routing each newly found state to its owning batch for
    the next round.
    """
    from .hashing import shard_of

    batches: List[List[T]] = [[] for _ in range(shards)]
    for state in states:
        batches[shard_of(state, shards)].append(state)  # type: ignore[arg-type]
    return [batch for batch in batches if batch]
