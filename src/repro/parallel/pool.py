"""The fork-based worker pool behind sharded exploration.

The pool exploits copy-on-write ``fork`` semantics instead of pickling
work context: the driver stashes the per-phase context (the system
under exploration, abstraction closures, auxiliary state sets) in a
module-level slot, and every task attempt forks a child that inherits
it for free.  Only the small per-task batches (lists of states or
indices) cross into the dispatch call, and only results cross back as
pickles.  This is what lets abstraction functions — arbitrary Python
closures, unpicklable by design — ride along into the workers
untouched.

Since the supervised-execution rework, dispatch runs on
:mod:`repro.resilience.supervisor` rather than a raw
``multiprocessing.Pool``: each task attempt is its own forked,
pipe-connected child under the process's active
:class:`~repro.resilience.policy.SupervisionPolicy`.  A worker killed
mid-task (OOM, SIGKILL) or stuck past the task timeout is detected
and retried with deterministic backoff instead of hanging ``map``;
a task that keeps failing abnormally is quarantined to an inline
run in the driver — the guaranteed sequential fallback, with the
byte-identical result.  Recoveries surface as ``resilience.*``
counters/events.

Consequences callers must respect:

* a :class:`WorkerPool`'s context is frozen at ``__enter__``; a phase
  whose shared data changes between rounds (the fixpoint eviction
  passes) opens a fresh pool per round — forks now happen per task
  either way, which on Linux is a handful of milliseconds;
* on platforms without ``fork`` (or inside a daemonic worker process,
  where nested pools are forbidden) :func:`resolve_workers` degrades
  to ``1`` and every caller falls back to the sequential path — the
  verdict is identical either way, only the wall-clock changes;
* an :meth:`WorkerPool.imap_unordered` iterator is only consumable
  inside the pool's ``with`` block; consuming it later raises
  ``RuntimeError`` instead of forking against torn-down context.
"""

from __future__ import annotations

import multiprocessing
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..resilience.supervisor import supervised_map, supervised_unordered

from ..obs import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    NullInstrumentation,
    Recorder,
    RunRecord,
)

__all__ = [
    "WorkerPool",
    "parallel_available",
    "resolve_workers",
    "worker_context",
    "worker_instrumentation",
    "using_worker_instrumentation",
    "contiguous_chunks",
    "shard_batches",
]

T = TypeVar("T")
R = TypeVar("R")


class _PoolIterator(Iterator[R]):
    """An :meth:`WorkerPool.imap_unordered` result stream.

    Bound to its pool's ``with`` block: advancing it after ``__exit__``
    raises ``RuntimeError`` (the staged context is gone, so forking
    another attempt would compute against torn-down state) — even
    though :meth:`close` has already reaped the in-flight children.
    """

    def __init__(
        self, pool: "WorkerPool", inner: Iterator[Tuple[int, R]]
    ) -> None:
        self._pool = pool
        self._inner = inner

    def __iter__(self) -> "Iterator[R]":
        return self

    def __next__(self) -> R:
        if not self._pool._active:
            raise RuntimeError(
                "WorkerPool.imap_unordered iterator consumed after the "
                "pool's context exited"
            )
        _, result = next(self._inner)
        return result

    def close(self) -> None:
        """Tear down the supervised stream, reaping in-flight children."""
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()

#: The per-phase context inherited by forked workers.  Written by
#: :meth:`WorkerPool.__enter__` in the parent immediately before the
#: fork; read by the task functions in :mod:`repro.parallel.sharding`
#: running in the children.
_WORKER_CONTEXT: Dict[str, object] = {}

#: The instrumentation worker-side task code reports through.  In the
#: parent (and in sequential fallbacks) it is whatever the driver
#: installed with :func:`using_worker_instrumentation`; inside an
#: observed pool task it is the per-batch :class:`Recorder` staged by
#: :func:`_observed_task`.  Defaults to the null object, so task code
#: can always call :func:`worker_instrumentation` unconditionally.
_WORKER_INSTRUMENTATION: List[Instrumentation] = [NULL_INSTRUMENTATION]


def worker_context() -> Dict[str, object]:
    """The live context mapping (parent: staging; child: inherited)."""
    return _WORKER_CONTEXT


def worker_instrumentation() -> Instrumentation:
    """The instrumentation task code in this process reports through."""
    return _WORKER_INSTRUMENTATION[0]


@contextmanager
def using_worker_instrumentation(
    instrumentation: Instrumentation,
) -> Iterator[Instrumentation]:
    """Install ``instrumentation`` as this process's worker sink.

    Sequential drivers (and the campaign's in-process executor) use
    this so the same task code reports to the run's recorder whether
    it runs forked or inline; the previous sink is restored on exit.
    """
    previous = _WORKER_INSTRUMENTATION[0]
    _WORKER_INSTRUMENTATION[0] = instrumentation
    try:
        yield instrumentation
    finally:
        _WORKER_INSTRUMENTATION[0] = previous


def _observed_task(
    payload: "Tuple[Callable[[T], R], T]",
) -> "Tuple[R, RunRecord]":
    """Run one task batch under a fresh worker-side recorder.

    Executes in the child: the per-batch :class:`Recorder` (with its
    own absolute ``wall_base``) is installed as the worker sink for the
    duration of the task, then snapshotted and shipped back over the
    result channel next to the task's own result.
    """
    task, batch = payload
    recorder = Recorder(kind="worker")
    with using_worker_instrumentation(recorder):
        result = task(batch)
    return result, recorder.record()


def parallel_available() -> bool:
    """Whether fork-based worker pools can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: int) -> int:
    """Clamp a requested worker count to what this process can use.

    Args:
        workers: requested degree of parallelism (``1`` = sequential).

    Returns:
        ``workers`` when fork-based pools are usable here, else ``1``
        (no ``fork`` start method, or we are already inside a daemonic
        pool worker, which may not spawn children).

    Raises:
        ValueError: when ``workers`` is not positive.
    """
    if workers < 1:
        raise ValueError(f"worker count must be positive, got {workers}")
    if workers == 1:
        return 1
    if not parallel_available():
        return 1
    if multiprocessing.current_process().daemon:
        return 1
    return workers


class WorkerPool:
    """A context-managed, supervised fork pool with copy-on-write work
    context.

    Args:
        workers: maximum concurrent worker processes (must be >= 2;
            callers resolve ``1`` to the sequential path before
            getting here).
        context: the phase context the workers inherit (systems,
            abstraction closures, frozen state sets).

    Example::

        with WorkerPool(4, system=system) as pool:
            results = pool.map(_expand_batch, batches)

    Dispatch is supervised (see :mod:`repro.resilience.supervisor`):
    worker death and task timeouts retry under the process's active
    :class:`~repro.resilience.policy.SupervisionPolicy`, and tasks
    that exhaust their retries run inline in the driver.  Results,
    result order, and exception propagation match the raw pool's
    exactly.
    """

    def __init__(self, workers: int, **context: object):
        if workers < 2:
            raise ValueError(
                f"WorkerPool needs at least 2 workers, got {workers}"
            )
        self.workers = workers
        self._context = context
        self._active = False
        self._saved: Optional[Dict[str, object]] = None
        self._iterators: List[Iterator[object]] = []

    def __enter__(self) -> "WorkerPool":
        self._saved = dict(_WORKER_CONTEXT)
        _WORKER_CONTEXT.clear()
        _WORKER_CONTEXT.update(self._context)
        self._active = True
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._active = False
        # Closing a live imap generator runs its ``finally`` and reaps
        # any children still in flight (e.g. after KeyboardInterrupt
        # escaped the consuming loop).
        for iterator in self._iterators:
            close = getattr(iterator, "close", None)
            if close is not None:
                close()
        self._iterators.clear()
        _WORKER_CONTEXT.clear()
        if self._saved is not None:
            _WORKER_CONTEXT.update(self._saved)
            self._saved = None
        return False

    def _require_active(self) -> None:
        if not self._active:
            raise RuntimeError("WorkerPool used outside its context")

    def map(
        self, task: Callable[[T], R], batches: Sequence[T]
    ) -> List[R]:
        """Run ``task`` over ``batches`` across the workers, in order."""
        self._require_active()
        return supervised_map(
            task,
            batches,
            self.workers,
            instrumentation=worker_instrumentation(),
        )

    def map_observed(
        self,
        task: Callable[[T], R],
        batches: Sequence[T],
        instrumentation: Instrumentation,
    ) -> List[R]:
        """Like :meth:`map`, but collect worker telemetry.

        Each batch runs under a fresh worker-side :class:`Recorder`
        (see :func:`_observed_task`); the per-batch records travel
        back with the results and are folded into ``instrumentation``
        via ``absorb`` — deterministically, in batch order.  With the
        null instrumentation this is exactly :meth:`map`: no wrapper,
        no recorder, no extra pickling.  Supervision recoveries
        (retries, quarantines) report to ``instrumentation`` directly
        — they are driver-side events, not worker records.

        ``task`` must be a module-level function (it crosses into the
        child by fork, like every pool task).
        """
        if type(instrumentation) in (Instrumentation, NullInstrumentation):
            return self.map(task, batches)
        self._require_active()
        pairs = supervised_map(
            _observed_task,
            [(task, batch) for batch in batches],
            self.workers,
            instrumentation=instrumentation,
            label=getattr(task, "__name__", "task"),
        )
        results: List[R] = []
        for result, record in pairs:
            instrumentation.absorb(record)
            results.append(result)
        return results

    def imap_unordered(
        self, task: Callable[[T], R], items: Sequence[T]
    ) -> Iterable[R]:
        """Yield ``task`` results as they complete, in any order.

        The campaign executor consumes this so finished cells can be
        checkpointed the moment they land, regardless of grid order.
        The iterator is bound to the pool's ``with`` block: advancing
        it after ``__exit__`` raises ``RuntimeError`` — the staged
        context is gone, so forking another attempt would compute
        against torn-down state.
        """
        self._require_active()
        iterator = _PoolIterator(
            self,
            supervised_unordered(
                task,
                items,
                self.workers,
                instrumentation=worker_instrumentation(),
            ),
        )
        self._iterators.append(iterator)
        return iterator


def contiguous_chunks(items: Sequence[T], chunk_count: int) -> List[List[T]]:
    """Split ``items`` into at most ``chunk_count`` contiguous chunks.

    Index order is preserved across the concatenation of the chunks,
    which is what lets the transition scan reconstruct the *first*
    violation in sequential order from per-chunk results.
    """
    if chunk_count < 1:
        raise ValueError(f"chunk count must be positive, got {chunk_count}")
    total = len(items)
    if total == 0:
        return []
    size = (total + chunk_count - 1) // chunk_count
    return [list(items[i : i + size]) for i in range(0, total, size)]


def shard_batches(states: Iterable[T], shards: int) -> List[List[T]]:
    """Group ``states`` into per-shard batches by stable state hash.

    The same state always lands in the same batch index, so a frontier
    is partitioned identically regardless of the order states were
    discovered in — the cross-shard "handoff" of sharded BFS is just
    the driver routing each newly found state to its owning batch for
    the next round.
    """
    from .hashing import shard_of

    batches: List[List[T]] = [[] for _ in range(shards)]
    for state in states:
        batches[shard_of(state, shards)].append(state)  # type: ignore[arg-type]
    return [batch for batch in batches if batch]
