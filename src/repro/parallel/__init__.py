"""Parallel sharded exploration and the content-addressed result cache.

The exact decision procedures of :mod:`repro.checker` enumerate state
spaces that grow exponentially with ring size, and a campaign sweep
multiplies that by the grid.  This package is the execution layer that
makes both scale with the hardware:

* :mod:`repro.parallel.pool` — a fork-based worker-process pool whose
  workers inherit the systems, abstraction closures, and auxiliary
  sets by copy-on-write instead of pickling them per task;
* :mod:`repro.parallel.sharding` — sharded breadth-first exploration
  (the frontier is partitioned by a stable state hash, successors are
  handed back to the owning shard in batches), plus the partitioned
  candidate scans, fixpoint eviction rounds, and transition scans the
  checkers are built from;
* :mod:`repro.parallel.cache` — the content-addressed verification
  cache: verdicts keyed by a canonical program fingerprint plus the
  checker parameters, so re-checking an unchanged spec is a file read.

Everything here is *verdict-preserving by construction*: the parallel
helpers compute the same sets (reachable states, behavioural core,
clause violations) the sequential code computes, and the sequential
witness-search phases then run unchanged on those sets.  See
``docs/PERFORMANCE.md`` for the design and the differential tests in
``tests/integration/test_parallel_differential.py`` for the proof
obligations.
"""

from .cache import (
    VerificationCache,
    cache_key,
    canonical_program_text,
    program_fingerprint,
)
from .hashing import shard_of, stable_state_hash
from .pool import WorkerPool, parallel_available, resolve_workers
from .sharding import (
    TransitionScan,
    parallel_filter_states,
    parallel_reachable,
    parallel_transition_scan,
)

__all__ = [
    "VerificationCache",
    "cache_key",
    "canonical_program_text",
    "program_fingerprint",
    "shard_of",
    "stable_state_hash",
    "WorkerPool",
    "parallel_available",
    "resolve_workers",
    "parallel_filter_states",
    "parallel_reachable",
    "parallel_transition_scan",
    "TransitionScan",
]
