"""Stable state hashing and shard assignment.

Sharded exploration must route every state to the same shard in every
process and in every run: Python's built-in ``hash`` is randomized per
interpreter for strings, so the shard function is built on CRC-32 of
the state's ``repr`` instead.  State tuples in this library hold
booleans, integers, and short strings, all of which have
deterministic, value-only ``repr``s — the hash is therefore stable
across processes, runs, and platforms, which also keeps checkpoint
and cache artifacts portable.
"""

from __future__ import annotations

import zlib

from ..core.state import State

__all__ = ["stable_state_hash", "shard_of"]


def stable_state_hash(state: State) -> int:
    """A process-independent 32-bit hash of a state tuple.

    Args:
        state: a state whose component values have deterministic
            ``repr``s (bool/int/str — everything the GCL domains and
            ring schemas produce).
    """
    return zlib.crc32(repr(state).encode("utf-8"))


def shard_of(state: State, shards: int) -> int:
    """The shard (worker index) that owns ``state``.

    Args:
        state: the state to route.
        shards: number of shards; must be positive.

    Raises:
        ValueError: when ``shards`` is not positive.
    """
    if shards < 1:
        raise ValueError(f"shard count must be positive, got {shards}")
    return stable_state_hash(state) % shards
