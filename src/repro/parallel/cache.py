"""The content-addressed verification cache.

A verification verdict is a pure function of (a) the checked
program(s) and (b) the checker parameters.  The cache exploits that:
verdicts are stored under a key derived from a *canonical program
fingerprint* plus the parameters, so

* re-checking an unchanged spec — across campaign cells, CLI
  invocations, and CI runs — is a single file read;
* reformatting a spec (whitespace, comments, re-ordered sugar) does
  **not** bust the cache: the fingerprint hashes the pretty-printed
  rendering of the *parsed* program, and the parser already discards
  comments and layout (see
  :func:`repro.gcl.pretty.render_program`);
* any semantic change (a guard, an effect, a domain, an init
  predicate) *does* change the rendering and therefore the key.

The worker count is deliberately **excluded** from the key: the
parallel and sequential paths return identical verdicts (that is the
package's core invariant), so they share cache entries.

Entries are JSON files written atomically (temp file + ``os.replace``)
under two-level fan-out directories, safe for concurrent writers —
the worst race is two processes computing the same verdict and one
rename winning, which is idempotent.

Every entry carries a SHA-256 digest of its payload.  A read whose
digest does not match (bit rot, a torn write that still parses, a
tampered file) is a *corrupt* entry: it counts ``cache.corrupt`` in
addition to the miss, and the caller recomputes and overwrites — a
wrong cached verdict can never be served.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Union

from ..gcl.parser import parse_program
from ..gcl.pretty import render_program
from ..gcl.program import Program
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from ..resilience import chaos

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "canonical_program_text",
    "program_fingerprint",
    "cache_key",
    "payload_digest",
    "VerificationCache",
]

#: Bumped whenever the stored payload layout or the key derivation
#: changes; part of every key, so stale formats can never collide.
#: Version 2: fingerprints gained the engine-relevant semantics flags
#: (``keep_stutter``, fairness mode) — under version 1 two checks that
#: compiled the same program under different semantics could collide.
#: Version 3: entries gained the ``digest`` integrity field (SHA-256
#: over the canonical payload JSON); version-2 entries read as misses
#: and are rewritten on the next store.
CACHE_SCHEMA_VERSION = 3


def payload_digest(payload: Mapping[str, object]) -> str:
    """SHA-256 hex digest of a payload's canonical JSON rendering.

    The canonical form (sorted keys, compact separators) is what makes
    the digest stable across processes regardless of dict ordering.
    """
    material = json.dumps(
        dict(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def canonical_program_text(source: Union[str, Program]) -> str:
    """The canonical concrete syntax of a program.

    Args:
        source: either raw GCL text (parsed first, which drops
            comments and whitespace) or an already-parsed
            :class:`~repro.gcl.program.Program`.

    Returns:
        The pretty-printer's normalized rendering — the fixed point
        that all reformatting-equivalent sources share.
    """
    program = parse_program(source) if isinstance(source, str) else source
    return render_program(program)


def program_fingerprint(
    source: Union[str, Program],
    semantics: Optional[Mapping[str, object]] = None,
) -> str:
    """SHA-256 hex digest of a program's canonical text.

    Args:
        source: raw GCL text or a parsed program.
        semantics: the engine-relevant semantics flags the program is
            compiled/checked under (``keep_stutter``, the fairness
            mode, ...).  The same source under different semantics is
            a different transition system, so these must be part of
            the fingerprint; omitting the mapping fingerprints the
            bare source.  Keys are serialized canonically (sorted,
            compact JSON), so dict ordering never perturbs the digest.
    """
    text = canonical_program_text(source)
    if semantics:
        text += "\n\x00semantics=" + json.dumps(
            {key: semantics[key] for key in sorted(semantics)},
            sort_keys=True,
            separators=(",", ":"),
        )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def cache_key(
    kind: str,
    fingerprints: Sequence[str],
    params: Mapping[str, object],
) -> str:
    """Derive the content address of one verification.

    Args:
        kind: what was checked (``"check"``, ``"refines"``,
            ``"campaign-check"``); namespaces the parameter space.
        fingerprints: the :func:`program_fingerprint` of every program
            involved, in role order (program, spec, ...).
        params: the verdict-relevant checker parameters (fairness,
            stuttering, relation, state budget...).  Worker counts and
            other execution-only knobs must NOT be included.

    Returns:
        A SHA-256 hex key, stable across processes and platforms.
    """
    material = json.dumps(
        {
            "v": CACHE_SCHEMA_VERSION,
            "kind": kind,
            "fingerprints": list(fingerprints),
            "params": {key: params[key] for key in sorted(params)},
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class VerificationCache:
    """A directory of content-addressed verification verdicts.

    Args:
        root: the cache directory (created lazily on first write).
        instrumentation: observability sink; every lookup counts
            ``cache.hit`` or ``cache.miss`` and every write counts
            ``cache.store``.

    Attributes:
        hits: lookups served from the cache in this process.
        misses: lookups that found nothing.
    """

    def __init__(
        self,
        root: Union[str, Path],
        instrumentation: Instrumentation = NULL_INSTRUMENTATION,
    ):
        self.root = Path(root)
        self._instrumentation = instrumentation
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _miss(self, key: str, corrupt: Optional[str] = None) -> None:
        self.misses += 1
        self._instrumentation.count("cache.miss")
        if corrupt is not None:
            self._instrumentation.count("cache.corrupt")
            self._instrumentation.event(
                "cache.corrupt", key=key, reason=corrupt
            )

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored payload for ``key``, or ``None``.

        A missing file is a plain miss.  A well-formed entry written
        under a *known older* schema (v1/v2) is drift, not damage: it
        counts ``cache.stale_schema`` (with the versions in the event)
        so upgrades and bit rot are distinguishable downstream.  A
        file that *exists* but does not validate — unparseable JSON,
        an unknown schema version, a key recorded under the wrong
        address, a payload whose digest does not match — additionally
        counts ``cache.corrupt`` (with a ``reason`` event).  Every
        case still reads as a miss, so the caller recomputes and the
        next :meth:`put` overwrites the old entry.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self._miss(key)
            return None
        except (OSError, ValueError):
            self._miss(key, corrupt="unreadable")
            return None
        if not isinstance(entry, dict):
            self._miss(key, corrupt="malformed")
            return None
        if entry.get("v") != CACHE_SCHEMA_VERSION:
            version = entry.get("v")
            if (
                version in (1, 2)
                and entry.get("key") == key
                and isinstance(entry.get("payload"), dict)
            ):
                # A well-formed entry from a known older schema: an
                # upgrade left it behind, nothing damaged it.  Distinct
                # from cache.corrupt so manifest diffs and operators
                # can tell drift from damage.
                self.misses += 1
                self._instrumentation.count("cache.miss")
                self._instrumentation.count("cache.stale_schema")
                self._instrumentation.event(
                    "cache.stale_schema",
                    key=key,
                    found=version,
                    expected=CACHE_SCHEMA_VERSION,
                )
                return None
            self._miss(key, corrupt="schema-drift")
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict) or entry.get("key") != key:
            self._miss(key, corrupt="malformed")
            return None
        if entry.get("digest") != payload_digest(payload):
            self._miss(key, corrupt="digest-mismatch")
            return None
        self.hits += 1
        self._instrumentation.count("cache.hit")
        self._instrumentation.event("cache.hit", key=key)
        return dict(payload)

    def put(self, key: str, payload: Mapping[str, object]) -> None:
        """Store ``payload`` under ``key`` atomically.

        A concurrent writer of the same key is harmless: both compute
        the same verdict and ``os.replace`` is atomic.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        stored = dict(payload)
        entry = {
            "v": CACHE_SCHEMA_VERSION,
            "key": key,
            "digest": payload_digest(stored),
            "payload": stored,
        }
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._instrumentation.count("cache.store")
        if chaos.active_plan() is not None:
            chaos.cache_stored(path)

    def __len__(self) -> int:
        """Number of entries currently stored on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
