"""Execution traces recorded by the simulator.

A :class:`Trace` is the simulation-level counterpart of a computation:
the visited environments, the action fired at each step, and any fault
injections interleaved with them.  Traces stay at the environment
(name->value) level so that rings far beyond exhaustive-checking scale
can be simulated without ever materializing a state space.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import SimulationError

__all__ = ["TraceEvent", "Trace"]

Env = Dict[str, object]


@dataclass(frozen=True)
class TraceEvent:
    """One entry of a trace.

    Attributes:
        kind: ``"step"`` (an action fired), ``"fault"`` (an injected
            perturbation), or ``"stutter"`` (an action fired without
            changing the state).
        label: action name or fault description.
        env: the environment *after* the event.
    """

    kind: str
    label: str
    env: Env


class Trace:
    """A recorded simulation run.

    Args:
        initial: the starting environment (copied defensively).
    """

    def __init__(self, initial: Mapping[str, object]):
        self._initial: Env = dict(initial)
        self._events: List[TraceEvent] = []

    @property
    def initial(self) -> Env:
        """The starting environment (copy)."""
        return dict(self._initial)

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """All recorded events in order."""
        return tuple(self._events)

    def record(self, kind: str, label: str, env: Mapping[str, object]) -> None:
        """Append an event (the environment is copied)."""
        self._events.append(TraceEvent(kind, label, dict(env)))

    def final(self) -> Env:
        """The last environment of the run (the initial one if no events)."""
        if not self._events:
            return dict(self._initial)
        return dict(self._events[-1].env)

    def environments(self) -> List[Env]:
        """Initial environment followed by the post-state of every event."""
        return [dict(self._initial)] + [dict(event.env) for event in self._events]

    def step_count(self) -> int:
        """Number of action firings (faults excluded)."""
        return sum(1 for event in self._events if event.kind in ("step", "stutter"))

    def fault_count(self) -> int:
        """Number of injected faults."""
        return sum(1 for event in self._events if event.kind == "fault")

    def steps_until(self, predicate: Callable[[Env], bool]) -> Optional[int]:
        """Actions fired before ``predicate`` first holds (0 if it holds
        initially), counting from the *last* fault injection.

        Returns ``None`` when the predicate never holds in the trace.
        This is the standard convergence-time reading: faults reset the
        clock, actions advance it.
        """
        found: Optional[int] = 0 if predicate(self._initial) else None
        steps = 0
        for event in self._events:
            if event.kind == "fault":
                steps = 0
                found = None
                continue
            steps += 1
            if found is None and predicate(event.env):
                found = steps
        return found

    def action_labels(self) -> List[str]:
        """Names of the actions fired, in order (faults excluded)."""
        return [e.label for e in self._events if e.kind in ("step", "stutter")]

    def to_jsonl(self) -> str:
        """Serialize as tagged JSON Lines (the ``repro.obs`` file format).

        A ``{"t": "trace", ...}`` line carries the initial environment;
        each event follows as a ``{"t": "trace-event", ...}`` line.
        The result can be archived next to run records and summarized
        (or replayed via :meth:`from_jsonl`) by ``repro report``.
        Environments must be JSON-safe, which holds for every finite
        GCL domain (bools, ints, strings).
        """
        lines = [json.dumps({"t": "trace", "initial": self._initial},
                            sort_keys=True)]
        for event in self._events:
            lines.append(
                json.dumps(
                    {
                        "t": "trace-event",
                        "kind": event.kind,
                        "label": event.label,
                        "env": event.env,
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def all_from_jsonl(cls, text: str) -> List["Trace"]:
        """Every trace archived in ``text`` (other tagged lines skipped).

        Raises:
            SimulationError: on malformed JSON or a ``trace-event``
                line appearing before any ``trace`` line.
        """
        traces: List["Trace"] = []
        current: Optional["Trace"] = None
        for index, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SimulationError(f"line {index}: not valid JSON ({exc})")
            if not isinstance(payload, dict):
                continue
            tag = payload.get("t")
            if tag == "trace":
                current = cls(payload.get("initial", {}))
                traces.append(current)
            elif tag == "trace-event":
                if current is None:
                    raise SimulationError(
                        f"line {index}: trace event before any trace header"
                    )
                current.record(
                    str(payload["kind"]),
                    str(payload["label"]),
                    payload.get("env", {}),
                )
        return traces

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Rebuild the single trace serialized by :meth:`to_jsonl`.

        Raises:
            SimulationError: when the text holds zero or several traces.
        """
        traces = cls.all_from_jsonl(text)
        if len(traces) != 1:
            raise SimulationError(
                f"expected exactly one archived trace, found {len(traces)}"
            )
        return traces[0]

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({len(self._events)} events, {self.fault_count()} faults)"
