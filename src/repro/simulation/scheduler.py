"""Schedulers: simulation-time stand-ins for the central daemon.

The model checker quantifies over *all* daemon choices; the simulator
plays one daemon at a time.  The schedulers here cover the
experimentally interesting spectrum:

* :class:`RandomScheduler` — uniform choice among enabled actions;
  strongly fair with probability one, so simulations under it estimate
  the convergence times that the strong-fairness verdicts promise.
* :class:`RoundRobinScheduler` — deterministic cyclic scanning;
  a simple fair daemon with reproducible traces.
* :class:`BiasedScheduler` — prefers (or avoids) actions by name
  predicate with a given probability; the *adversarial* settings
  reproduce the divergence the checker finds in the abstract wrapped
  rings (prefer token-moving actions, starve cancellations).
"""

from __future__ import annotations

import random
from typing import Callable, List, Mapping, Optional, Sequence

from ..gcl.action import GuardedAction

Env = Mapping[str, object]

__all__ = [
    "Scheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "BiasedScheduler",
    "GreedyScheduler",
]


class Scheduler:
    """Strategy interface: pick one enabled action to fire."""

    def choose(
        self, enabled: Sequence[GuardedAction], env: Env, rng: random.Random
    ) -> GuardedAction:
        """Select one of the enabled actions (``enabled`` is non-empty).

        Args:
            enabled: the actions whose guards hold, in program order.
            env: the current environment — lookahead schedulers (e.g.
                adversaries that avoid token-losing moves) evaluate
                candidate effects against it.
            rng: the run's random source (schedulers must draw all
                randomness from it for reproducibility).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state before a fresh run (default: nothing)."""


class RandomScheduler(Scheduler):
    """Uniformly random choice among the enabled actions."""

    def choose(
        self, enabled: Sequence[GuardedAction], env: Env, rng: random.Random
    ) -> GuardedAction:
        return enabled[rng.randrange(len(enabled))]


class RoundRobinScheduler(Scheduler):
    """Cyclic scan over action names.

    Fires the first enabled action at or after the cursor, then
    advances the cursor past it.  Deterministic given the program.
    """

    def __init__(self):
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def choose(
        self, enabled: Sequence[GuardedAction], env: Env, rng: random.Random
    ) -> GuardedAction:
        # The cursor indexes an abstract rotation; enabled lists vary in
        # length, so rotate the enabled list by the cursor value.
        index = self._cursor % len(enabled)
        self._cursor += 1
        return enabled[index]


class BiasedScheduler(Scheduler):
    """Prefer actions matching a predicate with probability ``bias``.

    Args:
        prefers: predicate over action names (e.g. ``lambda name: not
            name.startswith("w2")`` starves the cancellation wrapper).
        bias: probability of restricting the choice to the preferred
            subset when it is non-empty; ``1.0`` is a deterministic
            adversary.

    Raises:
        ValueError: if ``bias`` is outside ``[0, 1]``.
    """

    def __init__(self, prefers: Callable[[str], bool], bias: float = 1.0):
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must lie in [0, 1]")
        self._prefers = prefers
        self._bias = bias

    def choose(
        self, enabled: Sequence[GuardedAction], env: Env, rng: random.Random
    ) -> GuardedAction:
        preferred = [action for action in enabled if self._prefers(action.name)]
        pool: Sequence[GuardedAction] = enabled
        if preferred and rng.random() < self._bias:
            pool = preferred
        return pool[rng.randrange(len(pool))]


class GreedyScheduler(Scheduler):
    """Pick the enabled action maximizing a score of its *effect*.

    A one-step-lookahead daemon: every enabled action is executed
    speculatively against the current environment and scored; ties are
    broken uniformly at random.  With a score like "resulting token
    count" this is the malicious daemon behind the divergence the
    checker reports for the abstract wrapped ring — and with the score
    negated it is a benevolent, fast-converging one.

    Args:
        score: callable mapping the candidate post-environment to a
            comparable value; higher wins.
    """

    def __init__(self, score: Callable[[Env], float]):
        self._score = score

    def choose(
        self, enabled: Sequence[GuardedAction], env: Env, rng: random.Random
    ) -> GuardedAction:
        scored = [(self._score(action.execute(env)), i) for i, action in enumerate(enabled)]
        best = max(score for score, _ in scored)
        pool = [enabled[i] for score, i in scored if score == best]
        return pool[rng.randrange(len(pool))]
