"""Fault-injection simulation of guarded-command programs.

Environment-level execution (no state-space enumeration) for rings far
beyond exhaustive-checking scale: schedulers
(:mod:`~repro.simulation.scheduler`), transient-fault injectors
(:mod:`~repro.simulation.faults`), the engine
(:mod:`~repro.simulation.runner`), traces
(:mod:`~repro.simulation.trace`), token decoders
(:mod:`~repro.simulation.metrics`), and packaged experiments
(:mod:`~repro.simulation.experiments`).
"""

from .experiments import (
    PROTOCOLS,
    availability_curve,
    availability_trial,
    convergence_curve,
    convergence_trial,
)
from .faults import (
    CorruptEverything,
    CorruptVariables,
    FaultInjector,
    FaultSchedule,
)
from .metrics import (
    btr_tokens,
    four_state_tokens,
    kstate_tokens,
    legitimacy_predicate,
    three_state_tokens,
)
from .runner import SimOutcome, SimStatus, execute, run_until, simulate
from .scheduler import (
    BiasedScheduler,
    GreedyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from .trace import Trace, TraceEvent
from .visualize import render_ring_row, render_trace

__all__ = [
    "PROTOCOLS",
    "availability_curve",
    "availability_trial",
    "convergence_curve",
    "convergence_trial",
    "CorruptEverything",
    "CorruptVariables",
    "FaultInjector",
    "FaultSchedule",
    "btr_tokens",
    "four_state_tokens",
    "kstate_tokens",
    "legitimacy_predicate",
    "three_state_tokens",
    "SimOutcome",
    "SimStatus",
    "execute",
    "run_until",
    "simulate",
    "BiasedScheduler",
    "GreedyScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "Trace",
    "TraceEvent",
    "render_ring_row",
    "render_trace",
]
