"""Ready-made simulation experiments used by the benchmark harness.

Each experiment is a plain function returning rows of plain dicts so
the harness (and the examples) can print paper-style tables without
a plotting dependency.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..analysis.stats import summarize
from ..gcl.program import Program
from ..rings.btr3 import dijkstra_three_state
from ..rings.btr4 import dijkstra_four_state
from ..rings.c3 import c3_composed
from ..rings.kstate import kstate_program
from .faults import CorruptVariables, FaultInjector
from .metrics import legitimacy_predicate
from .runner import run_until, simulate
from .scheduler import RandomScheduler, Scheduler

__all__ = [
    "PROTOCOLS",
    "convergence_trial",
    "convergence_curve",
    "availability_trial",
    "availability_curve",
]

#: The four derived stabilizing systems, keyed by display name:
#: (program builder, legitimacy kind).
PROTOCOLS: Dict[str, tuple] = {
    "dijkstra-4state": (dijkstra_four_state, "four"),
    "dijkstra-3state": (dijkstra_three_state, "three"),
    "new-3state (C3 comp)": (c3_composed, "three"),
    "k-state (K=n)": (lambda n: kstate_program(n, n), "kstate"),
}


def _random_environment(program: Program, rng: random.Random) -> Dict[str, object]:
    """A uniformly random state — the post-fault starting point."""
    return {
        variable.name: rng.choice(variable.domain.values)
        for variable in program.variables
    }


def convergence_trial(
    program: Program,
    kind: str,
    n_processes: int,
    rng: random.Random,
    max_steps: int,
    scheduler: Optional[Scheduler] = None,
) -> Optional[int]:
    """Steps to reach a single-token state from one random corruption.

    Returns ``None`` when the run did not converge within ``max_steps``
    (under the random scheduler this flags a genuine divergence or an
    undersized budget, both worth surfacing).
    """
    predicate = legitimacy_predicate(kind, n_processes)
    return run_until(
        program,
        predicate,
        max_steps,
        scheduler=scheduler or RandomScheduler(),
        rng=rng,
        initial=_random_environment(program, rng),
    )


def convergence_curve(
    sizes: Sequence[int],
    trials: int = 30,
    seed: int = 2002,
    max_steps_factor: int = 200,
    protocols: Optional[Mapping[str, tuple]] = None,
) -> List[Dict[str, object]]:
    """Convergence time vs ring size for every derived protocol.

    Args:
        sizes: ring sizes (process counts) to sweep.
        trials: random corruptions per (protocol, size) cell.
        seed: base seed; each cell derives its own stream.
        max_steps_factor: step budget per trial is ``factor * n**2``
            (all four protocols converge in O(n^2) expected steps under
            the random daemon).
        protocols: override the protocol table (name -> (builder, kind)).

    Returns:
        One row per (protocol, size) with summary statistics of the
        observed convergence times and the count of non-converged runs.
    """
    table = dict(protocols or PROTOCOLS)
    rows: List[Dict[str, object]] = []
    for name, (builder, kind) in table.items():
        for n in sizes:
            program = builder(n)
            budget = max_steps_factor * n * n
            times: List[int] = []
            missed = 0
            for trial in range(trials):
                rng = random.Random((seed, name, n, trial).__hash__())
                result = convergence_trial(program, kind, n, rng, budget)
                if result is None:
                    missed += 1
                else:
                    times.append(result)
            row: Dict[str, object] = {
                "protocol": name,
                "n": n,
                "trials": trials,
                "unconverged": missed,
            }
            row.update(summarize(times))
            rows.append(row)
    return rows


def availability_trial(
    program: Program,
    kind: str,
    n_processes: int,
    fault_probability: float,
    steps: int,
    rng: random.Random,
    injector: Optional[FaultInjector] = None,
) -> float:
    """Fraction of time spent in legitimate states under a fault rate.

    Each scheduler step is preceded, with probability
    ``fault_probability``, by one injection (default: a single-variable
    corruption).  The returned availability is the fraction of visited
    environments satisfying the protocol's single-token predicate —
    the steady-state service metric a stabilizing system trades
    convergence speed for.

    Args:
        program: the protocol instance.
        kind: legitimacy family (``"three"``, ``"four"``, ``"kstate"``,
            ``"btr"``).
        n_processes: ring size.
        fault_probability: per-step injection probability in [0, 1].
        steps: number of scheduler steps to run.
        rng: the run's random source.
        injector: perturbation applied on injection.
    """
    if not 0.0 <= fault_probability <= 1.0:
        raise ValueError("fault_probability must lie in [0, 1]")
    predicate = legitimacy_predicate(kind, n_processes)
    chosen = injector or CorruptVariables(1)
    # Pre-draw the fault schedule so the run itself stays reproducible.
    fault_steps = [
        step for step in range(steps) if rng.random() < fault_probability
    ]
    from .faults import FaultSchedule

    trace = simulate(
        program,
        steps,
        rng=rng,
        faults=FaultSchedule(fault_steps, chosen) if fault_steps else None,
    )
    environments = trace.environments()
    legitimate = sum(1 for env in environments if predicate(env))
    return legitimate / len(environments)


def availability_curve(
    n_processes: int,
    fault_probabilities: Sequence[float],
    steps: int = 2000,
    trials: int = 5,
    seed: int = 977,
    protocols: Optional[Mapping[str, tuple]] = None,
) -> List[Dict[str, object]]:
    """Availability vs fault rate for every derived protocol.

    Returns one row per (protocol, fault rate) with the mean
    availability over ``trials`` seeded runs.  The shape to expect:
    availability decays smoothly with the fault rate, and decays
    faster for slower-converging protocols.
    """
    table = dict(protocols or PROTOCOLS)
    rows: List[Dict[str, object]] = []
    for name, (builder, kind) in table.items():
        program = builder(n_processes)
        for probability in fault_probabilities:
            values = []
            for trial in range(trials):
                rng = random.Random((seed, name, probability, trial).__hash__())
                values.append(
                    availability_trial(
                        program, kind, n_processes, probability, steps, rng
                    )
                )
            rows.append(
                {
                    "protocol": name,
                    "fault rate": probability,
                    "availability": sum(values) / len(values),
                }
            )
    return rows
