"""Environment-level protocol metrics.

The abstraction functions in :mod:`repro.rings.mappings` work on
packed states; simulations of large rings work on environments.  The
decoders here duplicate the token semantics at the environment level
so a 200-process simulation can count tokens in O(n) per step, and
provide the legitimacy predicates (``exactly one token``) that the
convergence-time experiments stop on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from ..rings.topology import Ring

__all__ = [
    "btr_tokens",
    "four_state_tokens",
    "three_state_tokens",
    "kstate_tokens",
    "legitimacy_predicate",
]

Env = Mapping[str, object]


def btr_tokens(ring: Ring, env: Env) -> List[str]:
    """Raised token flags of an abstract BTR environment."""
    present: List[str] = []
    for j in ring.up_token_indices():
        if env[Ring.ut(j)]:
            present.append(Ring.ut(j))
    for j in ring.down_token_indices():
        if env[Ring.dt(j)]:
            present.append(Ring.dt(j))
    return present


def four_state_tokens(ring: Ring, env: Env) -> List[str]:
    """Decoded token flags of a 4-state environment (Section 4 mapping)."""
    top = ring.top

    def up_of(j: int) -> bool:
        if j == 0:
            return True
        if j == top:
            return False
        return bool(env[Ring.up(j)])

    present: List[str] = []
    if env[Ring.c(top)] != env[Ring.c(top - 1)] and up_of(top - 1):
        present.append(Ring.ut(top))
    if env[Ring.c(0)] == env[Ring.c(1)] and not up_of(1):
        present.append(Ring.dt(0))
    for j in ring.middles():
        if env[Ring.c(j)] != env[Ring.c(j - 1)] and up_of(j - 1) and not up_of(j):
            present.append(Ring.ut(j))
        if env[Ring.c(j)] == env[Ring.c(j + 1)] and not up_of(j + 1) and up_of(j):
            present.append(Ring.dt(j))
    return present


def three_state_tokens(ring: Ring, env: Env) -> List[str]:
    """Decoded token flags of a 3-state environment (Section 5 mapping)."""
    top = ring.top
    c = {j: int(env[Ring.c(j)]) for j in ring.processes()}
    present: List[str] = []
    if c[top - 1] == (c[top] + 1) % 3:
        present.append(Ring.ut(top))
    if c[1] == (c[0] + 1) % 3:
        present.append(Ring.dt(0))
    for j in ring.middles():
        if c[j - 1] == (c[j] + 1) % 3:
            present.append(Ring.ut(j))
        if c[j + 1] == (c[j] + 1) % 3:
            present.append(Ring.dt(j))
    return present


def kstate_tokens(ring: Ring, env: Env) -> List[str]:
    """Decoded privileges of a K-state environment."""
    top = ring.top
    present: List[str] = []
    if env[Ring.c(0)] == env[Ring.c(top)]:
        present.append(Ring.t(0))
    for j in range(1, ring.n_processes):
        if env[Ring.c(j)] != env[Ring.c(j - 1)]:
            present.append(Ring.t(j))
    return present


def legitimacy_predicate(
    kind: str, n_processes: int
) -> Callable[[Env], bool]:
    """The ``exactly one token`` predicate for a protocol family.

    Args:
        kind: one of ``"btr"``, ``"four"``, ``"three"``, ``"kstate"``.
        n_processes: ring size.

    Raises:
        ValueError: on an unknown kind.
    """
    ring = Ring(n_processes)
    decoders: Dict[str, Callable[[Ring, Env], List[str]]] = {
        "btr": btr_tokens,
        "four": four_state_tokens,
        "three": three_state_tokens,
        "kstate": kstate_tokens,
    }
    try:
        decoder = decoders[kind]
    except KeyError:
        raise ValueError(f"unknown protocol kind {kind!r}")

    def predicate(env: Env) -> bool:
        return len(decoder(ring, env)) == 1

    return predicate
