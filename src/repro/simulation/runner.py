"""The simulation engine.

Runs guarded-command programs directly at the environment level under
a scheduler, with optional fault injection — no state-space
enumeration, so rings of hundreds of processes are simulated in
linear-per-step time.  This is the substrate for every scale
experiment in the benchmark harness (the model checker covers the
small instances exhaustively; the simulator extends the curves).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Mapping, Optional

from ..core.errors import SimulationError
from ..gcl.program import Program
from .faults import FaultSchedule
from .scheduler import RandomScheduler, Scheduler
from .trace import Trace

__all__ = ["simulate", "run_until"]

Env = Dict[str, object]


def _initial_env(program: Program, initial: Optional[Mapping[str, object]]) -> Env:
    """Resolve the starting environment.

    Uses the explicit ``initial`` when given, otherwise the program's
    first declared initial state.

    Raises:
        SimulationError: when neither is available.
    """
    if initial is not None:
        env = dict(initial)
        missing = {v.name for v in program.variables} - set(env)
        if missing:
            raise SimulationError(f"initial environment misses {sorted(missing)}")
        return env
    for state in program.initial_states():
        return program.env_of(state)
    raise SimulationError(
        f"program {program.name!r} declares no initial states; pass initial="
    )


def simulate(
    program: Program,
    steps: int,
    scheduler: Optional[Scheduler] = None,
    rng: Optional[random.Random] = None,
    initial: Optional[Mapping[str, object]] = None,
    faults: Optional[FaultSchedule] = None,
    stop_when: Optional[Callable[[Env], bool]] = None,
) -> Trace:
    """Run ``program`` for up to ``steps`` scheduler-chosen actions.

    Args:
        program: the guarded-command program (central-daemon semantics).
        steps: maximum number of action firings.
        scheduler: daemon strategy (default: uniformly random).
        rng: random source (default: a fresh ``Random(0)`` for
            reproducibility; pass your own seeded instance in sweeps).
        initial: starting environment; defaults to the program's first
            declared initial state.
        faults: optional injection schedule.
        stop_when: optional predicate — the run stops as soon as it
            holds *after a step* (checked after fault injections too).

    Returns:
        The recorded :class:`~repro.simulation.trace.Trace`.  The run
        also stops early if no action is enabled (deadlock).
    """
    chosen_scheduler = scheduler or RandomScheduler()
    chosen_scheduler.reset()
    source = rng or random.Random(0)
    env = _initial_env(program, initial)
    trace = Trace(env)
    for step in range(steps):
        if faults is not None and faults.due(step):
            env, description = faults.injector.inject(program, env, source)
            trace.record("fault", description, env)
            if stop_when is not None and stop_when(env):
                break
        enabled = [action for action in program.actions if action.enabled(env)]
        if not enabled:
            break
        action = chosen_scheduler.choose(enabled, env, source)
        new_env = action.execute(env)
        kind = "stutter" if new_env == env else "step"
        env = new_env
        trace.record(kind, action.name, env)
        if stop_when is not None and stop_when(env):
            break
    return trace


def run_until(
    program: Program,
    predicate: Callable[[Env], bool],
    max_steps: int,
    scheduler: Optional[Scheduler] = None,
    rng: Optional[random.Random] = None,
    initial: Optional[Mapping[str, object]] = None,
) -> Optional[int]:
    """Steps taken until ``predicate`` holds, or ``None`` within ``max_steps``.

    Convenience wrapper over :func:`simulate` used by convergence-time
    experiments: the count excludes nothing (every fired action counts,
    stutters included — an unfair-to-the-protocol but simple clock).
    """
    trace = simulate(
        program,
        max_steps,
        scheduler=scheduler,
        rng=rng,
        initial=initial,
        stop_when=predicate,
    )
    final = trace.final()
    if not predicate(final):
        return None
    return trace.step_count()
