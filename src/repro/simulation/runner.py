"""The simulation engine.

Runs guarded-command programs directly at the environment level under
a scheduler, with optional fault injection — no state-space
enumeration, so rings of hundreds of processes are simulated in
linear-per-step time.  This is the substrate for every scale
experiment in the benchmark harness (the model checker covers the
small instances exhaustively; the simulator extends the curves).

Three entry points:

* :func:`execute` — the full engine; returns a typed
  :class:`SimOutcome` (status, trace, steps, wall time) and supports a
  cooperative wall-clock ``deadline`` so a pathological run ends as a
  first-class :data:`SimStatus.TIMEOUT` instead of hanging its caller;
* :func:`simulate` — compatibility wrapper returning just the
  :class:`~repro.simulation.trace.Trace`;
* :func:`run_until` — convergence-time helper returning the step
  count (or ``None``).

All of them take ``instrumentation=`` (default: the free null object)
and report steps fired, stutters, faults injected, wall time per 1000
steps, and the convergence step when a stop predicate fires.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Mapping, Optional

from ..core.errors import SimulationError
from ..gcl.program import Program
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from .faults import FaultSchedule
from .scheduler import RandomScheduler, Scheduler
from .trace import Trace

__all__ = ["SimStatus", "SimOutcome", "execute", "simulate", "run_until"]

Env = Dict[str, object]

#: How often (in fired steps) the engine emits a ``sim.progress`` event.
_PROGRESS_EVERY = 1000


class SimStatus(Enum):
    """How a simulation run ended."""

    #: The ``stop_when`` predicate fired.
    CONVERGED = "converged"
    #: The step budget ran out with the predicate never (or not yet)
    #: holding — with a ``stop_when`` this is *suspected divergence*.
    EXHAUSTED = "exhausted"
    #: No action was enabled (the program halted).
    DEADLOCK = "deadlock"
    #: The wall-clock ``deadline`` elapsed before anything else.
    TIMEOUT = "timeout"


@dataclass(frozen=True)
class SimOutcome:
    """Typed result of one simulation run.

    Replaces the old convention of "a bare :class:`Trace`, interpret it
    yourself" for callers — like the campaign engine — that must react
    differently to convergence, budget exhaustion, deadlock, and
    timeout without re-deriving the classification from the trace.

    Attributes:
        status: how the run ended.
        trace: everything that happened (always complete up to the
            stopping point, including on timeout).
        steps: actions fired (stutters included, faults excluded).
        faults: fault injections performed.
        wall_seconds: wall-clock duration of the run.
        seed: the effective RNG seed (``None`` when an external ``rng``
            hides it).
    """

    status: SimStatus
    trace: Trace
    steps: int
    faults: int
    wall_seconds: float
    seed: Optional[int]

    @property
    def converged(self) -> bool:
        """Did the stop predicate fire?"""
        return self.status is SimStatus.CONVERGED


def _initial_env(program: Program, initial: Optional[Mapping[str, object]]) -> Env:
    """Resolve the starting environment.

    Uses the explicit ``initial`` when given, otherwise the program's
    first declared initial state.

    Raises:
        SimulationError: when neither is available.
    """
    if initial is not None:
        env = dict(initial)
        missing = {v.name for v in program.variables} - set(env)
        if missing:
            raise SimulationError(f"initial environment misses {sorted(missing)}")
        return env
    for state in program.initial_states():
        return program.env_of(state)
    raise SimulationError(
        f"program {program.name!r} declares no initial states; pass initial="
    )


def execute(
    program: Program,
    steps: int,
    scheduler: Optional[Scheduler] = None,
    rng: Optional[random.Random] = None,
    initial: Optional[Mapping[str, object]] = None,
    faults: Optional[FaultSchedule] = None,
    stop_when: Optional[Callable[[Env], bool]] = None,
    seed: Optional[int] = None,
    deadline: Optional[float] = None,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> SimOutcome:
    """Run ``program`` for up to ``steps`` scheduler-chosen actions.

    Args:
        program: the guarded-command program (central-daemon semantics).
        steps: maximum number of action firings.
        scheduler: daemon strategy (default: uniformly random).
        rng: random source; overrides ``seed`` when given.
        initial: starting environment; defaults to the program's first
            declared initial state.
        faults: optional injection schedule.  The injector is validated
            against the program *before* the first step, so a
            misconfigured injector fails fast instead of mid-run.
        stop_when: optional predicate — the run stops as soon as it
            holds *after a step* (checked after fault injections too).
        seed: seed for the default random source when ``rng`` is
            omitted (default 0, for reproducibility); the effective
            seed is recorded in the run metadata (``None`` when an
            external ``rng`` hides it).
        deadline: optional wall-clock budget in seconds.  The check is
            cooperative (once per loop iteration): when it trips, the
            run ends with :data:`SimStatus.TIMEOUT` and a complete
            trace rather than raising.
        instrumentation: observability sink — steps/stutters/faults
            counters, periodic ``sim.progress`` timing events, and the
            ``sim.converged``/``sim.deadlock``/``sim.timeout`` outcome;
            the null default is free.

    Returns:
        A :class:`SimOutcome` carrying the recorded
        :class:`~repro.simulation.trace.Trace` and the typed status.
    """
    chosen_scheduler = scheduler or RandomScheduler()
    chosen_scheduler.reset()
    if rng is not None:
        source = rng
        effective_seed: Optional[int] = None
    else:
        effective_seed = 0 if seed is None else seed
        source = random.Random(effective_seed)
    if faults is not None:
        faults.injector.validate(program)
    instrumentation.annotate(
        program=program.name, max_steps=steps, seed=effective_seed
    )
    env = _initial_env(program, initial)
    trace = Trace(env)
    status = SimStatus.EXHAUSTED
    fired = 0
    start = time.perf_counter()
    window_start = start
    for step in range(steps):
        if deadline is not None and time.perf_counter() - start >= deadline:
            status = SimStatus.TIMEOUT
            instrumentation.event(
                "sim.timeout", step=fired, deadline_seconds=deadline
            )
            break
        if faults is not None and faults.due(step):
            env, description = faults.injector.inject(program, env, source)
            trace.record("fault", description, env)
            instrumentation.count("sim.faults")
            if stop_when is not None and stop_when(env):
                status = SimStatus.CONVERGED
                instrumentation.event("sim.converged", step=trace.step_count())
                break
        enabled = [action for action in program.actions if action.enabled(env)]
        if not enabled:
            status = SimStatus.DEADLOCK
            instrumentation.event("sim.deadlock", step=fired)
            break
        action = chosen_scheduler.choose(enabled, env, source)
        new_env = action.execute(env)
        if new_env == env:
            kind = "stutter"
            instrumentation.count("sim.stutters")
        else:
            kind = "step"
        env = new_env
        trace.record(kind, action.name, env)
        instrumentation.count("sim.steps")
        fired += 1
        if fired % _PROGRESS_EVERY == 0:
            now = time.perf_counter()
            instrumentation.event(
                "sim.progress", steps=fired, window_seconds=now - window_start
            )
            window_start = now
        if stop_when is not None and stop_when(env):
            status = SimStatus.CONVERGED
            instrumentation.event("sim.converged", step=trace.step_count())
            break
    return SimOutcome(
        status=status,
        trace=trace,
        steps=trace.step_count(),
        faults=trace.fault_count(),
        wall_seconds=time.perf_counter() - start,
        seed=effective_seed,
    )


def simulate(
    program: Program,
    steps: int,
    scheduler: Optional[Scheduler] = None,
    rng: Optional[random.Random] = None,
    initial: Optional[Mapping[str, object]] = None,
    faults: Optional[FaultSchedule] = None,
    stop_when: Optional[Callable[[Env], bool]] = None,
    seed: Optional[int] = None,
    deadline: Optional[float] = None,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> Trace:
    """Like :func:`execute`, returning just the recorded trace.

    Kept for the many call sites (experiments, examples, tests) that
    only need the trace; new outcome-sensitive callers should prefer
    :func:`execute`.
    """
    return execute(
        program,
        steps,
        scheduler=scheduler,
        rng=rng,
        initial=initial,
        faults=faults,
        stop_when=stop_when,
        seed=seed,
        deadline=deadline,
        instrumentation=instrumentation,
    ).trace


def run_until(
    program: Program,
    predicate: Callable[[Env], bool],
    max_steps: int,
    scheduler: Optional[Scheduler] = None,
    rng: Optional[random.Random] = None,
    initial: Optional[Mapping[str, object]] = None,
    seed: Optional[int] = None,
    deadline: Optional[float] = None,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> Optional[int]:
    """Steps taken until ``predicate`` holds, or ``None`` within ``max_steps``.

    Convenience wrapper over :func:`execute` used by convergence-time
    experiments: the count excludes nothing (every fired action counts,
    stutters included — an unfair-to-the-protocol but simple clock).
    The convergence step (or the timeout) is recorded as a
    ``sim.run_until`` event on the instrumentation.
    """
    outcome = execute(
        program,
        max_steps,
        scheduler=scheduler,
        rng=rng,
        initial=initial,
        stop_when=predicate,
        seed=seed,
        deadline=deadline,
        instrumentation=instrumentation,
    )
    # The final-state re-check keeps the historical zero-step edge case:
    # a run of 0 steps whose initial state already satisfies the
    # predicate counts as converged in 0 steps.
    if not outcome.converged and not predicate(outcome.trace.final()):
        instrumentation.event("sim.run_until", converged=False, steps=None)
        return None
    steps = outcome.steps
    instrumentation.event("sim.run_until", converged=True, steps=steps)
    return steps
