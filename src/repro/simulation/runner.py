"""The simulation engine.

Runs guarded-command programs directly at the environment level under
a scheduler, with optional fault injection — no state-space
enumeration, so rings of hundreds of processes are simulated in
linear-per-step time.  This is the substrate for every scale
experiment in the benchmark harness (the model checker covers the
small instances exhaustively; the simulator extends the curves).

Both entry points take ``instrumentation=`` (default: the free null
object) and report steps fired, stutters, faults injected, wall time
per 1000 steps, and the convergence step when a stop predicate fires.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, Mapping, Optional

from ..core.errors import SimulationError
from ..gcl.program import Program
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from .faults import FaultSchedule
from .scheduler import RandomScheduler, Scheduler
from .trace import Trace

__all__ = ["simulate", "run_until"]

Env = Dict[str, object]

#: How often (in fired steps) the engine emits a ``sim.progress`` event.
_PROGRESS_EVERY = 1000


def _initial_env(program: Program, initial: Optional[Mapping[str, object]]) -> Env:
    """Resolve the starting environment.

    Uses the explicit ``initial`` when given, otherwise the program's
    first declared initial state.

    Raises:
        SimulationError: when neither is available.
    """
    if initial is not None:
        env = dict(initial)
        missing = {v.name for v in program.variables} - set(env)
        if missing:
            raise SimulationError(f"initial environment misses {sorted(missing)}")
        return env
    for state in program.initial_states():
        return program.env_of(state)
    raise SimulationError(
        f"program {program.name!r} declares no initial states; pass initial="
    )


def simulate(
    program: Program,
    steps: int,
    scheduler: Optional[Scheduler] = None,
    rng: Optional[random.Random] = None,
    initial: Optional[Mapping[str, object]] = None,
    faults: Optional[FaultSchedule] = None,
    stop_when: Optional[Callable[[Env], bool]] = None,
    seed: Optional[int] = None,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> Trace:
    """Run ``program`` for up to ``steps`` scheduler-chosen actions.

    Args:
        program: the guarded-command program (central-daemon semantics).
        steps: maximum number of action firings.
        scheduler: daemon strategy (default: uniformly random).
        rng: random source; overrides ``seed`` when given.
        initial: starting environment; defaults to the program's first
            declared initial state.
        faults: optional injection schedule.
        stop_when: optional predicate — the run stops as soon as it
            holds *after a step* (checked after fault injections too).
        seed: seed for the default random source when ``rng`` is
            omitted (default 0, for reproducibility); the effective
            seed is recorded in the run metadata (``None`` when an
            external ``rng`` hides it).
        instrumentation: observability sink — steps/stutters/faults
            counters, periodic ``sim.progress`` timing events, and the
            ``sim.converged``/``sim.deadlock`` outcome; the null
            default is free.

    Returns:
        The recorded :class:`~repro.simulation.trace.Trace`.  The run
        also stops early if no action is enabled (deadlock).
    """
    chosen_scheduler = scheduler or RandomScheduler()
    chosen_scheduler.reset()
    if rng is not None:
        source = rng
        effective_seed: Optional[int] = None
    else:
        effective_seed = 0 if seed is None else seed
        source = random.Random(effective_seed)
    instrumentation.annotate(
        program=program.name, max_steps=steps, seed=effective_seed
    )
    env = _initial_env(program, initial)
    trace = Trace(env)
    fired = 0
    window_start = time.perf_counter()
    for step in range(steps):
        if faults is not None and faults.due(step):
            env, description = faults.injector.inject(program, env, source)
            trace.record("fault", description, env)
            instrumentation.count("sim.faults")
            if stop_when is not None and stop_when(env):
                instrumentation.event("sim.converged", step=trace.step_count())
                return trace
        enabled = [action for action in program.actions if action.enabled(env)]
        if not enabled:
            instrumentation.event("sim.deadlock", step=fired)
            break
        action = chosen_scheduler.choose(enabled, env, source)
        new_env = action.execute(env)
        if new_env == env:
            kind = "stutter"
            instrumentation.count("sim.stutters")
        else:
            kind = "step"
        env = new_env
        trace.record(kind, action.name, env)
        instrumentation.count("sim.steps")
        fired += 1
        if fired % _PROGRESS_EVERY == 0:
            now = time.perf_counter()
            instrumentation.event(
                "sim.progress", steps=fired, window_seconds=now - window_start
            )
            window_start = now
        if stop_when is not None and stop_when(env):
            instrumentation.event("sim.converged", step=trace.step_count())
            break
    return trace


def run_until(
    program: Program,
    predicate: Callable[[Env], bool],
    max_steps: int,
    scheduler: Optional[Scheduler] = None,
    rng: Optional[random.Random] = None,
    initial: Optional[Mapping[str, object]] = None,
    seed: Optional[int] = None,
    instrumentation: Instrumentation = NULL_INSTRUMENTATION,
) -> Optional[int]:
    """Steps taken until ``predicate`` holds, or ``None`` within ``max_steps``.

    Convenience wrapper over :func:`simulate` used by convergence-time
    experiments: the count excludes nothing (every fired action counts,
    stutters included — an unfair-to-the-protocol but simple clock).
    The convergence step (or the timeout) is recorded as a
    ``sim.run_until`` event on the instrumentation.
    """
    trace = simulate(
        program,
        max_steps,
        scheduler=scheduler,
        rng=rng,
        initial=initial,
        stop_when=predicate,
        seed=seed,
        instrumentation=instrumentation,
    )
    final = trace.final()
    if not predicate(final):
        instrumentation.event("sim.run_until", converged=False, steps=None)
        return None
    steps = trace.step_count()
    instrumentation.event("sim.run_until", converged=True, steps=steps)
    return steps
