"""Transient-fault injection.

The paper's fault model is transient state corruption: a fault may
arbitrarily overwrite process variables but does not change the
program.  Injectors perturb simulation environments in place-free
style (they return new environments) and describe themselves for the
trace log.
"""

from __future__ import annotations

import random
import warnings
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from ..core.errors import SimulationError
from ..gcl.program import Program

__all__ = [
    "FaultInjector",
    "CorruptVariables",
    "CorruptEverything",
    "FaultSchedule",
]

Env = Dict[str, object]


class FaultInjector:
    """Strategy interface: perturb an environment."""

    def inject(self, program: Program, env: Env, rng: random.Random) -> Tuple[Env, str]:
        """Return the corrupted environment and a description.

        Implementations must draw fresh values from the variables'
        declared domains — transient faults corrupt state, they do not
        invent values outside the state space.
        """
        raise NotImplementedError

    def validate(self, program: Program) -> None:
        """Fail fast when the injector cannot apply to ``program``.

        Called by the simulation engine before the first step (and by
        the campaign engine when a grid is built), so a misconfigured
        injector aborts a run at construction time, not mid-campaign.

        Raises:
            SimulationError: when the injector is incompatible with
                the program (default: never).
        """


class CorruptVariables(FaultInjector):
    """Overwrite ``count`` randomly chosen variables with random domain values.

    Args:
        count: how many (distinct) variables to corrupt per injection.
        clamp: when true, a program with fewer than ``count`` variables
            gets all of them corrupted (with a one-time warning)
            instead of an error — the right behaviour for campaign
            grids that pair one injector with rings of many sizes.

    Raises:
        ValueError: when ``count`` is not positive.
        SimulationError: from :meth:`validate` (and hence at the start
            of any simulation) if the program has fewer variables than
            ``count`` and ``clamp`` is off.
    """

    def __init__(self, count: int = 1, clamp: bool = False):
        if count < 1:
            raise ValueError("count must be positive")
        self.count = count
        self.clamp = clamp

    def validate(self, program: Program) -> None:
        total = len(list(program.variables))
        if total < self.count and not self.clamp:
            raise SimulationError(
                f"cannot corrupt {self.count} of {total} variables "
                f"(pass clamp=True to corrupt all {total} instead)"
            )

    def inject(self, program: Program, env: Env, rng: random.Random) -> Tuple[Env, str]:
        variables = list(program.variables)
        count = self.count
        if len(variables) < count:
            self.validate(program)  # raises unless clamping is on
            warnings.warn(
                f"CorruptVariables(count={self.count}) clamped to the "
                f"{len(variables)} variables of {program.name!r}",
                stacklevel=2,
            )
            count = len(variables)
        chosen = rng.sample(variables, count)
        result = dict(env)
        names: List[str] = []
        for variable in chosen:
            result[variable.name] = rng.choice(variable.domain.values)
            names.append(variable.name)
        return result, f"corrupt {', '.join(sorted(names))}"


class CorruptEverything(FaultInjector):
    """Replace the whole state with a uniformly random one.

    The harshest transient fault: the paper's stabilization property
    quantifies over arbitrary states, and this injector samples them.
    """

    def inject(self, program: Program, env: Env, rng: random.Random) -> Tuple[Env, str]:
        result = {
            variable.name: rng.choice(variable.domain.values)
            for variable in program.variables
        }
        return result, "corrupt all variables"


class FaultSchedule:
    """When to inject during a run.

    Args:
        at_steps: action-step indices (0-based, *before* the step with
            that index executes) at which to fire the injector.
        injector: the perturbation to apply.
    """

    def __init__(self, at_steps: Sequence[int], injector: FaultInjector):
        self.at_steps = frozenset(at_steps)
        self.injector = injector
        if any(step < 0 for step in self.at_steps):
            raise ValueError("fault steps must be non-negative")

    def due(self, step: int) -> bool:
        """Is an injection scheduled just before action-step ``step``?"""
        return step in self.at_steps
