"""ASCII visualization of ring traces.

Renders a simulation trace as a token timeline: one line per event,
one column per ring position, with ``^`` for an up-token, ``v`` for a
down-token, ``X`` for a co-located pair, ``*`` for a unidirectional
privilege, and ``.`` for quiet positions.  Faults are marked in the
gutter.  Purely textual, so the output drops into terminals, logs,
and doctests alike::

    step  ring          event
        0 .^......      (initial)
        1 ..^.....      up.1
        2 ...^....      up.2
       41 .v..^.X.  !   corrupt c.2, c.5
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..rings.topology import Ring
from .metrics import (
    btr_tokens,
    four_state_tokens,
    kstate_tokens,
    three_state_tokens,
)
from .trace import Trace

__all__ = ["render_ring_row", "render_trace"]

_DECODERS: Dict[str, Callable] = {
    "btr": btr_tokens,
    "four": four_state_tokens,
    "three": three_state_tokens,
    "kstate": kstate_tokens,
}


def render_ring_row(ring: Ring, env: Mapping[str, object], kind: str) -> str:
    """One line: the ring's token occupancy in ``env``.

    Args:
        ring: the ring topology.
        env: a simulation environment of the chosen protocol family.
        kind: protocol family (``"btr"``, ``"four"``, ``"three"``,
            ``"kstate"``) selecting the token decoder.

    Raises:
        ValueError: on an unknown kind.
    """
    try:
        decoder = _DECODERS[kind]
    except KeyError:
        raise ValueError(f"unknown protocol kind {kind!r}")
    cells = ["."] * ring.n_processes
    for flag in decoder(ring, env):
        family, position = flag.split(".")
        index = int(position)
        mark = {"ut": "^", "dt": "v", "t": "*"}[family]
        if cells[index] != ".":
            mark = "X"
        cells[index] = mark
    return "".join(cells)


def render_trace(
    trace: Trace,
    ring: Ring,
    kind: str,
    max_rows: Optional[int] = None,
    only_changes: bool = True,
) -> str:
    """Render a whole trace as a token timeline.

    Args:
        trace: the recorded run.
        ring: the ring topology.
        kind: protocol family for the decoder.
        max_rows: optional cap on emitted lines (an ellipsis row marks
            the cut).
        only_changes: skip events that leave the token picture
            unchanged (stutters and far-field moves render identically).

    Returns:
        The multi-line rendering, header included.
    """
    header = f"{'step':>6} {'ring':<{ring.n_processes}}    event"
    lines: List[str] = [header]
    previous = render_ring_row(ring, trace.initial, kind)
    lines.append(f"{0:>6} {previous}    (initial)")
    emitted = 1
    for index, event in enumerate(trace.events, start=1):
        row = render_ring_row(ring, event.env, kind)
        if only_changes and row == previous and event.kind != "fault":
            continue
        if max_rows is not None and emitted >= max_rows:
            lines.append(f"{'...':>6}")
            break
        gutter = "  ! " if event.kind == "fault" else "    "
        lines.append(f"{index:>6} {row}{gutter}{event.label}")
        previous = row
        emitted += 1
    return "\n".join(lines)
