#!/usr/bin/env python3
"""Automatic wrapper synthesis — the paper's future work, implemented.

The paper's closing line promises "refinement tools and methodologies"
for fault-tolerance.  This example runs the reproduction's synthesis
tool on three inputs of increasing difficulty:

1. the quickstart's broken cascade (deadlocks outside the legitimate
   state) — repaired with a handful of transitions, verified under the
   raw unfair daemon;
2. the bare abstract ring BTR (no W1/W2) — the synthesizer invents the
   token-creation/cancellation role automatically; like the paper's
   hand-built wrappers, the result needs strong fairness;
3. the bare C2 (the Section 5 refinement without its wrappers) — here
   the synthesized repairs jump straight to legitimate encodings, so
   the composite verifies under NO fairness assumption: on this
   instance the tool beats the paper's hand-built composite, which
   needs strong fairness.

Run:  python examples/synthesize_wrapper.py
"""

from repro.gcl import parse_program
from repro.rings import btr3_abstraction, btr_program, c2_program
from repro.synthesis import synthesize_wrapper

CASCADE = """
program cascade
var x.0, x.1, x.2 : mod 4
action copy.1 :: x.1 != x.0 --> x.1 := x.0
action copy.2 :: x.2 != x.1 --> x.2 := x.1
init x.0 == 0 && x.1 == 0 && x.2 == 0
"""


def main() -> None:
    print("1) broken cascade")
    cascade = parse_program(CASCADE).compile()
    result = synthesize_wrapper(cascade, cascade)
    print("   " + result.summary())
    assert result.holds and result.fairness == "none"
    example = sorted(result.wrapper.transitions(), key=repr)[0]
    schema = cascade.schema
    print(f"   sample repair: {schema.format_state(example[0])}  -->  "
          f"{schema.format_state(example[1])}")

    print()
    print("2) bare abstract ring BTR (inventing W1/W2's role)")
    n = 4
    btr = btr_program(n).compile()
    result = synthesize_wrapper(btr, btr)
    print("   " + result.summary())
    assert result.holds and result.fairness == "strong"

    print()
    print("3) bare C2 toward BTR via the Section 5 mapping")
    result = synthesize_wrapper(
        c2_program(n).compile(), btr, btr3_abstraction(n)
    )
    print("   " + result.summary())
    assert result.holds and result.fairness == "none"
    print(f"   repaired states: {len(result.repaired_states)} "
          f"(the paper's wrapped composite needs strong fairness; "
          f"the synthesized one does not)")


if __name__ == "__main__":
    main()
